"""Serializable scenario specs: the unit the factory builds and the fuzzer samples.

A :class:`ScenarioSpec` is a *complete*, seeded description of one
adversarial experimentation run: the service chain (with heavy-tail
latency families, resource caps, and region placement), the traffic
(arrival process, flash crowds), the Bifrost experiment under test, the
transient-fault plan, the resilience configuration, the user-facing SLO,
and an independent generated-topology block for the ranking invariant.

Specs are plain frozen dataclasses with lossless ``to_dict`` /
``from_dict`` round trips, so every fuzzer counterexample can be written
to ``tests/regression_corpus/`` and replayed bit-for-bit, and every
interesting scenario doubles as a benchmark fixture.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Mapping

from repro.errors import ConfigurationError, ValidationError

SPEC_FORMAT = 1

#: Version strings the factory deploys.
STABLE_VERSION = "1.0.0"
EXPERIMENTAL_VERSION = "2.0.0"

#: Latency tail families a service can use.
TAIL_LOGNORMAL = "lognormal"
TAIL_PARETO = "pareto"
_TAILS = frozenset({TAIL_LOGNORMAL, TAIL_PARETO})

#: Arrival processes.
ARRIVALS_POISSON = "poisson"
ARRIVALS_PARETO = "pareto"
_ARRIVALS = frozenset({ARRIVALS_POISSON, ARRIVALS_PARETO})

#: Fault kinds a :class:`FaultSpec` can describe.
FAULT_KINDS = frozenset(
    {"error_burst", "latency_spike", "version_crash", "partition",
     "engine_crash", "deploy"}
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class ServiceSpec:
    """One service in the scenario's call chain.

    Attributes:
        name: unique service name.
        median_ms: latency body's median.
        sigma: log-normal shape (``tail == "lognormal"``).
        tail: latency family, ``lognormal`` or ``pareto``.
        tail_alpha: Pareto tail index (``tail == "pareto"``).
        error_rate: baseline local failure probability.
        depends_on: services this one calls (must be declared later in
            the chain — the declaration order is the topological order).
        region: region the service is homed in; "" means the entry
            (primary) region.
        cpu_cap_rps: resource constraint — nominal capacity one node
            sustains; 0 disables the cap.  Capped nodes inflate latency
            under load (the CPS resource-constrained platform model).
        pressure: latency inflation per unit of overload on capped nodes.
    """

    name: str
    median_ms: float = 15.0
    sigma: float = 0.25
    tail: str = TAIL_LOGNORMAL
    tail_alpha: float = 1.5
    error_rate: float = 0.0
    depends_on: tuple[str, ...] = ()
    region: str = ""
    cpu_cap_rps: float = 0.0
    pressure: float = 0.6

    def __post_init__(self) -> None:
        _require(bool(self.name), "service name must be non-empty")
        _require(self.median_ms > 0, f"{self.name}: median_ms must be > 0")
        _require(self.sigma >= 0, f"{self.name}: sigma must be >= 0")
        _require(self.tail in _TAILS, f"{self.name}: unknown tail {self.tail!r}")
        _require(self.tail_alpha > 1.0, f"{self.name}: tail_alpha must be > 1")
        _require(
            0.0 <= self.error_rate <= 1.0, f"{self.name}: error_rate in [0, 1]"
        )
        _require(self.cpu_cap_rps >= 0, f"{self.name}: cpu_cap_rps must be >= 0")
        _require(self.pressure >= 0, f"{self.name}: pressure must be >= 0")
        object.__setattr__(self, "depends_on", tuple(self.depends_on))


@dataclass(frozen=True)
class RegionSpec:
    """A region with its cross-region round-trip penalty."""

    name: str
    cross_latency_ms: float = 40.0

    def __post_init__(self) -> None:
        _require(bool(self.name), "region name must be non-empty")
        _require(
            self.cross_latency_ms >= 0, f"{self.name}: cross_latency_ms >= 0"
        )


@dataclass(frozen=True)
class ArrivalSpec:
    """The request arrival process driving the scenario."""

    kind: str = ARRIVALS_POISSON
    rate_per_second: float = 10.0
    duration_seconds: float = 120.0
    alpha: float = 1.5

    def __post_init__(self) -> None:
        _require(self.kind in _ARRIVALS, f"unknown arrival kind {self.kind!r}")
        _require(self.rate_per_second > 0, "rate_per_second must be > 0")
        _require(self.duration_seconds > 0, "duration_seconds must be > 0")
        _require(self.alpha > 1.0, "alpha must be > 1")


@dataclass(frozen=True)
class FlashCrowdSpec:
    """A rate surge layered onto the arrival process (half-open window)."""

    start: float
    duration: float
    magnitude: float

    def __post_init__(self) -> None:
        _require(self.start >= 0, "flash crowd start must be >= 0")
        _require(self.duration > 0, "flash crowd duration must be > 0")
        _require(self.magnitude > 0, "flash crowd magnitude must be > 0")


@dataclass(frozen=True)
class FaultSpec:
    """One transient fault (or mid-experiment deploy) on the timeline.

    ``magnitude`` is overloaded per kind: added error rate for
    ``error_burst``, latency factor for ``latency_spike`` and ``deploy``
    (the newly deployed stable version's latency factor over the old
    one), and unused otherwise.  ``service_b`` is the partition peer.
    ``deploy`` faults fire at ``start`` only (``end`` is ignored): they
    deploy ``version`` of ``service`` cloned from its stable spec and
    promote it — the baseline shifts under the running experiment.
    """

    kind: str
    service: str = ""
    endpoint: str = "ep"
    version: str = EXPERIMENTAL_VERSION
    service_b: str = ""
    magnitude: float = 0.5
    start: float = 10.0
    end: float = 40.0

    def __post_init__(self) -> None:
        _require(self.kind in FAULT_KINDS, f"unknown fault kind {self.kind!r}")
        _require(self.start >= 0, "fault start must be >= 0")
        if self.kind != "deploy":
            _require(self.end > self.start, "fault window must satisfy start < end")
        if self.kind == "error_burst":
            _require(0.0 <= self.magnitude <= 1.0, "error burst magnitude in [0, 1]")
        if self.kind in ("latency_spike", "deploy"):
            _require(self.magnitude > 0, f"{self.kind} magnitude must be > 0")
        if self.kind == "partition":
            _require(bool(self.service_b), "partitions need service_b")


@dataclass(frozen=True)
class ExperimentSpec:
    """The Bifrost canary experiment the scenario runs.

    ``true_error_delta`` and ``true_latency_factor`` are the *ground
    truth*: the experimental version's real degradation over stable,
    baked into its endpoint spec.  The engine never sees them directly —
    it only sees the windowed metrics its checks sample — which is
    exactly the gap the promotion invariant probes.
    """

    service: str
    true_latency_factor: float = 1.0
    true_error_delta: float = 0.0
    fraction: float = 0.3
    duration_seconds: float = 90.0
    check_metric: str = "error"
    check_threshold: float = 0.1
    check_window_seconds: float = 25.0
    check_interval_seconds: float = 10.0
    min_samples: int = 0
    deadline_seconds: float = 400.0

    def __post_init__(self) -> None:
        _require(bool(self.service), "experiment service must be non-empty")
        _require(self.true_latency_factor > 0, "true_latency_factor must be > 0")
        _require(
            0.0 <= self.true_error_delta <= 1.0, "true_error_delta in [0, 1]"
        )
        _require(0.0 < self.fraction < 1.0, "fraction must be in (0, 1)")
        _require(self.duration_seconds > 0, "duration_seconds must be > 0")
        _require(
            self.check_metric in ("error", "response_time"),
            f"unknown check metric {self.check_metric!r}",
        )
        _require(self.check_threshold > 0, "check_threshold must be > 0")
        _require(self.check_window_seconds > 0, "check_window_seconds must be > 0")
        _require(
            self.check_interval_seconds > 0, "check_interval_seconds must be > 0"
        )
        _require(self.min_samples >= 0, "min_samples must be >= 0")
        _require(self.deadline_seconds > 0, "deadline_seconds must be > 0")


@dataclass(frozen=True)
class ResilienceSpec:
    """Retries / fallback / breaker configuration for the run."""

    retries: int = 0
    backoff_base_ms: float = 5.0
    fallback_service: str = ""
    breaker: bool = False
    breaker_failure_threshold: float = 0.9
    breaker_window: int = 40
    breaker_min_calls: int = 20
    breaker_open_seconds: float = 20.0

    def __post_init__(self) -> None:
        _require(self.retries >= 0, "retries must be >= 0")
        _require(self.backoff_base_ms >= 0, "backoff_base_ms must be >= 0")
        _require(
            0.0 < self.breaker_failure_threshold <= 1.0,
            "breaker_failure_threshold in (0, 1]",
        )
        _require(self.breaker_window >= 1, "breaker_window must be >= 1")
        _require(self.breaker_min_calls >= 1, "breaker_min_calls must be >= 1")
        _require(self.breaker_open_seconds > 0, "breaker_open_seconds must be > 0")


@dataclass(frozen=True)
class SloSpec:
    """The user-facing error-rate SLO gating must beat."""

    error_rate: float = 0.25
    window_seconds: float = 30.0
    min_samples: int = 20

    def __post_init__(self) -> None:
        _require(0.0 < self.error_rate < 1.0, "slo error_rate in (0, 1)")
        _require(self.window_seconds > 0, "slo window_seconds must be > 0")
        _require(self.min_samples >= 1, "slo min_samples must be >= 1")


@dataclass(frozen=True)
class TopologySpec:
    """Generated-topology block for the ranking (nDCG) invariant."""

    num_endpoints: int = 120
    branching: int = 3
    changes: int = 12
    degradation_factor: float = 2.5

    def __post_init__(self) -> None:
        _require(self.num_endpoints >= 1, "num_endpoints must be >= 1")
        _require(self.branching >= 1, "branching must be >= 1")
        _require(self.changes >= 0, "changes must be >= 0")
        _require(self.degradation_factor >= 1.0, "degradation_factor >= 1")


@dataclass(frozen=True)
class FleetSpec:
    """Fleet-orchestration block (disabled unless ``experiments > 0``).

    When enabled, the scenario carries a whole Fenrir plan executed as a
    fleet of supervised Bifrost engines (``repro.fleet``): *experiments*
    genes laid out in back-to-back waves of *wave*, each holding
    *base_fraction* of shared traffic for *duration_slots* slots.  The
    fraction is capped at ``budget / (2 * wave)`` by the factory so the
    plan stays feasible even when faulted experiments overrun — which is
    what lets the ``fleet_isolation`` invariant compare faulted and
    fault-free twins outcome-by-outcome.
    """

    experiments: int = 0
    slot_seconds: float = 30.0
    budget: float = 1.0
    base_fraction: float = 0.08
    duration_slots: int = 2
    wave: int = 4
    crash_looper: int = -1
    poisoned: int = -1
    bad_experiment: int = -1
    error_delta: float = 0.3
    restart_max: int = 2
    grace_slots: int = 6
    bulkheads: bool = True

    def __post_init__(self) -> None:
        _require(self.experiments >= 0, "fleet experiments must be >= 0")
        if not self.enabled:
            return
        _require(self.slot_seconds > 0, "fleet slot_seconds must be > 0")
        _require(self.budget > 0, "fleet budget must be > 0")
        _require(
            0.0 < self.base_fraction <= 1.0,
            "fleet base_fraction in (0, 1]",
        )
        _require(self.duration_slots >= 1, "fleet duration_slots >= 1")
        _require(self.wave >= 1, "fleet wave must be >= 1")
        _require(self.restart_max >= 0, "fleet restart_max must be >= 0")
        _require(self.grace_slots >= 0, "fleet grace_slots must be >= 0")
        _require(self.error_delta >= 0, "fleet error_delta must be >= 0")
        for label, idx in (
            ("crash_looper", self.crash_looper),
            ("poisoned", self.poisoned),
            ("bad_experiment", self.bad_experiment),
        ):
            _require(
                -1 <= idx < self.experiments,
                f"fleet {label} index {idx} out of range",
            )

    @property
    def enabled(self) -> bool:
        return self.experiments > 0


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete adversarial scenario (seeded, serializable)."""

    name: str
    seed: int
    services: tuple[ServiceSpec, ...]
    experiment: ExperimentSpec
    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    flash_crowds: tuple[FlashCrowdSpec, ...] = ()
    regions: tuple[RegionSpec, ...] = ()
    faults: tuple[FaultSpec, ...] = ()
    resilience: ResilienceSpec = field(default_factory=ResilienceSpec)
    slo: SloSpec = field(default_factory=SloSpec)
    topology: TopologySpec = field(default_factory=TopologySpec)
    fleet: FleetSpec = field(default_factory=FleetSpec)
    run_until: float = 240.0

    def __post_init__(self) -> None:
        _require(bool(self.name), "scenario name must be non-empty")
        object.__setattr__(self, "services", tuple(self.services))
        object.__setattr__(self, "flash_crowds", tuple(self.flash_crowds))
        object.__setattr__(self, "regions", tuple(self.regions))
        object.__setattr__(self, "faults", tuple(self.faults))
        _require(bool(self.services), "scenario needs at least one service")
        names = [s.name for s in self.services]
        _require(len(set(names)) == len(names), f"duplicate service names: {names}")
        declared_after: dict[str, int] = {n: i for i, n in enumerate(names)}
        region_names = {r.name for r in self.regions}
        _require(
            len(region_names) == len(self.regions),
            "duplicate region names",
        )
        for index, service in enumerate(self.services):
            for callee in service.depends_on:
                _require(
                    callee in declared_after,
                    f"{service.name} depends on unknown service {callee!r}",
                )
                _require(
                    declared_after[callee] > index,
                    f"{service.name} -> {callee}: dependencies must point to "
                    "later-declared services (the chain is a DAG by order)",
                )
            if service.region:
                _require(
                    service.region in region_names,
                    f"{service.name} homed in undeclared region "
                    f"{service.region!r}",
                )
        _require(
            self.experiment.service in declared_after,
            f"experiment targets unknown service {self.experiment.service!r}",
        )
        for fault in self.faults:
            if fault.kind in ("error_burst", "latency_spike", "version_crash",
                              "deploy"):
                _require(
                    fault.service in declared_after,
                    f"fault targets unknown service {fault.service!r}",
                )
            if fault.kind == "partition":
                _require(
                    fault.service in declared_after
                    and fault.service_b in declared_after,
                    f"partition references unknown services "
                    f"{fault.service!r}/{fault.service_b!r}",
                )
        if self.resilience.fallback_service:
            _require(
                self.resilience.fallback_service in declared_after,
                "fallback_service must be a declared service",
            )
        _require(self.run_until > 0, "run_until must be > 0")

    # -- convenience -------------------------------------------------------

    @property
    def entry(self) -> str:
        """The entry (frontend) service — always the first declared."""
        return self.services[0].name

    def service_index(self, name: str) -> int:
        """Chain position of *name* (declaration order)."""
        for index, service in enumerate(self.services):
            if service.name == name:
                return index
        raise ConfigurationError(f"unknown service {name!r}")

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """A copy of this spec under a different seed."""
        return replace(self, seed=seed)

    # -- lossless serialization -------------------------------------------

    def to_dict(self) -> dict:
        """Serialize to JSON-compatible primitives (lossless)."""
        data = asdict(self)
        data["format"] = SPEC_FORMAT
        for key in ("services", "flash_crowds", "regions", "faults"):
            data[key] = [dict(entry) for entry in data[key]]
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        try:
            fmt = data.get("format", SPEC_FORMAT)
            if fmt != SPEC_FORMAT:
                raise ValidationError(
                    f"unsupported scenario spec format {fmt!r}"
                )
            return cls(
                name=data["name"],
                seed=data["seed"],
                services=tuple(
                    _build(ServiceSpec, s) for s in data["services"]
                ),
                experiment=_build(ExperimentSpec, data["experiment"]),
                arrivals=_build(ArrivalSpec, data["arrivals"]),
                flash_crowds=tuple(
                    _build(FlashCrowdSpec, c) for c in data["flash_crowds"]
                ),
                regions=tuple(_build(RegionSpec, r) for r in data["regions"]),
                faults=tuple(_build(FaultSpec, f) for f in data["faults"]),
                resilience=_build(ResilienceSpec, data["resilience"]),
                slo=_build(SloSpec, data["slo"]),
                topology=_build(TopologySpec, data["topology"]),
                # Pre-fleet corpus entries predate this block: default it.
                fleet=_build(FleetSpec, data.get("fleet") or {}),
                run_until=data["run_until"],
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed scenario spec: {exc}") from exc


def _build(spec_cls, data: Mapping):
    """Construct a sub-spec dataclass from a mapping, strictly."""
    allowed = {f.name for f in fields(spec_cls)}
    unknown = set(data) - allowed
    if unknown:
        raise ValidationError(
            f"{spec_cls.__name__}: unknown fields {sorted(unknown)}"
        )
    kwargs = dict(data)
    for key, value in kwargs.items():
        if isinstance(value, list):
            kwargs[key] = tuple(value)
    return spec_cls(**kwargs)
