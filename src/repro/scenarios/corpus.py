"""The regression corpus: counterexamples that must keep reproducing.

Every counterexample the fuzzer finds and shrinks can be frozen as a
JSON file under ``tests/regression_corpus/``.  Each entry stores the
minimized spec, the invariant it falsifies, and the violation digest
observed when it was saved.  CI replays the whole corpus on every run:
a scenario that once exposed a weakness is never allowed to silently
stop reproducing — if an engine change legitimately fixes the behaviour,
the entry must be consciously updated, not forgotten.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.scenarios.invariants import Violation, check_invariant
from repro.scenarios.spec import ScenarioSpec

#: Format marker so future corpus migrations can detect old entries.
CORPUS_FORMAT = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One frozen counterexample."""

    invariant: str
    detail: str
    digest: tuple
    spec: ScenarioSpec

    @classmethod
    def from_violation(cls, violation: Violation) -> "CorpusEntry":
        return cls(
            invariant=violation.invariant,
            detail=violation.detail,
            digest=violation.digest,
            spec=violation.spec,
        )

    def to_dict(self) -> dict:
        return {
            "format": CORPUS_FORMAT,
            "invariant": self.invariant,
            "detail": self.detail,
            "digest": _listify(self.digest),
            "spec": self.spec.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        if data.get("format") != CORPUS_FORMAT:
            raise ConfigurationError(
                f"unsupported corpus format {data.get('format')!r}"
            )
        return cls(
            invariant=data["invariant"],
            detail=data["detail"],
            digest=_tuplify(data["digest"]),
            spec=ScenarioSpec.from_dict(data["spec"]),
        )

    def replay(self) -> Violation:
        """Re-run the scenario; the violation must still reproduce.

        Raises :class:`AssertionError` when the entry no longer violates
        its invariant or reproduces with a different digest — the signal
        that engine behaviour changed and the corpus needs a conscious
        update.
        """
        violation = check_invariant(self.invariant, self.spec)
        assert violation is not None, (
            f"corpus entry for {self.invariant!r} ({self.spec.name}) no "
            f"longer reproduces — if an engine change fixed it, update or "
            f"retire the entry deliberately"
        )
        assert violation.digest == self.digest, (
            f"corpus entry for {self.invariant!r} ({self.spec.name}) "
            f"reproduces with a different digest: stored {self.digest}, "
            f"got {violation.digest} — determinism regression or changed "
            f"engine behaviour"
        )
        return violation


def _listify(value):
    if isinstance(value, (tuple, list)):
        return [_listify(v) for v in value]
    return value


def _tuplify(value):
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def save_entry(directory: Path | str, violation: Violation) -> Path:
    """Freeze *violation* as ``<invariant>__<scenario-name>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entry = CorpusEntry.from_violation(violation)
    safe_name = violation.spec.name.replace("/", "_")
    path = directory / f"{violation.invariant}__{safe_name}.json"
    path.write_text(json.dumps(entry.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_entry(path: Path | str) -> CorpusEntry:
    """Load one corpus file."""
    return CorpusEntry.from_dict(json.loads(Path(path).read_text()))


def load_corpus(directory: Path | str) -> list[tuple[Path, CorpusEntry]]:
    """Load every ``*.json`` entry under *directory*, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        (path, load_entry(path)) for path in sorted(directory.glob("*.json"))
    ]
