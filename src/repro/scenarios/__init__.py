"""Scenario factory and adversarial scenario fuzzer.

``repro.scenarios`` turns the rest of the library into a test subject:
seeded, serializable :class:`~repro.scenarios.spec.ScenarioSpec` specs
compose heavy-tail traffic, flash crowds, cascading failures,
multi-region topologies, resource-capped nodes, and mid-experiment
deploys; the factory materializes them into runnable applications,
strategies, and fault campaigns; cross-layer invariants state what must
survive; and the fuzzer searches for — then shrinks — configurations
that falsify them, freezing survivors into the regression corpus.
"""

from repro.scenarios.corpus import (
    CorpusEntry,
    load_corpus,
    load_entry,
    save_entry,
)
from repro.scenarios.fuzzer import (
    ARCHETYPES,
    ARCHETYPES_BY_NAME,
    Archetype,
    FuzzReport,
    ScenarioFuzzer,
    shrink_violation,
)
from repro.scenarios.invariants import (
    INVARIANTS,
    Violation,
    cascade_cap_of,
    check_invariant,
)
from repro.scenarios.runner import ScenarioResult, cascade_depth, run_scenario
from repro.scenarios.spec import (
    ArrivalSpec,
    ExperimentSpec,
    FaultSpec,
    FlashCrowdSpec,
    FleetSpec,
    RegionSpec,
    ResilienceSpec,
    ScenarioSpec,
    ServiceSpec,
    SloSpec,
    TopologySpec,
)

__all__ = [
    "ARCHETYPES",
    "ARCHETYPES_BY_NAME",
    "Archetype",
    "ArrivalSpec",
    "CorpusEntry",
    "ExperimentSpec",
    "FaultSpec",
    "FlashCrowdSpec",
    "FleetSpec",
    "FuzzReport",
    "INVARIANTS",
    "RegionSpec",
    "ResilienceSpec",
    "ScenarioFuzzer",
    "ScenarioResult",
    "ScenarioSpec",
    "ServiceSpec",
    "SloSpec",
    "TopologySpec",
    "Violation",
    "cascade_cap_of",
    "cascade_depth",
    "check_invariant",
    "load_corpus",
    "load_entry",
    "run_scenario",
    "save_entry",
    "shrink_violation",
]
