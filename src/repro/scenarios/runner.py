"""Running one scenario spec end-to-end through the Bifrost middleware.

The runner is the bridge between specs and invariants: it materializes a
spec via the factory, drives the workload (faults, flash crowds,
mid-experiment deploys and all), and condenses the run into a
:class:`ScenarioResult` — the promoted/rolled-back outcome, the control
plane's transition and check logs, the user-facing SLO timeline, and the
structural cascade depth measured from traces.  Results are pure
functions of the spec's seed: the determinism property tests compare
:meth:`ScenarioResult.digest` across repeated runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.bifrost.middleware import Bifrost
from repro.bifrost.model import Action, StrategyOutcome
from repro.microservices.faults import NetworkState
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.scenarios import factory
from repro.scenarios.spec import EXPERIMENTAL_VERSION, ScenarioSpec
from repro.tracing.trace import Trace


@dataclass(frozen=True)
class ScenarioResult:
    """Condensed outcome of one scenario run."""

    spec_name: str
    outcome: StrategyOutcome
    promoted: bool
    stable_version: str
    transitions: tuple[tuple[float, str, str, str, str], ...]
    check_log: tuple[tuple[float, str, str], ...]
    rollback_time: float | None
    first_slo_breach: float | None
    requests: int
    observed_error_rate: float
    experimental_requests: int
    cascade_depth: int
    resilience_counters: dict[str, int] = field(default_factory=dict)

    def digest(self) -> tuple:
        """A hashable fingerprint for determinism comparisons."""
        return (
            self.spec_name,
            self.outcome.value,
            self.promoted,
            self.stable_version,
            self.transitions,
            self.check_log,
            self.rollback_time,
            self.first_slo_breach,
            self.requests,
            round(self.observed_error_rate, 12),
            self.experimental_requests,
            self.cascade_depth,
            tuple(sorted(self.resilience_counters.items())),
        )

    def control_plane(self) -> tuple:
        """Outcome + transition log + check log — the recovery contract.

        Matches the PR-2 durability guarantee: a crashed-and-recovered
        engine replays decisions at original logical timestamps, while
        requests served during the dead window may diverge (the data
        plane keeps serving without the engine), so data-plane fields
        are excluded here.
        """
        return (self.outcome.value, self.transitions, self.check_log)


def cascade_depth(trace: Trace) -> int:
    """Longest ancestor chain of error spans in *trace*.

    A failure cascading from a deep dependency shows up as error spans
    on every service along the call path; call policies with fallbacks
    cut the chain at the absorbing hop.  The depth is the span count of
    the longest parent-linked all-error chain.
    """
    by_id = {span.span_id: span for span in trace.spans}
    depth_of: dict[str, int] = {}

    def depth(span_id: str) -> int:
        cached = depth_of.get(span_id)
        if cached is not None:
            return cached
        span = by_id[span_id]
        if not span.error:
            depth_of[span_id] = 0
            return 0
        parent_depth = 0
        if span.parent_id is not None and span.parent_id in by_id:
            parent_depth = depth(span.parent_id)
        value = parent_depth + 1 if span.error else 0
        depth_of[span_id] = value
        return value

    return max((depth(span.span_id) for span in trace.spans), default=0)


def run_scenario(
    spec: ScenarioSpec,
    crash_window: tuple[float, float] | None = None,
    observer: Observer | None = None,
    force_durable: bool = False,
) -> ScenarioResult:
    """Execute *spec* once and condense the run.

    *crash_window* injects an additional engine crash (forcing durable
    mode) — the hook the recovery-equivalence invariant uses to compare
    a crashed run against the spec's canonical one.  *force_durable*
    journals the run even without crashes so both sides of that
    comparison run the same engine configuration.
    """
    observer = observer or NULL_OBSERVER
    app = factory.build_application(spec)
    network = NetworkState() if factory.needs_network(spec) else None
    resilience = factory.build_resilience(spec)
    durable = (
        factory.needs_durability(spec)
        or crash_window is not None
        or force_durable
    )
    bifrost = Bifrost(
        app,
        seed=spec.seed,
        resilience=resilience,
        network=network,
        durable=durable,
        observer=observer,
    )
    campaign = factory.build_campaign(spec, app, network)
    if crash_window is not None:
        from repro.microservices.faults import EngineCrash

        campaign.add(EngineCrash(*crash_window))
    if campaign.faults:
        bifrost.install_campaign(campaign)
    for deploy in factory.deploy_plan(spec):
        bifrost.simulation.schedule_at(
            deploy.start,
            lambda d=deploy: factory.apply_deploy(spec, app, d),
            label=f"deploy:{deploy.service}@{deploy.version}",
        )

    observer.emit("scenario.run_started", 0.0, name=spec.name, seed=spec.seed)
    bifrost.submit(factory.build_strategy(spec), at=1.0)
    population = factory.build_population(spec)
    outcomes = bifrost.run(
        factory.build_workload(spec, population), until=spec.run_until
    )
    # After a crash the recovered engine rebuilds the execution from the
    # journal, so the handle ``submit`` returned may be stale — always
    # read the authoritative one off the engine.
    execution = bifrost.engine.executions[0]

    transitions = tuple(
        (t.time, t.source, t.target, t.trigger, t.action.value)
        for t in execution.transitions
    )
    check_log = tuple(
        (r.time, r.check.name, r.outcome.value) for r in execution.check_log
    )
    rollback_time = next(
        (t.time for t in execution.transitions if t.action is Action.ROLLBACK),
        None,
    )

    errors = sum(1 for o in outcomes if o.error)
    experimental = (spec.experiment.service, EXPERIMENTAL_VERSION)
    exp_requests = 0
    first_breach: float | None = None
    window: deque[tuple[float, bool]] = deque()
    for outcome in outcomes:
        on_experiment = experimental in outcome.version_path
        if on_experiment:
            exp_requests += 1
        window.append((outcome.request.timestamp, outcome.error))
        cutoff = outcome.request.timestamp - spec.slo.window_seconds
        while window and window[0][0] < cutoff:
            window.popleft()
        if first_breach is None and len(window) >= spec.slo.min_samples:
            rate = sum(1 for _, err in window if err) / len(window)
            if rate > spec.slo.error_rate:
                first_breach = outcome.request.timestamp

    max_cascade = max(
        (cascade_depth(o.trace) for o in outcomes), default=0
    )

    result = ScenarioResult(
        spec_name=spec.name,
        outcome=execution.outcome,
        promoted=execution.outcome is StrategyOutcome.COMPLETED,
        stable_version=app.stable_version(spec.experiment.service),
        transitions=transitions,
        check_log=check_log,
        rollback_time=rollback_time,
        first_slo_breach=first_breach,
        requests=len(outcomes),
        observed_error_rate=errors / len(outcomes) if outcomes else 0.0,
        experimental_requests=exp_requests,
        cascade_depth=max_cascade,
        resilience_counters=bifrost.resilience.counters(),
    )
    observer.emit(
        "scenario.run_finished",
        bifrost.simulation.now,
        name=spec.name,
        outcome=result.outcome.value,
        requests=result.requests,
        cascade_depth=result.cascade_depth,
    )
    if observer.enabled:
        observer.metrics.counter("scenario.runs").increment()
    return result
