"""Cross-layer invariants every generated scenario must satisfy.

Each invariant is a predicate over (spec, run result[s]) capturing a
promise one layer of the stack makes to the others:

- ``promotion_truth``: the Bifrost engine must not promote an
  experimental version whose *ground-truth* degradation (known to the
  spec, invisible to the engine) exceeds tolerance.
- ``gating_before_slo``: when user-facing error rate breaches the SLO
  while the canary is live, health gating must roll back within a grace
  period rather than letting the experiment complete.
- ``recovery_equivalence``: a crash-and-recovered engine must reach the
  same control-plane history (outcome, transitions, check log) as an
  uncrashed run — the PR-2 durability contract under adversarial load.
- ``ranking_floor``: the HY-rel ranking heuristic must keep nDCG@5 above
  a floor on generated topologies with known mutation logs.
- ``cascade_cap``: fallback call policies must cap how deep failures
  cascade through the dependency chain.
- ``fleet_isolation``: faults injected into one experiment of a fleet
  (crash loops, poisoned checks) must stay inside that experiment's
  bulkhead — every other experiment's outcome matches a fault-free twin
  run, no slot over-admits traffic, and shed experiments are reported.

A violated invariant yields a :class:`Violation` carrying a digest —
a stable fingerprint the regression corpus replays against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs.observer import Observer

from repro.scenarios.runner import ScenarioResult, run_scenario
from repro.scenarios.spec import EXPERIMENTAL_VERSION, ScenarioSpec

#: Ground-truth degradation tolerated before a promotion counts as wrong.
TRUTH_ERROR_TOLERANCE = 0.05
TRUTH_LATENCY_TOLERANCE = 1.10

#: nDCG@5 floor for the ranking invariant (HY-rel on synthetic graphs).
NDCG_FLOOR = 0.35

#: Crash window (start, end) used by the recovery-equivalence invariant.
RECOVERY_CRASH_WINDOW = (20.0, 45.0)


@dataclass(frozen=True)
class Violation:
    """One invariant falsified by a concrete scenario."""

    invariant: str
    spec: ScenarioSpec
    detail: str
    digest: tuple

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "digest": list(_jsonable(self.digest)),
            "spec": self.spec.to_dict(),
        }


def _jsonable(value):
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    return value


def check_promotion_truth(
    spec: ScenarioSpec, observer: Observer | None = None
) -> Violation | None:
    """The engine must not promote a ground-truth-regressing variant."""
    result = run_scenario(spec, observer=observer)
    regressed = (
        spec.experiment.true_error_delta > TRUTH_ERROR_TOLERANCE
        or spec.experiment.true_latency_factor > TRUTH_LATENCY_TOLERANCE
    )
    if result.promoted and regressed:
        return Violation(
            invariant="promotion_truth",
            spec=spec,
            detail=(
                f"promoted {spec.experiment.service}@{EXPERIMENTAL_VERSION} "
                f"despite ground-truth error_delta="
                f"{spec.experiment.true_error_delta:.3f}, latency_factor="
                f"{spec.experiment.true_latency_factor:.2f} "
                f"(gate metric={spec.experiment.check_metric!r}, "
                f"threshold={spec.experiment.check_threshold})"
            ),
            digest=(
                "promotion_truth",
                result.outcome.value,
                result.stable_version,
                round(result.observed_error_rate, 6),
            ),
        )
    return None


def check_gating_before_slo(
    spec: ScenarioSpec, observer: Observer | None = None
) -> Violation | None:
    """Health gating must fire before the user-facing SLO stays breached.

    The grace period is one full check window plus one check interval:
    the gate cannot possibly react faster than its own sampling cadence,
    so only breaches that outlast it count as gating failures.
    """
    result = run_scenario(spec, observer=observer)
    if result.first_slo_breach is None:
        return None
    if result.experimental_requests == 0:
        return None  # breach not attributable to the canary
    grace = (
        spec.experiment.check_window_seconds
        + spec.experiment.check_interval_seconds
    )
    deadline = result.first_slo_breach + grace
    if result.rollback_time is not None and result.rollback_time <= deadline:
        return None
    if result.promoted or result.rollback_time is None:
        return Violation(
            invariant="gating_before_slo",
            spec=spec,
            detail=(
                f"SLO breached at t={result.first_slo_breach:.1f}s "
                f"(window error rate > {spec.slo.error_rate}) but gate "
                f"{'promoted the canary' if result.promoted else 'never rolled back'}"
                f" (grace deadline t={deadline:.1f}s)"
            ),
            digest=(
                "gating_before_slo",
                result.outcome.value,
                round(result.first_slo_breach, 3),
                result.rollback_time,
            ),
        )
    if result.rollback_time > deadline:
        return Violation(
            invariant="gating_before_slo",
            spec=spec,
            detail=(
                f"rollback at t={result.rollback_time:.1f}s missed the grace "
                f"deadline t={deadline:.1f}s after SLO breach at "
                f"t={result.first_slo_breach:.1f}s"
            ),
            digest=(
                "gating_before_slo",
                result.outcome.value,
                round(result.first_slo_breach, 3),
                round(result.rollback_time, 3),
            ),
        )
    return None


def check_recovery_equivalence(
    spec: ScenarioSpec, observer: Observer | None = None
) -> Violation | None:
    """Crash-and-recover must equal the uncrashed run on the control plane."""
    baseline = run_scenario(spec, force_durable=True, observer=observer)
    crashed = run_scenario(
        spec, crash_window=RECOVERY_CRASH_WINDOW, observer=observer
    )
    if baseline.control_plane() != crashed.control_plane():
        return Violation(
            invariant="recovery_equivalence",
            spec=spec,
            detail=(
                f"control plane diverged after engine crash "
                f"{RECOVERY_CRASH_WINDOW}: baseline outcome="
                f"{baseline.outcome.value} ({len(baseline.transitions)} "
                f"transitions, {len(baseline.check_log)} checks) vs crashed "
                f"outcome={crashed.outcome.value} "
                f"({len(crashed.transitions)} transitions, "
                f"{len(crashed.check_log)} checks)"
            ),
            digest=(
                "recovery_equivalence",
                baseline.outcome.value,
                crashed.outcome.value,
                len(baseline.transitions),
                len(crashed.transitions),
            ),
        )
    return None


def check_ranking_floor(
    spec: ScenarioSpec, observer: Observer | None = None
) -> Violation | None:
    """HY-rel nDCG@5 must stay above the floor on generated topologies."""
    from repro.topology.diff import diff_graphs
    from repro.topology.generator import (
        mutate_graph_logged,
        random_interaction_graph,
    )
    from repro.topology.heuristics import HybridHeuristic
    from repro.topology.ranking import evaluate_ranking, rank_changes

    topo = spec.topology
    graph = random_interaction_graph(
        topo.num_endpoints, branching=topo.branching, seed=spec.seed
    )
    variant, log = mutate_graph_logged(
        graph,
        topo.changes,
        seed=spec.seed + 7,
        degradation_factor=topo.degradation_factor,
    )
    if not log:
        return None
    diff = diff_graphs(graph, variant)
    if not diff.changes:
        return None
    relevance = _relevance_from_log(diff, log, topo.degradation_factor)
    if not any(relevance.values()):
        return None
    ranking = rank_changes(diff, HybridHeuristic(relative=True))
    ndcg = evaluate_ranking(ranking, relevance, k=5)
    if ndcg < NDCG_FLOOR:
        return Violation(
            invariant="ranking_floor",
            spec=spec,
            detail=(
                f"HY-rel nDCG@5={ndcg:.3f} < floor {NDCG_FLOOR} on "
                f"{topo.num_endpoints}-endpoint graph (branching="
                f"{topo.branching}, {len(log)} applied mutations)"
            ),
            digest=("ranking_floor", round(ndcg, 6), len(log), len(diff.changes)),
        )
    return None


def _relevance_from_log(diff, log, degradation_factor: float) -> dict:
    """Grade diff changes against the applied-mutation ground truth.

    Degrading version updates are what an engineer must see first
    (grade 3); new endpoints pull in unknown code (2); new and removed
    calls reshape the topology without new code (1).  Changes the diff
    surfaces that no mutation explains grade 0.
    """
    degraded = degradation_factor > 1.0
    by_key: dict[tuple[str, str], int] = {}
    for mutation in log:
        key = (mutation.target.service, mutation.target.endpoint)
        if mutation.op == "updated":
            grade = 3 if degraded else 2
        elif mutation.op == "new_endpoint":
            grade = 2
        else:
            grade = 1
        by_key[key] = max(by_key.get(key, 0), grade)
    relevance = {}
    for change in diff.changes:
        callee = change.callee
        key = (callee.service, callee.endpoint) if callee else None
        relevance[change.identity] = by_key.get(key, 0) if key else 0
    return relevance


def check_cascade_cap(
    spec: ScenarioSpec, observer: Observer | None = None
) -> Violation | None:
    """Fallback policies must bound how deep failures cascade.

    With a fallback configured on calls *to* service ``j``, an error
    originating at or below ``j`` is absorbed at ``j``'s caller, so the
    error-span chain cannot extend above ``j``.  The cap below is the
    worst case over every error source the spec plants.
    """
    result = run_scenario(spec, observer=observer)
    cap = cascade_cap_of(spec)
    if cap is None:
        return None
    if result.cascade_depth > cap:
        return Violation(
            invariant="cascade_cap",
            spec=spec,
            detail=(
                f"error cascade depth {result.cascade_depth} exceeds cap "
                f"{cap} (fallback on calls to "
                f"{spec.resilience.fallback_service!r})"
            ),
            digest=("cascade_cap", result.cascade_depth, cap),
        )
    return None


def cascade_cap_of(spec: ScenarioSpec) -> int | None:
    """Worst-case admissible error-chain depth, or None if unbounded.

    Only meaningful when every baseline error rate is zero (otherwise
    ambient errors can legitimately align into long chains).
    """
    if any(s.error_rate > 0 for s in spec.services):
        return None
    sources: list[int] = []
    for fault in spec.faults:
        if fault.kind in ("error_burst", "version_crash"):
            sources.append(spec.service_index(fault.service))
        elif fault.kind == "partition":
            sources.append(spec.service_index(fault.service_b))
    if spec.experiment.true_error_delta > 0:
        sources.append(spec.service_index(spec.experiment.service))
    if not sources:
        return 0
    fallback = spec.resilience.fallback_service
    fallback_idx = spec.service_index(fallback) if fallback else None
    caps = []
    for idx in sources:
        if fallback_idx is not None and idx >= fallback_idx:
            # Absorbed at the fallback hop: chain spans [fallback_idx, idx].
            caps.append(idx - fallback_idx + 1)
        else:
            # Propagates to the entry: chain spans [0, idx].
            caps.append(idx + 1)
    return max(caps)


def check_fleet_isolation(
    spec: ScenarioSpec, observer: Observer | None = None
) -> Violation | None:
    """Faults in one fleet bulkhead must not contaminate the others.

    Runs the spec's fleet plan twice — once with the injected faults,
    once fault-free — and demands (1) every planned experiment appears in
    the outcomes (shed is a reported outcome, never a silent drop),
    (2) no committed slot's admitted usage exceeds the traffic budget,
    and (3) every *non-faulted* experiment reaches the identical outcome
    in both runs.  The factory builds feasible plans (fraction capped at
    ``budget / (2·wave)``), so admission never defers and condition (3)
    is exact, not probabilistic.  ``bulkheads=False`` is the designed
    falsifier: one poisoned check evaluation aborts the whole fleet.
    """
    if not spec.fleet.enabled:
        return None
    from repro.fleet import FleetOrchestrator, usage_within_budget
    from repro.scenarios.factory import build_fleet_plan

    schedule, world, faults, config = build_fleet_plan(spec)
    faulted = FleetOrchestrator(
        schedule, world=world, faults=faults, config=config, observer=observer
    ).run()
    clean = FleetOrchestrator(
        schedule, world=world, faults={}, config=config
    ).run()

    names = [s.name for s, _ in schedule]
    missing = sorted(n for n in names if n not in faulted.outcomes)
    if missing:
        return Violation(
            invariant="fleet_isolation",
            spec=spec,
            detail=f"experiments dropped without a reported outcome: {missing}",
            digest=("fleet_isolation", "missing", tuple(missing)),
        )
    for row in faulted.ledger:
        if not usage_within_budget(dict(row.usage), config.budget):
            return Violation(
                invariant="fleet_isolation",
                spec=spec,
                detail=(
                    f"slot {row.slot} admitted usage {dict(row.usage)} "
                    f"exceeds budget {config.budget}"
                ),
                digest=("fleet_isolation", "over_admitted", row.slot),
            )
    contaminated = tuple(
        (n, clean.outcomes[n], faulted.outcomes[n])
        for n in names
        if n not in faults and faulted.outcomes[n] != clean.outcomes[n]
    )
    if contaminated:
        return Violation(
            invariant="fleet_isolation",
            spec=spec,
            detail=(
                "non-faulted experiments changed outcome under injected "
                f"faults: {contaminated}"
            ),
            digest=("fleet_isolation", "contaminated", contaminated),
        )
    return None


#: Registry the fuzzer iterates over: name -> check function.
INVARIANTS: dict[str, Callable[..., Violation | None]] = {
    "promotion_truth": check_promotion_truth,
    "gating_before_slo": check_gating_before_slo,
    "recovery_equivalence": check_recovery_equivalence,
    "ranking_floor": check_ranking_floor,
    "cascade_cap": check_cascade_cap,
    "fleet_isolation": check_fleet_isolation,
}


def check_invariant(
    name: str, spec: ScenarioSpec, observer: Observer | None = None
) -> Violation | None:
    """Run one named invariant against *spec*."""
    try:
        checker = INVARIANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown invariant {name!r}; known: {sorted(INVARIANTS)}"
        ) from None
    return checker(spec, observer=observer)


__all__ = [
    "INVARIANTS",
    "NDCG_FLOOR",
    "RECOVERY_CRASH_WINDOW",
    "TRUTH_ERROR_TOLERANCE",
    "TRUTH_LATENCY_TOLERANCE",
    "Violation",
    "cascade_cap_of",
    "check_cascade_cap",
    "check_fleet_isolation",
    "check_gating_before_slo",
    "check_invariant",
    "check_promotion_truth",
    "check_ranking_floor",
    "check_recovery_equivalence",
    "ScenarioResult",
    "run_scenario",
]
