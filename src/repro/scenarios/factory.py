"""The scenario factory: materializing a spec into runnable objects.

Every build function is a pure function of the spec (plus its seed), so
two factories handed equal specs produce behaviourally identical
applications, strategies, campaigns, and workloads — the property the
round-trip and determinism invariants rely on.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.bifrost.model import Check, Phase, PhaseType, Strategy
from repro.errors import ConfigurationError
from repro.microservices.application import Application
from repro.microservices.faults import (
    ErrorBurst,
    EngineCrash,
    FaultCampaign,
    FaultInjector,
    LatencySpike,
    NetworkState,
    Partition,
    VersionCrash,
)
from repro.microservices.resilience import (
    BreakerConfig,
    CallPolicy,
    ResilienceLayer,
)
from repro.microservices.service import (
    DownstreamCall,
    EndpointSpec,
    ServiceVersion,
)
from repro.fenrir.model import (
    ExperimentSpec as FenrirExperimentSpec,
    SchedulingProblem,
)
from repro.fenrir.schedule import Gene, Schedule
from repro.fleet.orchestrator import ExperimentFaults, FleetConfig
from repro.scenarios.spec import (
    EXPERIMENTAL_VERSION,
    STABLE_VERSION,
    TAIL_PARETO,
    FaultSpec,
    ScenarioSpec,
    ServiceSpec,
)
from repro.simulation.latency import (
    CompositeLatency,
    ConstantLatency,
    LatencyModel,
    LoadSensitiveLatency,
    LogNormalLatency,
    ParetoLatency,
)
from repro.traffic.profile import DEFAULT_GROUPS, TrafficProfile, UserGroup
from repro.traffic.users import UserPopulation
from repro.traffic.workload import Request, WorkloadGenerator

#: Endpoint name every factory-built service exposes.
ENDPOINT = "ep"


def _base_latency(service: ServiceSpec, factor: float = 1.0) -> LatencyModel:
    """The latency body+tail of one service (optionally degraded)."""
    median = service.median_ms * factor
    if service.tail == TAIL_PARETO:
        return ParetoLatency.from_median(median, service.tail_alpha)
    return LogNormalLatency(median, service.sigma)


def _service_latency(
    spec: ScenarioSpec, service: ServiceSpec, factor: float = 1.0
) -> LatencyModel:
    """Full latency model: tail family + resource cap + region penalty."""
    latency = _base_latency(service, factor)
    if service.cpu_cap_rps > 0:
        latency = LoadSensitiveLatency(latency, pressure=service.pressure)
    entry_region = spec.services[0].region
    if service.region and service.region != entry_region:
        for region in spec.regions:
            if region.name == service.region and region.cross_latency_ms > 0:
                latency = CompositeLatency(
                    ConstantLatency(region.cross_latency_ms), latency
                )
                break
    return latency


def _endpoint(
    spec: ScenarioSpec,
    service: ServiceSpec,
    latency_factor: float = 1.0,
    error_delta: float = 0.0,
) -> EndpointSpec:
    return EndpointSpec(
        name=ENDPOINT,
        latency=_service_latency(spec, service, latency_factor),
        error_rate=min(1.0, service.error_rate + error_delta),
        calls=tuple(
            DownstreamCall(callee, ENDPOINT) for callee in service.depends_on
        ),
    )


def build_application(spec: ScenarioSpec) -> Application:
    """Deploy the spec's chain: stable everywhere, the experimental
    version (with its ground-truth degradation) on the target service."""
    app = Application(spec.name)
    for service in spec.services:
        capacity = service.cpu_cap_rps if service.cpu_cap_rps > 0 else 1000.0
        app.deploy(
            ServiceVersion(
                service.name,
                STABLE_VERSION,
                {ENDPOINT: _endpoint(spec, service)},
                capacity_rps=capacity,
            ),
            stable=True,
        )
        if service.name == spec.experiment.service:
            app.deploy(
                ServiceVersion(
                    service.name,
                    EXPERIMENTAL_VERSION,
                    {
                        ENDPOINT: _endpoint(
                            spec,
                            service,
                            latency_factor=spec.experiment.true_latency_factor,
                            error_delta=spec.experiment.true_error_delta,
                        )
                    },
                    capacity_rps=capacity,
                )
            )
    problems = app.validate_wiring()
    if problems:
        raise ConfigurationError(f"scenario wiring invalid: {problems}")
    return app


def build_strategy(spec: ScenarioSpec) -> Strategy:
    """The canary strategy under test, gated by the spec's single check."""
    experiment = spec.experiment
    return Strategy(
        f"{spec.name}-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service=experiment.service,
                stable_version=STABLE_VERSION,
                experimental_version=EXPERIMENTAL_VERSION,
                fraction=experiment.fraction,
                duration_seconds=experiment.duration_seconds,
                check_interval_seconds=experiment.check_interval_seconds,
                min_samples=experiment.min_samples,
                deadline_seconds=experiment.deadline_seconds,
                checks=(
                    Check(
                        name="gate",
                        service=experiment.service,
                        version=EXPERIMENTAL_VERSION,
                        metric=experiment.check_metric,
                        threshold=experiment.check_threshold,
                        window_seconds=experiment.check_window_seconds,
                    ),
                ),
            ),
        ),
    )


def build_resilience(spec: ScenarioSpec) -> ResilienceLayer | None:
    """The resilience layer (None when the spec configures nothing)."""
    res = spec.resilience
    if not (res.retries or res.fallback_service or res.breaker):
        return None
    layer = ResilienceLayer(
        breaker_config=BreakerConfig(
            failure_threshold=res.breaker_failure_threshold,
            window_size=res.breaker_window,
            min_calls=res.breaker_min_calls,
            open_seconds=res.breaker_open_seconds,
        )
        if res.breaker
        else None
    )
    if res.fallback_service:
        layer.set_policy(
            CallPolicy(
                max_retries=res.retries,
                backoff_base_ms=res.backoff_base_ms,
                fallback=True,
            ),
            service=res.fallback_service,
        )
    elif res.retries:
        layer.set_policy(
            CallPolicy(max_retries=res.retries, backoff_base_ms=res.backoff_base_ms)
        )
    return layer


def needs_network(spec: ScenarioSpec) -> bool:
    """Whether the fault plan includes partitions."""
    return any(fault.kind == "partition" for fault in spec.faults)


def needs_durability(spec: ScenarioSpec) -> bool:
    """Whether the fault plan includes engine crashes."""
    return any(fault.kind == "engine_crash" for fault in spec.faults)


def build_campaign(
    spec: ScenarioSpec,
    app: Application,
    network: NetworkState | None,
) -> FaultCampaign:
    """Translate the spec's transient faults into a fault campaign.

    ``deploy`` faults are *not* campaign faults — see
    :func:`deploy_plan`; they mutate the application registry instead of
    degrading endpoint specs.
    """
    campaign = FaultCampaign(FaultInjector(app), network=network)
    for fault in spec.faults:
        if fault.kind == "error_burst":
            campaign.add(
                ErrorBurst(
                    fault.service, fault.version, fault.endpoint,
                    fault.magnitude, fault.start, fault.end,
                )
            )
        elif fault.kind == "latency_spike":
            campaign.add(
                LatencySpike(
                    fault.service, fault.version, fault.endpoint,
                    fault.magnitude, fault.start, fault.end,
                )
            )
        elif fault.kind == "version_crash":
            campaign.add(
                VersionCrash(fault.service, fault.version, fault.start, fault.end)
            )
        elif fault.kind == "partition":
            campaign.add(
                Partition(fault.service, fault.service_b, fault.start, fault.end)
            )
        elif fault.kind == "engine_crash":
            campaign.add(EngineCrash(fault.start, fault.end))
    return campaign


def deploy_plan(spec: ScenarioSpec) -> list[FaultSpec]:
    """The mid-experiment deploys, in firing order."""
    return sorted(
        (f for f in spec.faults if f.kind == "deploy"), key=lambda f: f.start
    )


def apply_deploy(spec: ScenarioSpec, app: Application, fault: FaultSpec) -> None:
    """Execute one mid-experiment deploy: clone the service's *pristine*
    spec at ``magnitude``× latency, deploy as ``fault.version``, promote.

    The clone is built from the scenario spec (not the live endpoint
    object) so an overlapping transient fault on the old stable version
    never leaks into the new deployment.
    """
    service = spec.services[spec.service_index(fault.service)]
    app.deploy(
        ServiceVersion(
            fault.service,
            fault.version,
            {ENDPOINT: _endpoint(spec, service, latency_factor=fault.magnitude)},
            capacity_rps=service.cpu_cap_rps if service.cpu_cap_rps > 0 else 1000.0,
        ),
        stable=True,
    )


def build_fleet_plan(
    spec: ScenarioSpec,
) -> tuple[Schedule, dict[str, float], dict[str, "ExperimentFaults"], FleetConfig]:
    """Materialize the spec's fleet block into an executable fleet plan.

    Returns ``(schedule, world, faults, config)`` ready for
    :class:`~repro.fleet.orchestrator.FleetOrchestrator`.  Genes are laid
    out in back-to-back waves of ``fleet.wave`` experiments, and the
    per-experiment traffic fraction is capped at ``budget / (2 * wave)``:
    even if a whole wave overruns into the next (phase repeats, crash
    restarts), at most two waves hold traffic concurrently, so admission
    never has to queue.  That feasibility-by-construction is what makes
    the ``fleet_isolation`` invariant sound — in a feasible plan every
    non-faulted experiment starts at its planned slot in both the faulted
    and the fault-free twin, so any outcome difference *is* a bulkhead
    leak, not an admission artifact.
    """
    fleet = spec.fleet
    if not fleet.enabled:
        raise ConfigurationError(f"scenario {spec.name!r} has no fleet block")
    names = [f"exp{i:03d}" for i in range(fleet.experiments)]
    waves = (fleet.experiments + fleet.wave - 1) // fleet.wave
    looper_duration = fleet.duration_slots + fleet.restart_max + 1
    horizon = waves * fleet.duration_slots + looper_duration + 1
    fraction = min(fleet.base_fraction, fleet.budget / (2 * fleet.wave))
    groups = frozenset({"all"})
    profile = TrafficProfile([40_000.0] * horizon, [UserGroup("all", 1.0)])
    specs = [
        FenrirExperimentSpec(
            name=name,
            required_samples=100.0,
            min_traffic_fraction=min(0.01, fraction),
            max_traffic_fraction=1.0,
            max_duration_slots=looper_duration,
            weight=1.0 + (i % 3) * 0.25,
        )
        for i, name in enumerate(names)
    ]
    genes = [
        Gene(
            start=(i // fleet.wave) * fleet.duration_slots,
            # The crash-looper's gene outlives its restart budget, so a
            # persistent looper is shed instead of limping to a verdict.
            duration=(
                looper_duration if i == fleet.crash_looper
                else fleet.duration_slots
            ),
            fraction=fraction,
            groups=groups,
        )
        for i in range(fleet.experiments)
    ]
    schedule = Schedule(SchedulingProblem(profile, specs), genes)
    world: dict[str, float] = {}
    if fleet.bad_experiment >= 0:
        world[names[fleet.bad_experiment]] = fleet.error_delta
    faults: dict[str, ExperimentFaults] = {}
    if fleet.crash_looper >= 0:
        faults[names[fleet.crash_looper]] = ExperimentFaults(crash_loop=True)
    if fleet.poisoned >= 0:
        start = genes[fleet.poisoned].start
        existing = faults.get(names[fleet.poisoned], ExperimentFaults())
        faults[names[fleet.poisoned]] = dataclasses.replace(
            existing, poison_slots=(start, start + 1)
        )
    config = FleetConfig(
        slot_seconds=fleet.slot_seconds,
        budget=fleet.budget,
        grace_slots=fleet.grace_slots,
        restart_max=fleet.restart_max,
        bulkheads=fleet.bulkheads,
        seed=spec.seed,
    )
    return schedule, world, faults, config


def build_population(spec: ScenarioSpec, size: int = 300) -> UserPopulation:
    """The user population issuing requests (seeded off the spec)."""
    return UserPopulation(size, DEFAULT_GROUPS, seed=spec.seed + 1)


def build_workload(
    spec: ScenarioSpec, population: UserPopulation | None = None
) -> Iterator[Request]:
    """The full request stream: arrivals with flash crowds layered in.

    The timeline is cut at every flash-crowd boundary; each segment runs
    the configured arrival process at the segment's effective rate
    (base × the product of covering crowd magnitudes).  One generator
    instance spans all segments so user selection stays a single seeded
    stream.
    """
    population = population or build_population(spec)
    generator = WorkloadGenerator(
        population, entry=f"{spec.entry}.{ENDPOINT}", seed=spec.seed + 2
    )
    arrivals = spec.arrivals
    cuts = {0.0, arrivals.duration_seconds}
    for crowd in spec.flash_crowds:
        if crowd.start < arrivals.duration_seconds:
            cuts.add(crowd.start)
            cuts.add(min(crowd.start + crowd.duration, arrivals.duration_seconds))
    boundaries = sorted(cuts)
    for start, end in zip(boundaries, boundaries[1:]):
        rate = arrivals.rate_per_second
        for crowd in spec.flash_crowds:
            if crowd.start <= start < crowd.start + crowd.duration:
                rate *= crowd.magnitude
        if arrivals.kind == "pareto":
            yield from generator.heavy_tail(
                rate, end - start, alpha=arrivals.alpha, start=start
            )
        else:
            yield from generator.poisson(rate, end - start, start=start)
