"""The framework facade: planning, executing, analyzing in one place.

``ExperimentationFramework`` is the top-level entry point a release
engineer (or the quickstart example) uses: plan a batch of experiments
with Fenrir, execute strategies with Bifrost on a simulated application,
and analyze the outcome with the topology-aware health assessment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bifrost.middleware import Bifrost
from repro.bifrost.model import Strategy
from repro.core.experiment import Experiment
from repro.core.lifecycle import ExperimentLifecycle, LifecyclePhase
from repro.fenrir.scheduler import Fenrir, SchedulingResult
from repro.microservices.application import Application
from repro.topology.builder import build_interaction_graph
from repro.topology.diff import TopologyDiff, diff_graphs
from repro.topology.heuristics import RankingHeuristic, all_heuristic_variants
from repro.topology.ranking import RankedChange, rank_changes
from repro.tracing.query import TraceQuery
from repro.traffic.profile import TrafficProfile


@dataclass
class AnalysisReport:
    """Outcome of the analysis phase: diff plus ranked changes."""

    diff: TopologyDiff
    ranking: list[RankedChange]
    heuristic: str

    def top(self, k: int = 5) -> list[RankedChange]:
        """The *k* highest-ranked changes."""
        return self.ranking[:k]


class ExperimentationFramework:
    """Wires the three life-cycle phases together."""

    def __init__(self, application: Application, seed: int = 42) -> None:
        self.application = application
        self.bifrost = Bifrost(application, seed=seed)
        self.lifecycles: dict[str, ExperimentLifecycle] = {}

    def register(self, experiment: Experiment) -> ExperimentLifecycle:
        """Track a new experiment from its design phase."""
        lifecycle = ExperimentLifecycle(experiment.name)
        self.lifecycles[experiment.name] = lifecycle
        return lifecycle

    # -- planning ------------------------------------------------------------

    def plan(
        self,
        profile: TrafficProfile,
        experiments: list[Experiment],
        budget: int = 2000,
        seed: int = 0,
    ) -> SchedulingResult:
        """Schedule *experiments* over *profile* with Fenrir."""
        specs = [e.to_scheduling_spec() for e in experiments]
        result = Fenrir().schedule(profile, specs, budget=budget, seed=seed)
        for experiment in experiments:
            lifecycle = self.lifecycles.get(experiment.name)
            if lifecycle is None:
                lifecycle = self.register(experiment)
            lifecycle.advance(LifecyclePhase.PLANNED, result)
        return result

    # -- execution -----------------------------------------------------------

    def execute(self, strategy: Strategy, experiment_name: str | None = None):
        """Submit a Bifrost strategy; returns the execution handle."""
        execution = self.bifrost.submit(strategy)
        name = experiment_name or strategy.name
        lifecycle = self.lifecycles.get(name)
        if lifecycle is not None and lifecycle.phase is LifecyclePhase.PLANNED:
            lifecycle.advance(LifecyclePhase.EXECUTING, execution)
        return execution

    # -- analysis ------------------------------------------------------------

    def analyze(
        self,
        baseline_window: tuple[float, float],
        experimental_window: tuple[float, float],
        heuristic: RankingHeuristic | None = None,
        experiment_name: str | None = None,
    ) -> AnalysisReport:
        """Diff the interaction graphs of two time windows and rank changes.

        *baseline_window* should cover traffic before the experiment
        touched routing; *experimental_window* the traffic during it.
        """
        collector = self.bifrost.collector
        base_traces = TraceQuery(collector).in_window(*baseline_window).run()
        exp_traces = TraceQuery(collector).in_window(*experimental_window).run()
        diff = diff_graphs(
            build_interaction_graph(base_traces, "baseline"),
            build_interaction_graph(exp_traces, "experimental"),
        )
        chosen = heuristic or all_heuristic_variants()["HY-rel"]
        ranking = rank_changes(diff, chosen)
        report = AnalysisReport(diff=diff, ranking=ranking, heuristic=chosen.name)
        if experiment_name is not None:
            lifecycle = self.lifecycles.get(experiment_name)
            if lifecycle is not None and lifecycle.phase is LifecyclePhase.EXECUTING:
                lifecycle.advance(LifecyclePhase.ANALYZED, report)
        return report
