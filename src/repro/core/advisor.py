"""The implementation-technique advisor (Section 1.6.2, implemented).

The dissertation envisions "smart experimentation platforms" that decide
*how* experimentation logic is executed: feature toggles on a single
instance when that suffices, or splitting experimental versions onto
separate deployments behind traffic routing "for better load
distribution".  This module implements that decision as an explicit,
testable policy over the experiment's characteristics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.experiment import Experiment, ExperimentPractice
from repro.errors import ConfigurationError


class Technique(enum.Enum):
    """How the experimentation logic is executed."""

    FEATURE_TOGGLE = "feature_toggle"
    TRAFFIC_ROUTING = "traffic_routing"


@dataclass(frozen=True)
class TechniqueAdvice:
    """The advisor's recommendation with its reasoning."""

    technique: Technique
    reasons: tuple[str, ...]

    def describe(self) -> str:
        """One human-readable paragraph."""
        reasons = "; ".join(self.reasons)
        return f"use {self.technique.value}: {reasons}"


@dataclass(frozen=True)
class PlatformContext:
    """Runtime facts the advisor weighs.

    Attributes:
        expected_rps: traffic the experimented service will see.
        instance_capacity_rps: nominal capacity of one instance.
        active_toggles_on_service: toggles already guarding the service
            (the debt ceiling practitioners enforce, Section 2.5.1).
        max_toggles_per_service: the organization's toggle budget.
        isolated_deployment_available: whether separate instances can be
            provisioned for experimental versions.
    """

    expected_rps: float
    instance_capacity_rps: float
    active_toggles_on_service: int = 0
    max_toggles_per_service: int = 10
    isolated_deployment_available: bool = True

    def __post_init__(self) -> None:
        if self.expected_rps < 0 or self.instance_capacity_rps <= 0:
            raise ConfigurationError(
                "expected_rps must be >= 0 and instance_capacity_rps > 0"
            )


def advise_technique(
    experiment: Experiment, context: PlatformContext
) -> TechniqueAdvice:
    """Recommend how to implement *experiment* under *context*.

    Routing is forced when the practice requires traffic manipulation at
    the network level (dark launches duplicate requests; gradual
    rollouts replace whole deployments), when a single instance cannot
    carry both variants' load, or when the service's toggle budget is
    exhausted.  Otherwise the cheaper in-process toggle wins.
    """
    reasons: list[str] = []

    if experiment.practice is ExperimentPractice.DARK_LAUNCH:
        reasons.append(
            "dark launches duplicate live traffic, which only a "
            "network-level mechanism can do"
        )
        return TechniqueAdvice(Technique.TRAFFIC_ROUTING, tuple(reasons))

    # Load headroom: both variants on one instance means the instance
    # carries the full traffic plus experimental overhead.
    projected_load = context.expected_rps / context.instance_capacity_rps
    if projected_load > 0.8:
        reasons.append(
            f"projected instance load {projected_load:.0%} leaves no room "
            "to co-host variants; route to separate deployments"
        )
        if context.isolated_deployment_available:
            return TechniqueAdvice(Technique.TRAFFIC_ROUTING, tuple(reasons))
        reasons.append(
            "no isolated deployment available — falling back to a toggle "
            "despite the load risk"
        )
        return TechniqueAdvice(Technique.FEATURE_TOGGLE, tuple(reasons))

    if context.active_toggles_on_service >= context.max_toggles_per_service:
        reasons.append(
            f"service already carries {context.active_toggles_on_service} "
            "active toggles (budget "
            f"{context.max_toggles_per_service}); more would compound "
            "technical debt"
        )
        if context.isolated_deployment_available:
            return TechniqueAdvice(Technique.TRAFFIC_ROUTING, tuple(reasons))

    if experiment.practice is ExperimentPractice.GRADUAL_ROLLOUT:
        reasons.append(
            "gradual rollouts replace deployments stepwise; routing keeps "
            "the experiment out of the source code"
        )
        return TechniqueAdvice(Technique.TRAFFIC_ROUTING, tuple(reasons))

    reasons.append(
        "low load and available toggle budget: an in-process toggle avoids "
        "the proxy hop entirely"
    )
    return TechniqueAdvice(Technique.FEATURE_TOGGLE, tuple(reasons))
