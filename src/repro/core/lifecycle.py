"""The experiment life cycle: planning → execution → analysis.

The dissertation structures its contributions along these phases
(Fig 1.2).  :class:`ExperimentLifecycle` is a small state tracker that
enforces the phase ordering and records phase artifacts, so tooling (and
tests) can assert an experiment never skips a phase.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ValidationError


class LifecyclePhase(enum.Enum):
    """Phases of the experiment life cycle."""

    DESIGNED = "designed"
    PLANNED = "planned"
    EXECUTING = "executing"
    ANALYZED = "analyzed"
    CONCLUDED = "concluded"


_ORDER = [
    LifecyclePhase.DESIGNED,
    LifecyclePhase.PLANNED,
    LifecyclePhase.EXECUTING,
    LifecyclePhase.ANALYZED,
    LifecyclePhase.CONCLUDED,
]


@dataclass
class ExperimentLifecycle:
    """Tracks one experiment's progression through the life cycle."""

    experiment_name: str
    phase: LifecyclePhase = LifecyclePhase.DESIGNED
    artifacts: dict[str, object] = field(default_factory=dict)
    history: list[LifecyclePhase] = field(
        default_factory=lambda: [LifecyclePhase.DESIGNED]
    )

    def advance(self, to: LifecyclePhase, artifact: object | None = None) -> None:
        """Move to the next phase; skipping or regressing is rejected.

        An optional *artifact* (a schedule, a strategy execution, an
        analysis report) is stored under the target phase's name.
        """
        current_index = _ORDER.index(self.phase)
        target_index = _ORDER.index(to)
        if target_index != current_index + 1:
            raise ValidationError(
                f"experiment {self.experiment_name!r} cannot move from "
                f"{self.phase.value} to {to.value}"
            )
        self.phase = to
        self.history.append(to)
        if artifact is not None:
            self.artifacts[to.value] = artifact

    def cancel(self) -> None:
        """Abort the experiment: jump straight to CONCLUDED.

        Cancellation is a first-class event — experiments "get canceled
        frequently" (Section 1.2.2) and Fenrir's reevaluation exists
        precisely to reclaim their traffic.
        """
        self.phase = LifecyclePhase.CONCLUDED
        self.history.append(LifecyclePhase.CONCLUDED)
        self.artifacts["canceled"] = True

    @property
    def canceled(self) -> bool:
        """Whether the experiment was canceled rather than concluded."""
        return bool(self.artifacts.get("canceled", False))
