"""The experiment model shared by all life-cycle phases.

Chapter 2 classifies experimentation practice into *regression-driven*
experiments (quality assurance: canaries, dark launches, gradual
rollouts) and *business-driven* experiments (feature evaluation: A/B
tests) — Table 2.5 contrasts them on goals, metrics, duration, scoping,
and data interpretation.  :class:`Experiment` carries the fields both
Fenrir (planning) and Bifrost (execution) consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fenrir.model import ExperimentSpec


class ExperimentClass(enum.Enum):
    """The two flavors of continuous experimentation (Section 2.6)."""

    REGRESSION_DRIVEN = "regression_driven"
    BUSINESS_DRIVEN = "business_driven"


class ExperimentPractice(enum.Enum):
    """Concrete experimentation practices (Section 2.2.1)."""

    CANARY_RELEASE = "canary_release"
    DARK_LAUNCH = "dark_launch"
    GRADUAL_ROLLOUT = "gradual_rollout"
    AB_TEST = "ab_test"

    @property
    def experiment_class(self) -> ExperimentClass:
        """Which flavor a practice typically serves (Table 2.5)."""
        if self is ExperimentPractice.AB_TEST:
            return ExperimentClass.BUSINESS_DRIVEN
        return ExperimentClass.REGRESSION_DRIVEN


#: Typical experiment durations per class (Table 2.5): regression-driven
#: experiments run minutes to days, business-driven ones for weeks.
TYPICAL_DURATION_HOURS: dict[ExperimentClass, tuple[float, float]] = {
    ExperimentClass.REGRESSION_DRIVEN: (0.1, 14 * 24.0),
    ExperimentClass.BUSINESS_DRIVEN: (7 * 24.0, 6 * 7 * 24.0),
}


@dataclass(frozen=True)
class Experiment:
    """One continuous experiment across its life cycle.

    Attributes:
        name: unique identifier.
        service: the service under experimentation.
        practice: the primary experimentation practice applied.
        hypothesis: what the experiment is meant to demonstrate.
        required_samples: data points needed for a sound conclusion.
        preferred_groups: user groups the experiment should target.
        owner: the team or engineer responsible (decentralized teams run
            their own experiments — Section 2.5.2).
        metrics: the metrics evaluated during and after execution.
    """

    name: str
    service: str
    practice: ExperimentPractice
    hypothesis: str = ""
    required_samples: float = 1000.0
    preferred_groups: frozenset[str] = frozenset()
    owner: str = ""
    metrics: tuple[str, ...] = ("response_time", "error")

    def __post_init__(self) -> None:
        if not self.name or not self.service:
            raise ConfigurationError("experiment needs a name and a service")
        if self.required_samples <= 0:
            raise ConfigurationError("required_samples must be positive")

    @property
    def experiment_class(self) -> ExperimentClass:
        """Regression- or business-driven, derived from the practice."""
        return self.practice.experiment_class

    def to_scheduling_spec(
        self,
        min_duration_slots: int = 2,
        max_duration_slots: int = 48,
        max_traffic_fraction: float = 0.5,
        earliest_start: int = 0,
    ) -> ExperimentSpec:
        """Derive the Fenrir scheduling input for this experiment."""
        return ExperimentSpec(
            name=self.name,
            required_samples=self.required_samples,
            min_duration_slots=min_duration_slots,
            max_duration_slots=max_duration_slots,
            max_traffic_fraction=max_traffic_fraction,
            preferred_groups=self.preferred_groups,
            earliest_start=earliest_start,
        )
