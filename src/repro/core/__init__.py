"""The conceptual framework for continuous experimentation (Chapter 1).

The dissertation's thesis: a detailed understanding of continuous
experiments enables a conceptual framework for *planning*, *executing*,
and *analyzing* them.  This package holds the shared experiment model —
the regression-/business-driven classification from the empirical study,
the experiment life cycle — and :class:`ExperimentationFramework`, the
facade that wires Fenrir (planning), Bifrost (execution), and the
topology-aware health assessment (analysis) together.
"""

from repro.core.experiment import (
    Experiment,
    ExperimentClass,
    ExperimentPractice,
)
from repro.core.lifecycle import ExperimentLifecycle, LifecyclePhase
from repro.core.framework import AnalysisReport, ExperimentationFramework
from repro.core.advisor import (
    PlatformContext,
    Technique,
    TechniqueAdvice,
    advise_technique,
)

__all__ = [
    "Experiment",
    "ExperimentClass",
    "ExperimentPractice",
    "ExperimentLifecycle",
    "LifecyclePhase",
    "AnalysisReport",
    "ExperimentationFramework",
    "PlatformContext",
    "Technique",
    "TechniqueAdvice",
    "advise_technique",
]
