"""Query API over collected traces.

Chapter 5's tool extracts, per application variant, the traces belonging
to an experiment (or to the stable baseline) within a time window — the
"parameters for considered traces" in Fig 1.3.  :class:`TraceQuery` is a
small fluent filter over a :class:`TraceCollector`.
"""

from __future__ import annotations

from typing import Callable

from repro.tracing.collector import TraceCollector
from repro.tracing.trace import Trace


class TraceQuery:
    """Immutable, chainable trace filter."""

    def __init__(
        self,
        collector: TraceCollector,
        predicates: tuple[Callable[[Trace], bool], ...] = (),
    ) -> None:
        self._collector = collector
        self._predicates = predicates

    def _with(self, predicate: Callable[[Trace], bool]) -> "TraceQuery":
        return TraceQuery(self._collector, self._predicates + (predicate,))

    def in_window(self, start: float, end: float) -> "TraceQuery":
        """Keep traces whose root span starts within [start, end)."""
        return self._with(lambda t: start <= t.root.start < end)

    def with_tag(self, key: str, value: str) -> "TraceQuery":
        """Keep traces whose root span carries tag key=value."""
        return self._with(lambda t: t.root.tags.get(key) == value)

    def any_span_tag(self, key: str, value: str) -> "TraceQuery":
        """Keep traces in which *any* span carries tag key=value."""
        return self._with(
            lambda t: any(span.tags.get(key) == value for span in t.spans)
        )

    def touching_service(self, service: str) -> "TraceQuery":
        """Keep traces that include at least one span of *service*."""
        return self._with(lambda t: any(s.service == service for s in t.spans))

    def touching_version(self, service: str, version: str) -> "TraceQuery":
        """Keep traces that touched a specific service version."""
        return self._with(
            lambda t: any(
                s.service == service and s.version == version for s in t.spans
            )
        )

    def entry(self, service: str, endpoint: str | None = None) -> "TraceQuery":
        """Keep traces entering through the given frontend service/endpoint."""
        def predicate(t: Trace) -> bool:
            if t.root.service != service:
                return False
            return endpoint is None or t.root.endpoint == endpoint

        return self._with(predicate)

    def errors_only(self) -> "TraceQuery":
        """Keep traces containing at least one failed span."""
        return self._with(lambda t: t.has_error)

    def run(self, limit: int | None = None) -> list[Trace]:
        """Execute the query and return matching traces."""
        out: list[Trace] = []
        for trace in self._collector.traces():
            if all(pred(trace) for pred in self._predicates):
                out.append(trace)
                if limit is not None and len(out) >= limit:
                    break
        return out

    def count(self) -> int:
        """Number of matching traces."""
        return len(self.run())
