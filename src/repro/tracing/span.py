"""Spans: the atoms of distributed traces.

A span records one operation of one service version — which endpoint ran,
when, for how long, whether it failed, and which span caused it.  The
(service, version, endpoint) triple is exactly the node identity the
Chapter 5 interaction graphs are built from.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ValidationError

SpanId = str

_span_counter = itertools.count(1)


def next_span_id() -> SpanId:
    """Allocate a process-unique span id."""
    return f"s{next(_span_counter):010x}"


@dataclass(frozen=True)
class Span:
    """One timed operation within a trace.

    Attributes:
        span_id: unique id of this span.
        trace_id: id of the trace the span belongs to.
        parent_id: span id of the caller, or None for the root span.
        service: logical service name (e.g. ``"catalog"``).
        version: concrete deployed version (e.g. ``"1.4.0"``).
        endpoint: operation name within the service (e.g. ``"search"``).
        start: simulated start time in seconds.
        duration_ms: wall time of the operation in milliseconds.
        error: whether the operation failed.
        tags: free-form annotations (experiment name, user group, ...).
    """

    span_id: SpanId
    trace_id: str
    parent_id: SpanId | None
    service: str
    version: str
    endpoint: str
    start: float
    duration_ms: float
    error: bool = False
    tags: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_ms < 0:
            raise ValidationError(
                f"span duration must be >= 0, got {self.duration_ms}"
            )
        if not self.service or not self.endpoint:
            raise ValidationError("span requires non-empty service and endpoint")

    @property
    def node_key(self) -> tuple[str, str, str]:
        """The (service, version, endpoint) identity used by topology graphs."""
        return (self.service, self.version, self.endpoint)

    @property
    def end(self) -> float:
        """Simulated end time in seconds."""
        return self.start + self.duration_ms / 1000.0
