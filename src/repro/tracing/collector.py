"""The trace collector: in-memory span ingestion and trace assembly."""

from __future__ import annotations

from repro.errors import ValidationError
from repro.tracing.span import Span
from repro.tracing.trace import Trace


class TraceCollector:
    """Collects spans as services emit them and assembles traces on demand.

    Spans may arrive in any order (children before parents happens with
    real tracers too); assembly validates tree structure lazily.
    """

    def __init__(self, capacity: int | None = None) -> None:
        """*capacity* bounds the number of retained traces (FIFO eviction)."""
        if capacity is not None and capacity <= 0:
            raise ValidationError("capacity must be positive when given")
        self._spans_by_trace: dict[str, list[Span]] = {}
        self._capacity = capacity

    def record(self, span: Span) -> None:
        """Ingest one span."""
        bucket = self._spans_by_trace.setdefault(span.trace_id, [])
        bucket.append(span)
        if self._capacity is not None and len(self._spans_by_trace) > self._capacity:
            oldest = next(iter(self._spans_by_trace))
            del self._spans_by_trace[oldest]

    def record_all(self, spans: list[Span]) -> None:
        """Ingest many spans."""
        for span in spans:
            self.record(span)

    @property
    def trace_ids(self) -> list[str]:
        """Ids of all retained traces, in ingestion order."""
        return list(self._spans_by_trace)

    def __len__(self) -> int:
        return len(self._spans_by_trace)

    def trace(self, trace_id: str) -> Trace:
        """Assemble the trace with the given id."""
        if trace_id not in self._spans_by_trace:
            raise ValidationError(f"no spans recorded for trace {trace_id!r}")
        return Trace(trace_id, self._spans_by_trace[trace_id])

    def traces(self) -> list[Trace]:
        """Assemble all retained traces."""
        return [self.trace(tid) for tid in self._spans_by_trace]

    def clear(self) -> None:
        """Discard all retained spans."""
        self._spans_by_trace.clear()
