"""The trace collector: in-memory span ingestion and trace assembly.

Beyond batch assembly (:meth:`TraceCollector.traces`), the collector is a
*stream source*: subscribers are notified whenever a trace becomes
assemblable (and again when an already-complete trace grows, e.g. by
late-arriving dark-launch duplicates), which is what the streaming
topology pipeline (:mod:`repro.topology.streaming`) builds on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ValidationError
from repro.tracing.span import Span
from repro.tracing.trace import Trace

#: Default bound of the eviction-tombstone set when the collector itself
#: is unbounded in capacity terms (see :class:`TraceCollector`).
DEFAULT_TOMBSTONES = 1024


@dataclass
class _BucketState:
    """Incremental assembly bookkeeping of one trace bucket.

    Maintained per recorded span so completion detection is O(1) per
    span instead of an O(n) assembly attempt: a bucket is *assemblable*
    when it has exactly one root, no unresolved parent references, and
    no duplicate span ids.
    """

    span_ids: set[str] = field(default_factory=set)
    missing_parents: set[str] = field(default_factory=set)
    roots: int = 0
    duplicate: bool = False

    def add(self, span: Span) -> None:
        if span.span_id in self.span_ids:
            self.duplicate = True
            return
        self.span_ids.add(span.span_id)
        self.missing_parents.discard(span.span_id)
        if span.parent_id is None:
            self.roots += 1
        elif span.parent_id not in self.span_ids:
            self.missing_parents.add(span.parent_id)

    @property
    def assemblable(self) -> bool:
        return self.roots == 1 and not self.missing_parents and not self.duplicate


class TraceCollector:
    """Collects spans as services emit them and assembles traces on demand.

    Spans may arrive in any order (children before parents happens with
    real tracers too); assembly validates tree structure lazily.

    With a *capacity*, the oldest trace is evicted FIFO when a new trace
    would exceed the bound.  Evicted trace ids are remembered in a
    bounded tombstone set so a late span of an evicted trace is dropped
    (counted on :attr:`late_spans_dropped`) instead of resurrecting the
    trace as a rootless partial bucket that would poison later assembly.
    """

    def __init__(
        self, capacity: int | None = None, tombstones: int | None = None
    ) -> None:
        """*capacity* bounds the number of retained traces (FIFO eviction);
        *tombstones* bounds the evicted-id memory (defaults to 4× the
        capacity, or :data:`DEFAULT_TOMBSTONES` when unbounded)."""
        if capacity is not None and capacity <= 0:
            raise ValidationError("capacity must be positive when given")
        if tombstones is not None and tombstones <= 0:
            raise ValidationError("tombstones must be positive when given")
        self._spans_by_trace: dict[str, list[Span]] = {}
        self._assembly: dict[str, _BucketState] = {}
        self._capacity = capacity
        self._tombstone_capacity = tombstones or (
            capacity * 4 if capacity is not None else DEFAULT_TOMBSTONES
        )
        self._tombstones: OrderedDict[str, None] = OrderedDict()
        # Imported lazily: repro.telemetry.monitor imports repro.tracing,
        # so a module-level import here would cycle during package init.
        from repro.telemetry.metrics import Counter

        self.late_spans_dropped = Counter("tracing.late_spans_dropped")
        self._complete_subscribers: list[Callable[[Trace], None]] = []
        self._evict_subscribers: list[Callable[[str], None]] = []

    # -- streaming subscriptions ------------------------------------------

    def subscribe(
        self,
        on_complete: Callable[[Trace], None],
        on_evict: Callable[[str], None] | None = None,
    ) -> None:
        """Register a trace-stream subscriber.

        *on_complete* receives every trace that becomes assemblable — and
        receives the trace again, re-assembled, when more spans arrive
        for it later (subscribers must treat notifications as cumulative
        snapshots, not deltas).  *on_evict* receives the trace id when a
        trace is evicted under the capacity bound.
        """
        self._complete_subscribers.append(on_complete)
        if on_evict is not None:
            self._evict_subscribers.append(on_evict)

    @property
    def has_subscribers(self) -> bool:
        """Whether any stream subscriber is attached.

        The batch execution kernel checks this before skipping trace
        ingestion: with subscribers present, skipping would silently
        starve the streaming pipeline, so the kernel falls back (or must
        be run with ``record_traces=True``).
        """
        return bool(self._complete_subscribers or self._evict_subscribers)

    def _notify_complete(self, trace_id: str) -> None:
        if not self._complete_subscribers:
            return
        state = self._assembly.get(trace_id)
        if state is None or not state.assemblable:
            return
        trace = Trace(trace_id, self._spans_by_trace[trace_id])
        for subscriber in self._complete_subscribers:
            subscriber(trace)

    # -- ingestion ---------------------------------------------------------

    def record(self, span: Span) -> None:
        """Ingest one span (dropping late spans of evicted traces)."""
        self._ingest(span)
        self._notify_complete(span.trace_id)

    def record_all(self, spans: list[Span]) -> None:
        """Ingest many spans, notifying completion once per touched trace."""
        touched: dict[str, None] = {}
        for span in spans:
            self._ingest(span)
            touched[span.trace_id] = None
        for trace_id in touched:
            self._notify_complete(trace_id)

    def record_trace(self, trace_id: str, spans: list[Span]) -> None:
        """Bulk-ingest spans known to belong to one trace.

        Equivalent to :meth:`record_all` on the same spans (same eviction,
        tombstone, and notification behavior) but skips the per-span
        trace-id grouping — the batch execution kernel emits whole traces
        at once, so the grouping is already known.
        """
        if trace_id in self._tombstones:
            for _ in spans:
                self.late_spans_dropped.increment()
            return
        if not spans:
            return
        bucket = self._spans_by_trace.setdefault(trace_id, [])
        state = self._assembly.setdefault(trace_id, _BucketState())
        bucket.extend(spans)
        for span in spans:
            state.add(span)
        if self._capacity is not None and len(self._spans_by_trace) > self._capacity:
            oldest = next(iter(self._spans_by_trace))
            self._evict(oldest)
            if oldest == trace_id:
                return
        self._notify_complete(trace_id)

    def _ingest(self, span: Span) -> None:
        if span.trace_id in self._tombstones:
            self.late_spans_dropped.increment()
            return
        bucket = self._spans_by_trace.setdefault(span.trace_id, [])
        bucket.append(span)
        self._assembly.setdefault(span.trace_id, _BucketState()).add(span)
        if self._capacity is not None and len(self._spans_by_trace) > self._capacity:
            oldest = next(iter(self._spans_by_trace))
            self._evict(oldest)

    def _evict(self, trace_id: str) -> None:
        del self._spans_by_trace[trace_id]
        self._assembly.pop(trace_id, None)
        self._tombstones[trace_id] = None
        while len(self._tombstones) > self._tombstone_capacity:
            self._tombstones.popitem(last=False)
        for subscriber in self._evict_subscribers:
            subscriber(trace_id)

    @property
    def trace_ids(self) -> list[str]:
        """Ids of all retained traces, in ingestion order."""
        return list(self._spans_by_trace)

    @property
    def evicted_ids(self) -> list[str]:
        """Remembered (tombstoned) evicted trace ids, oldest first."""
        return list(self._tombstones)

    def __len__(self) -> int:
        return len(self._spans_by_trace)

    def trace(self, trace_id: str) -> Trace:
        """Assemble the trace with the given id."""
        if trace_id not in self._spans_by_trace:
            raise ValidationError(f"no spans recorded for trace {trace_id!r}")
        return Trace(trace_id, self._spans_by_trace[trace_id])

    def traces(self, strict: bool = False) -> list[Trace]:
        """Assemble all retained traces.

        Buckets that do not assemble into a valid trace (rootless
        partials, unresolved parents, duplicate span ids) are *skipped*
        by default so one broken trace cannot take down a whole graph
        build; with ``strict=True`` they raise :class:`ValidationError`.
        """
        out: list[Trace] = []
        for trace_id in self._spans_by_trace:
            try:
                out.append(self.trace(trace_id))
            except ValidationError:
                if strict:
                    raise
        return out

    def clear(self) -> None:
        """Discard all retained spans (tombstones survive)."""
        self._spans_by_trace.clear()
        self._assembly.clear()
