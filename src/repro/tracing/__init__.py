"""Distributed tracing substrate (Zipkin/Jaeger equivalent).

Chapter 5's health assessment consumes distributed traces "as produced by
Zipkin or Jaeger": trees of spans annotated with service, version,
endpoint, and timing.  The simulated microservice runtime emits spans into
a :class:`TraceCollector`; the topology package reads them back through
:class:`TraceQuery`.
"""

from repro.tracing.span import Span, SpanId
from repro.tracing.trace import Trace
from repro.tracing.collector import TraceCollector
from repro.tracing.query import TraceQuery

__all__ = ["Span", "SpanId", "Trace", "TraceCollector", "TraceQuery"]
