"""Traces: trees of spans describing one end-to-end request."""

from __future__ import annotations

from typing import Iterator

from repro.errors import ValidationError
from repro.tracing.span import Span, SpanId


class Trace:
    """All spans of one distributed request, indexed for tree traversal."""

    def __init__(self, trace_id: str, spans: list[Span]) -> None:
        if not spans:
            raise ValidationError(f"trace {trace_id!r} has no spans")
        if any(span.trace_id != trace_id for span in spans):
            raise ValidationError(f"trace {trace_id!r} contains foreign spans")
        self.trace_id = trace_id
        self._spans = {span.span_id: span for span in spans}
        if len(self._spans) != len(spans):
            raise ValidationError(f"trace {trace_id!r} has duplicate span ids")
        roots = [s for s in spans if s.parent_id is None]
        if len(roots) != 1:
            raise ValidationError(
                f"trace {trace_id!r} must have exactly one root span, "
                f"found {len(roots)}"
            )
        self._root = roots[0]
        self._children: dict[SpanId, list[Span]] = {}
        for span in spans:
            if span.parent_id is not None:
                if span.parent_id not in self._spans:
                    raise ValidationError(
                        f"span {span.span_id} references unknown parent "
                        f"{span.parent_id}"
                    )
                self._children.setdefault(span.parent_id, []).append(span)
        for children in self._children.values():
            children.sort(key=lambda s: s.start)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans.values())

    @property
    def root(self) -> Span:
        """The entry span of the request."""
        return self._root

    @property
    def spans(self) -> list[Span]:
        """All spans (copy, unordered)."""
        return list(self._spans.values())

    def children(self, span_id: SpanId) -> list[Span]:
        """Direct child spans of *span_id*, ordered by start time."""
        return list(self._children.get(span_id, []))

    def span(self, span_id: SpanId) -> Span:
        """Look up a span by id."""
        try:
            return self._spans[span_id]
        except KeyError:
            raise ValidationError(
                f"trace {self.trace_id!r} has no span {span_id!r}"
            ) from None

    def walk(self) -> Iterator[tuple[Span, Span | None]]:
        """Yield (span, parent) pairs in depth-first pre-order."""
        stack: list[tuple[Span, Span | None]] = [(self._root, None)]
        while stack:
            span, parent = stack.pop()
            yield span, parent
            for child in reversed(self.children(span.span_id)):
                stack.append((child, span))

    @property
    def duration_ms(self) -> float:
        """End-to-end duration: the root span's duration."""
        return self._root.duration_ms

    @property
    def has_error(self) -> bool:
        """Whether any span in the trace failed."""
        return any(span.error for span in self._spans.values())
