"""The feature-toggle store.

Toggles are evaluated *inside* the service process (the
``isEnabled('newFeature', user)`` conditional from Section 2.2.2), so —
unlike traffic routing — they add no network hop, but every evaluation
costs in-process time and every *registered* toggle adds maintenance
surface.  The store is the central key/value authority the chapter's
practitioners synchronize via ZooKeeper-style systems.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.traffic.users import bucket_user


class ToggleState(enum.Enum):
    """Lifecycle state of a toggle."""

    ACTIVE = "active"
    DISABLED = "disabled"
    RETIRED = "retired"  # removed from code, kept for audit


@dataclass
class FeatureToggle:
    """One feature toggle.

    Attributes:
        name: unique toggle name; doubles as the bucketing salt.
        service: the service whose code contains the conditional.
        rollout_fraction: share of users for whom the toggle evaluates
            true (hash-bucketed, sticky).
        enabled_groups: user groups always enabled regardless of bucket.
        state: lifecycle state.
        created_at: simulated creation time (for debt ageing).
    """

    name: str
    service: str
    rollout_fraction: float = 0.0
    enabled_groups: frozenset[str] = frozenset()
    state: ToggleState = ToggleState.ACTIVE
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.name or not self.service:
            raise ConfigurationError("toggle needs a name and a service")
        if not 0.0 <= self.rollout_fraction <= 1.0:
            raise ConfigurationError(
                f"rollout_fraction must be in [0, 1], got {self.rollout_fraction}"
            )

    def evaluate(self, user_id: str, group: str | None = None) -> bool:
        """Whether the feature is enabled for *user_id*."""
        if self.state is not ToggleState.ACTIVE:
            return False
        if group is not None and group in self.enabled_groups:
            return True
        if self.rollout_fraction <= 0.0:
            return False
        return bucket_user(user_id, self.name, 10_000) < self.rollout_fraction * 10_000


class ToggleStore:
    """Central registry of toggles with flip/retire operations."""

    def __init__(self) -> None:
        self._toggles: dict[str, FeatureToggle] = {}
        self.evaluations = 0

    def __len__(self) -> int:
        return len(self._toggles)

    def register(self, toggle: FeatureToggle) -> None:
        """Add a toggle; duplicate names are rejected."""
        if toggle.name in self._toggles:
            raise ConfigurationError(f"toggle {toggle.name!r} already registered")
        self._toggles[toggle.name] = toggle

    def get(self, name: str) -> FeatureToggle:
        """Look up a toggle."""
        try:
            return self._toggles[name]
        except KeyError:
            raise ConfigurationError(f"unknown toggle {name!r}") from None

    def is_enabled(self, name: str, user_id: str, group: str | None = None) -> bool:
        """The `isEnabled` call sites use — counts every evaluation."""
        self.evaluations += 1
        return self.get(name).evaluate(user_id, group)

    def set_rollout(self, name: str, fraction: float) -> None:
        """Move a toggle's rollout fraction (gradual rollout by toggle)."""
        toggle = self.get(name)
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
        self._toggles[name] = FeatureToggle(
            name=toggle.name,
            service=toggle.service,
            rollout_fraction=fraction,
            enabled_groups=toggle.enabled_groups,
            state=toggle.state,
            created_at=toggle.created_at,
        )

    def disable(self, name: str) -> None:
        """Kill switch: turn the feature off everywhere immediately."""
        toggle = self.get(name)
        self._toggles[name] = FeatureToggle(
            name=toggle.name,
            service=toggle.service,
            rollout_fraction=toggle.rollout_fraction,
            enabled_groups=toggle.enabled_groups,
            state=ToggleState.DISABLED,
            created_at=toggle.created_at,
        )

    def retire(self, name: str) -> None:
        """Remove the toggle from code (pays down the debt)."""
        toggle = self.get(name)
        self._toggles[name] = FeatureToggle(
            name=toggle.name,
            service=toggle.service,
            rollout_fraction=0.0,
            enabled_groups=frozenset(),
            state=ToggleState.RETIRED,
            created_at=toggle.created_at,
        )

    def active_toggles(self, service: str | None = None) -> list[FeatureToggle]:
        """All ACTIVE toggles, optionally for one service."""
        return [
            toggle
            for toggle in self._toggles.values()
            if toggle.state is ToggleState.ACTIVE
            and (service is None or toggle.service == service)
        ]

    def all_toggles(self) -> list[FeatureToggle]:
        """Every registered toggle regardless of state."""
        return list(self._toggles.values())

    def snapshot(self) -> dict:
        """JSON-compatible dump of the store, for durability checkpoints."""
        return {
            "evaluations": self.evaluations,
            "toggles": [
                {
                    "name": toggle.name,
                    "service": toggle.service,
                    "rollout_fraction": toggle.rollout_fraction,
                    "enabled_groups": sorted(toggle.enabled_groups),
                    "state": toggle.state.value,
                    "created_at": toggle.created_at,
                }
                for toggle in self._toggles.values()
            ],
        }

    def restore(self, data: dict) -> None:
        """Replace all contents with a :meth:`snapshot` dump.

        A malformed document raises :class:`ConfigurationError` (the
        toggle dataclass re-validates every field on the way in).
        """
        try:
            toggles = [
                FeatureToggle(
                    name=doc["name"],
                    service=doc["service"],
                    rollout_fraction=doc["rollout_fraction"],
                    enabled_groups=frozenset(doc["enabled_groups"]),
                    state=ToggleState(doc["state"]),
                    created_at=doc["created_at"],
                )
                for doc in data["toggles"]
            ]
            evaluations = int(data["evaluations"])
        except ConfigurationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed toggle snapshot: {exc}") from exc
        self._toggles = {toggle.name: toggle for toggle in toggles}
        self.evaluations = evaluations
