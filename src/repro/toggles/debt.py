"""Toggle technical-debt assessment.

Chapter 2's practitioners capped active toggles after state explosion
made testing infeasible ("continuously maintaining and testing 150
feature toggles became infeasible") and Rahman et al.'s findings on
toggle debt motivated Bifrost's routing-based design.  This module turns
those observations into a measurable report: active-toggle counts per
service, stale toggles, and the combinatorial state-space estimate that
drives test effort.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.toggles.store import ToggleState, ToggleStore


@dataclass(frozen=True)
class ToggleDebtReport:
    """Technical-debt indicators of a toggle population."""

    active: int
    disabled: int
    retired: int
    per_service: dict[str, int]
    stale: int
    state_space_log2: float

    @property
    def state_space(self) -> float:
        """Number of toggle-state combinations (2^active)."""
        return 2.0**self.state_space_log2

    def exceeds(self, max_active_per_service: int) -> list[str]:
        """Services whose active-toggle count breaks the policy."""
        return sorted(
            service
            for service, count in self.per_service.items()
            if count > max_active_per_service
        )


def assess_toggle_debt(
    store: ToggleStore,
    now: float = 0.0,
    stale_after_seconds: float = 30 * 24 * 3600.0,
) -> ToggleDebtReport:
    """Compute the debt report for *store* at simulated time *now*.

    A toggle is *stale* when it has been active longer than
    *stale_after_seconds* — regression-driven experiments run minutes to
    days (Table 2.5), so a toggle older than a month guards either a
    forgotten experiment or permanent configuration that should be
    promoted out of the experiment system.
    """
    per_service: Counter[str] = Counter()
    active = disabled = retired = stale = 0
    for toggle in store.all_toggles():
        if toggle.state is ToggleState.ACTIVE:
            active += 1
            per_service[toggle.service] += 1
            if now - toggle.created_at > stale_after_seconds:
                stale += 1
        elif toggle.state is ToggleState.DISABLED:
            disabled += 1
        else:
            retired += 1
    return ToggleDebtReport(
        active=active,
        disabled=disabled,
        retired=retired,
        per_service=dict(per_service),
        stale=stale,
        state_space_log2=float(active),
    )


def estimate_test_effort(report: ToggleDebtReport, per_combination_s: float = 1.0) -> float:
    """Seconds to exhaustively test all toggle combinations.

    Illustrates the state explosion: 150 active toggles make exhaustive
    combination testing take longer than the age of the universe.
    """
    if report.active > 60:
        return math.inf
    return report.state_space * per_combination_s
