"""Feature toggles: the code-level experimentation technique.

Chapter 2 found feature toggles to be the most-used implementation
technique (36% of experimenting respondents) while warning about their
costs: toggles accumulate as technical debt, state explosion makes
testing infeasible past ~150 active toggles, and inadvertently flipped
flags reactivate dead code.  Bifrost's answer is runtime traffic routing;
this package implements the toggle alternative so the trade-off can be
studied head-to-head (see the toggles-vs-routing ablation bench).
"""

from repro.toggles.store import FeatureToggle, ToggleStore
from repro.toggles.router import ToggleRouter
from repro.toggles.debt import ToggleDebtReport, assess_toggle_debt

__all__ = [
    "FeatureToggle",
    "ToggleStore",
    "ToggleRouter",
    "ToggleDebtReport",
    "assess_toggle_debt",
]
