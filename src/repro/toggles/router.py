"""Toggle-based experiment enactment.

Implements the :class:`~repro.microservices.runtime.Router` protocol via
feature toggles instead of routing proxies: the decision which version
handles a request happens *inside* the service (no proxy hop — zero
network overhead) but costs an in-process toggle evaluation per call and
ties the experiment to the service's deployment.

This is the head-to-head counterpart to
:class:`~repro.routing.proxy.VersionRouter` for the toggles-vs-routing
ablation: same sticky bucketing semantics, different cost structure.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.microservices.runtime import RoutingDecision
from repro.toggles.store import FeatureToggle, ToggleStore
from repro.traffic.workload import Request


class ToggleRouter:
    """Resolves service versions through feature toggles.

    One toggle per experimented service maps "feature enabled" to the
    experimental version.  Toggle evaluation is modelled as an
    in-process cost: ``evaluation_cost_ms`` is added to the *service's
    own* processing time rather than as a proxy hop, captured by
    reporting ``proxy_hops=0`` and letting callers account the
    per-evaluation cost via :attr:`evaluation_cost_ms` and the store's
    evaluation counter.
    """

    def __init__(
        self, store: ToggleStore | None = None, evaluation_cost_ms: float = 0.05
    ) -> None:
        self.store = store or ToggleStore()
        self.evaluation_cost_ms = evaluation_cost_ms
        self._experiments: dict[str, tuple[str, str]] = {}

    def start_experiment(
        self,
        service: str,
        experimental_version: str,
        fraction: float,
        toggle_name: str | None = None,
        created_at: float = 0.0,
    ) -> FeatureToggle:
        """Register the toggle guarding *experimental_version*."""
        if service in self._experiments:
            raise ConfigurationError(
                f"service {service!r} already has a toggle experiment"
            )
        name = toggle_name or f"exp_{service}"
        toggle = FeatureToggle(
            name=name,
            service=service,
            rollout_fraction=fraction,
            created_at=created_at,
        )
        self.store.register(toggle)
        self._experiments[service] = (name, experimental_version)
        return toggle

    def advance_rollout(self, service: str, fraction: float) -> None:
        """Gradual rollout: widen the toggle's user share."""
        name, _ = self._require(service)
        self.store.set_rollout(name, fraction)

    def stop_experiment(self, service: str, retire: bool = False) -> None:
        """Kill-switch the experiment (optionally retiring the toggle)."""
        name, _ = self._require(service)
        if retire:
            self.store.retire(name)
        else:
            self.store.disable(name)
        del self._experiments[service]

    def _require(self, service: str) -> tuple[str, str]:
        try:
            return self._experiments[service]
        except KeyError:
            raise ConfigurationError(
                f"service {service!r} has no toggle experiment"
            ) from None

    # -- Router protocol ------------------------------------------------------

    def route(self, request: Request, service: str) -> RoutingDecision:
        """Resolve the version by evaluating the service's toggle."""
        experiment = self._experiments.get(service)
        if experiment is None:
            return RoutingDecision()
        name, experimental_version = experiment
        enabled = self.store.is_enabled(name, request.user_id, request.group)
        # No proxy hop: the decision happens inside the process.
        return RoutingDecision(
            version=experimental_version if enabled else None,
            proxy_hops=0,
        )
