"""Deterministic shared-traffic synthesis for fleet slots.

Every admitted experiment observes a slice of the shared traffic: the
samples a slot contributes are ``fraction × slot_volume × group_share``
of the profile (Section 3.4's capacity model), scaled down and capped so
hundred-experiment fleets stay fast.  The feed is a *pure function* of
``(seed, experiment, slot)`` — it writes the identical samples no matter
when it is called — which is what makes fleet recovery work: a rebuilt
orchestrator re-feeds the committed slots into fresh metric stores and
lands in exactly the state the crashed process had.
"""

from __future__ import annotations

from repro.fenrir.model import SchedulingProblem
from repro.simulation.rng import SeededRng
from repro.telemetry.store import MetricStore


class SlotTrafficFeed:
    """Feeds one slot of synthetic samples into an experiment's store."""

    def __init__(
        self,
        problem: SchedulingProblem,
        seed: int,
        slot_seconds: float,
        base_error: float = 0.02,
        base_latency_ms: float = 100.0,
        samples_per_volume: float = 0.01,
        min_samples: int = 4,
        max_samples: int = 24,
    ) -> None:
        self.problem = problem
        self.seed = seed
        self.slot_seconds = float(slot_seconds)
        self.base_error = base_error
        self.base_latency_ms = base_latency_ms
        self.samples_per_volume = samples_per_volume
        self.min_samples = min_samples
        self.max_samples = max_samples

    def sample_count(self, slot: int, fraction: float, groups: tuple[str, ...]) -> int:
        """Samples one slot yields an experiment holding *fraction*."""
        profile = self.problem.profile
        if not 0 <= slot < profile.num_slots:
            return 0
        volume = profile.volume(slot)
        share = self.problem.group_share(frozenset(groups))
        raw = volume * share * fraction * self.samples_per_volume
        return max(self.min_samples, min(self.max_samples, int(raw)))

    def feed(
        self,
        store: MetricStore,
        name: str,
        slot: int,
        fraction: float,
        groups: tuple[str, ...],
        service: str,
        stable: str,
        experimental: str,
        error_delta: float = 0.0,
        latency_factor: float = 1.0,
    ) -> int:
        """Write slot *slot*'s samples for one experiment; returns count.

        The stable version always observes baseline behaviour; the
        experimental version carries the world's ground-truth deltas, so
        the per-experiment check gate has a real signal to act on.
        """
        count = self.sample_count(slot, fraction, groups)
        if count == 0:
            return 0
        rng = SeededRng(self.seed).fork(f"feed:{name}:{slot}")
        t0 = slot * self.slot_seconds
        step = self.slot_seconds / count
        exp_error = min(1.0, self.base_error + error_delta)
        exp_latency = self.base_latency_ms * latency_factor
        for i in range(count):
            at = t0 + (i + 0.5) * step
            for version, err_rate, latency in (
                (stable, self.base_error, self.base_latency_ms),
                (experimental, exp_error, exp_latency),
            ):
                errored = 1.0 if rng.uniform(0.0, 1.0) < err_rate else 0.0
                store.record(service, version, "error", at, errored)
                store.record(
                    service,
                    version,
                    "response_time",
                    at,
                    max(1.0, rng.gauss(latency, latency * 0.1)),
                )
                store.record(service, version, "throughput", at, 1.0)
        return count
