"""The fleet orchestrator: Fenrir plans executed as supervised Bifrost fleets.

This is the layer that closes the dissertation's loop.  A Fenrir
:class:`~repro.fenrir.schedule.Schedule` plans dozens–hundreds of
overlapping experiments over traffic slots; the
:class:`FleetOrchestrator` executes that plan by instantiating one
supervised Bifrost engine per experiment on a shared application and
advancing all of them slot-by-slot in lockstep against shared traffic.
Outcomes feed :func:`repro.fenrir.reevaluation.build_reevaluation_from_fleet`,
completing plan → execute → observe → replan.

Robustness is the design driver:

- **Bulkheads** — every experiment owns its simulation clock, metric
  store, router, journal, and :class:`~repro.bifrost.recovery.EngineSupervisor`
  with a bounded :class:`~repro.bifrost.recovery.RestartPolicy`.  A check
  crash, engine crash, or crash-loop is absorbed as *that experiment's*
  outcome; neighbours never observe it.  (``bulkheads=False`` exists to
  demonstrate the failure mode: one poisoned check then aborts the whole
  fleet — the configuration the ``fleet_isolation`` scenario invariant
  and its regression-corpus entry pin down.)
- **Admission control** — Fenrir's per-(slot, group) traffic budget is
  re-checked at every slot boundary by a pure
  :class:`~repro.fleet.admission.AdmissionController`: over-budget
  starts are queued or shed by priority, never silently over-admitted.
- **Crash consistency** — fleet state journals through the PR-2 WAL
  with a redo-logging discipline: a slot's effects are re-derivable
  until its ``fleet_slot`` commit record lands, and every side effect
  below the fleet (engine submits, ticks, transitions) journals in the
  experiment's own WAL first.  :func:`repro.fleet.recovery.recover_fleet`
  rebuilds a killed orchestrator to a state property-tested equal to an
  uncrashed run.
- **Watchdog** — a :class:`~repro.fleet.watchdog.FleetWatchdog` pauses
  admissions or sheds low-priority experiments on degraded substrate
  health, and a hard fleet deadline (``grace_slots`` past the horizon)
  bounds how long repeats and recoveries can hold the fleet open.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.bifrost.checks import CheckEvaluator
from repro.bifrost.engine import BifrostEngine
from repro.bifrost.journal import Journal, SnapshotStore
from repro.bifrost.model import (
    Check,
    Phase,
    PhaseType,
    Strategy,
    StrategyOutcome,
)
from repro.bifrost.recovery import EngineSupervisor, RestartPolicy
from repro.errors import ExecutionError, ValidationError
from repro.fenrir.model import ExperimentSpec
from repro.fenrir.schedule import Gene, Schedule
from repro.fleet.admission import (
    AdmissionController,
    AdmissionRequest,
    usage_within_budget,
)
from repro.fleet.traffic import SlotTrafficFeed
from repro.fleet.watchdog import FleetWatchdog
from repro.microservices.application import Application
from repro.microservices.service import EndpointSpec, ServiceVersion
from repro.simulation.latency import ConstantLatency
from repro.obs.events import (
    FLEET_EXPERIMENT_CRASHED,
    FLEET_EXPERIMENT_OUTCOME,
    FLEET_EXPERIMENT_RESTARTED,
    FLEET_FINISHED,
    FLEET_PLANNED,
    FLEET_SHED,
    FLEET_SLOT_COMMITTED,
    FLEET_SLOT_STARTED,
)
from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.routing.proxy import VersionRouter
from repro.simulation.engine import SimulationEngine
from repro.telemetry.store import MetricStore

#: Fleet WAL record kinds (the fleet journal reuses the PR-2 Journal).
K_PLANNED = "fleet_planned"
K_SLOT_STARTED = "fleet_slot_started"
K_DECISION = "fleet_decision"
K_SLOT = "fleet_slot"
K_RECOVERED = "fleet_recovered"
K_FINISHED = "fleet_finished"

#: Fleet WAL document format version.
FLEET_FORMAT = 1

#: Version labels every fleet experiment's service carries.
STABLE_VERSION = "1.0.0"
EXPERIMENTAL_VERSION = "2.0.0"

#: Terminal fleet outcomes (the reevaluation vocabulary).
OUTCOME_PROMOTED = "promoted"
OUTCOME_ROLLED_BACK = "rolled_back"
OUTCOME_ABORTED = "aborted"
OUTCOME_INCONCLUSIVE = "inconclusive"
OUTCOME_SHED = "shed"

_ENGINE_OUTCOMES = {
    StrategyOutcome.COMPLETED: OUTCOME_PROMOTED,
    StrategyOutcome.ROLLED_BACK: OUTCOME_ROLLED_BACK,
    StrategyOutcome.ABORTED: OUTCOME_ABORTED,
}

#: Shed reasons the orchestrator itself produces (admission adds its own).
SHED_CRASH_LOOP = "crash_loop"
SHED_HEALTH = "health"
SHED_FLEET_DEADLINE = "fleet_deadline"
SHED_BURN = "slo_burn"


class OrchestratorKilled(Exception):
    """The simulated process kill used by crash-consistency tests.

    Raised *before* the Nth fleet-WAL append, modelling a process that
    died with N-1 records durable.  Not caught anywhere in the fleet:
    it must unwind through every bulkhead untouched.
    """


class FleetPoison(Exception):
    """An injected hard check crash (not an absorbable ExecutionError)."""


@dataclass(frozen=True)
class ExperimentFaults:
    """Faults injected into one experiment's bulkhead.

    Attributes:
        check_error_slots: slots whose check evaluations raise
            :class:`~repro.errors.ExecutionError` — the engine absorbs
            these as inconclusive check results.
        poison_slots: slots whose check evaluations raise a hard
            :class:`FleetPoison` — only the bulkhead stands between this
            and the rest of the fleet.
        crash_slots: slots where the engine crashes at slot start and is
            restarted (journal replay + catch-up) at slot end.
        crash_loop: crash at *every* slot start while running; the
            supervisor restarts until its budget refuses, at which point
            the fleet sheds the experiment.
    """

    check_error_slots: tuple[int, ...] = ()
    poison_slots: tuple[int, ...] = ()
    crash_slots: tuple[int, ...] = ()
    crash_loop: bool = False

    def to_dict(self) -> dict:
        return {
            "check_error_slots": list(self.check_error_slots),
            "poison_slots": list(self.poison_slots),
            "crash_slots": list(self.crash_slots),
            "crash_loop": self.crash_loop,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentFaults":
        try:
            return cls(
                check_error_slots=tuple(int(s) for s in data["check_error_slots"]),
                poison_slots=tuple(int(s) for s in data["poison_slots"]),
                crash_slots=tuple(int(s) for s in data["crash_slots"]),
                crash_loop=bool(data["crash_loop"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed experiment faults: {exc}") from exc

    def crashes_at(self, slot: int) -> bool:
        return self.crash_loop or slot in self.crash_slots


@dataclass(frozen=True)
class FleetConfig:
    """Execution parameters of one fleet run.

    Attributes:
        slot_seconds: simulated seconds per Fenrir traffic slot.
        budget: per-(slot, group) admitted traffic cap.
        max_defer_slots: queued slots before admission sheds as starved.
        grace_slots: slots past the schedule horizon before the fleet
            deadline sheds everything still running.
        check_interval_seconds / check_window_seconds / check_threshold:
            the per-experiment error gate's cadence, window, and bound.
        base_error: ambient error rate of healthy versions.
        max_repeats: inconclusive repeats each experiment phase gets.
        restart_max / restart_window_slots: each bulkhead's
            :class:`~repro.bifrost.recovery.RestartPolicy` budget; the
            window converts to seconds on the experiment's clock.
        bulkheads: fault isolation on (the safe default); off, one
            experiment's hard fault aborts the fleet — kept only so the
            scenario fuzzer can demonstrate the contamination.
        slo_objective: error-budget SLO target in (0, 1) for each
            experiment's burn-rate rule (None disables burn-rate
            shedding); a burning experiment is shed with reason
            ``slo_burn`` before its deadline.
        slo_fast_window_seconds / slo_slow_window_seconds /
            slo_burn_threshold: the multi-window burn-rate rule's
            parameters (see :class:`repro.obs.alerts.AlertRule`).
        seed: root seed of the deterministic traffic feed.
    """

    slot_seconds: float = 60.0
    budget: float = 1.0
    max_defer_slots: int = 4
    grace_slots: int = 8
    check_interval_seconds: float = 10.0
    check_window_seconds: float = 30.0
    check_threshold: float = 0.10
    base_error: float = 0.02
    max_repeats: int = 1
    restart_max: int = 3
    restart_window_slots: int | None = None
    bulkheads: bool = True
    slo_objective: float | None = None
    slo_fast_window_seconds: float = 30.0
    slo_slow_window_seconds: float = 120.0
    slo_burn_threshold: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.slot_seconds <= 0:
            raise ValidationError("slot_seconds must be positive")
        if self.grace_slots < 0:
            raise ValidationError("grace_slots must be >= 0")
        if self.budget <= 0:
            raise ValidationError("budget must be positive")
        if self.max_defer_slots < 0:
            raise ValidationError("max_defer_slots must be >= 0")
        if self.check_interval_seconds <= 0 or self.check_window_seconds <= 0:
            raise ValidationError("check cadence and window must be positive")
        if self.max_repeats < 0:
            raise ValidationError("max_repeats must be >= 0")
        if self.restart_max < 0:
            raise ValidationError("restart_max must be >= 0")
        if self.slo_objective is not None and not 0.0 < self.slo_objective < 1.0:
            raise ValidationError("slo_objective must be in (0, 1)")
        if self.slo_fast_window_seconds <= 0 or self.slo_slow_window_seconds <= 0:
            raise ValidationError("slo windows must be positive")
        if self.slo_slow_window_seconds < self.slo_fast_window_seconds:
            raise ValidationError("slo_slow_window_seconds must be >= fast")
        if self.slo_burn_threshold <= 0:
            raise ValidationError("slo_burn_threshold must be positive")

    def to_dict(self) -> dict:
        return {
            "slot_seconds": self.slot_seconds,
            "budget": self.budget,
            "max_defer_slots": self.max_defer_slots,
            "grace_slots": self.grace_slots,
            "check_interval_seconds": self.check_interval_seconds,
            "check_window_seconds": self.check_window_seconds,
            "check_threshold": self.check_threshold,
            "base_error": self.base_error,
            "max_repeats": self.max_repeats,
            "restart_max": self.restart_max,
            "restart_window_slots": self.restart_window_slots,
            "bulkheads": self.bulkheads,
            "slo_objective": self.slo_objective,
            "slo_fast_window_seconds": self.slo_fast_window_seconds,
            "slo_slow_window_seconds": self.slo_slow_window_seconds,
            "slo_burn_threshold": self.slo_burn_threshold,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FleetConfig":
        # Tolerant of missing keys so WALs written before a config field
        # existed still recover with that field's default.
        defaults = cls().to_dict()
        try:
            return cls(**{k: data.get(k, default) for k, default in defaults.items()})
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed fleet config: {exc}") from exc


@dataclass(frozen=True)
class SlotLedger:
    """Everything one committed slot did — the fleet's audit record."""

    slot: int
    started: tuple[str, ...]
    admitted: tuple[str, ...]
    queued: tuple[str, ...]
    shed: tuple[tuple[str, str], ...]
    crashed: tuple[str, ...]
    restarted: tuple[str, ...]
    failed: tuple[tuple[str, str], ...]
    outcomes: tuple[tuple[str, str], ...]
    usage: tuple[tuple[str, float], ...]
    paused: bool
    health: float | None

    def digest(self) -> tuple:
        return (
            self.slot,
            self.started,
            self.admitted,
            self.queued,
            self.shed,
            self.crashed,
            self.restarted,
            self.failed,
            self.outcomes,
            tuple((g, round(u, 9)) for g, u in self.usage),
            self.paused,
            self.health,
        )

    def to_dict(self) -> dict:
        return {
            "slot": self.slot,
            "started": list(self.started),
            "admitted": list(self.admitted),
            "queued": list(self.queued),
            "shed": [list(pair) for pair in self.shed],
            "crashed": list(self.crashed),
            "restarted": list(self.restarted),
            "failed": [list(pair) for pair in self.failed],
            "outcomes": [list(pair) for pair in self.outcomes],
            "usage": [list(pair) for pair in self.usage],
            "paused": self.paused,
            "health": self.health,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SlotLedger":
        try:
            return cls(
                slot=int(data["slot"]),
                started=tuple(data["started"]),
                admitted=tuple(data["admitted"]),
                queued=tuple(data["queued"]),
                shed=tuple((n, r) for n, r in data["shed"]),
                crashed=tuple(data["crashed"]),
                restarted=tuple(data["restarted"]),
                failed=tuple((n, e) for n, e in data["failed"]),
                outcomes=tuple((n, o) for n, o in data["outcomes"]),
                usage=tuple((g, float(u)) for g, u in data["usage"]),
                paused=bool(data["paused"]),
                health=None if data["health"] is None else float(data["health"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed slot ledger: {exc}") from exc


@dataclass
class FleetResult:
    """Final state of one fleet run.

    ``recovered`` is deliberately excluded from :meth:`digest`: the
    crash-consistency contract is that a recovered run is
    indistinguishable from an uncrashed one *except* for knowing it
    recovered.
    """

    outcomes: dict[str, str]
    ledger: list[SlotLedger] = field(default_factory=list)
    sheds: dict[str, str] = field(default_factory=dict)
    restarts: dict[str, int] = field(default_factory=dict)
    slots_run: int = 0
    aborted: bool = False
    recovered: bool = False

    def digest(self) -> tuple:
        return (
            tuple(sorted(self.outcomes.items())),
            tuple(row.digest() for row in self.ledger),
            tuple(sorted(self.sheds.items())),
            tuple(sorted(self.restarts.items())),
            self.slots_run,
            self.aborted,
        )


def service_of(experiment: str) -> str:
    """Service name an experiment's versions deploy under."""
    return f"svc-{experiment}"


def fleet_strategy(
    name: str, service: str, gene: Gene, config: FleetConfig
) -> Strategy:
    """One-phase canary gated on the experimental error rate.

    Duration tracks the Fenrir gene (``duration`` slots), the fraction
    is the gene's planned traffic share, and the audience is the gene's
    user groups — the schedule's reservation, made executable.
    """
    check = Check(
        name="error-gate",
        service=service,
        version=EXPERIMENTAL_VERSION,
        metric="error",
        aggregation="mean",
        operator="<=",
        threshold=config.check_threshold,
        window_seconds=config.check_window_seconds,
        interval_seconds=config.check_interval_seconds,
    )
    phase = Phase(
        name="canary",
        type=PhaseType.CANARY,
        service=service,
        stable_version=STABLE_VERSION,
        experimental_version=EXPERIMENTAL_VERSION,
        fraction=min(0.99, gene.fraction),
        audience_groups=frozenset(gene.groups),
        duration_seconds=gene.duration * config.slot_seconds,
        check_interval_seconds=config.check_interval_seconds,
        checks=(check,),
        max_repeats=config.max_repeats,
    )
    return Strategy(name=name, phases=(phase,))


class _FaultableEvaluator:
    """Check evaluator wrapper that injects per-slot faults."""

    def __init__(
        self,
        inner: CheckEvaluator,
        faults: ExperimentFaults,
        slot_seconds: float,
        name: str,
    ) -> None:
        self.inner = inner
        self.faults = faults
        self.slot_seconds = slot_seconds
        self.name = name

    def evaluate(self, check: Check, now: float):
        slot = int(now // self.slot_seconds)
        if slot in self.faults.poison_slots:
            raise FleetPoison(
                f"poisoned check evaluation for {self.name!r} at slot {slot}"
            )
        if slot in self.faults.check_error_slots:
            raise ExecutionError(
                f"injected check failure for {self.name!r} at slot {slot}"
            )
        return self.inner.evaluate(check, now)


class _Bulkhead:
    """One experiment's isolated execution cell.

    Owns the clock, stores, router, WAL, and supervisor — everything
    whose corruption must stay local to this experiment.
    """

    def __init__(
        self,
        name: str,
        spec: ExperimentSpec,
        gene: Gene,
        application: Application,
        config: FleetConfig,
        faults: ExperimentFaults,
        journal: Journal,
        observer: Observer,
    ) -> None:
        self.name = name
        self.spec = spec
        self.gene = gene
        self.service = service_of(name)
        self.application = application
        self.config = config
        self.faults = faults
        self.sim = SimulationEngine()
        self.journal = journal
        self.snapshots = SnapshotStore()
        self.store = MetricStore()
        self.router = VersionRouter()
        self.strategy = fleet_strategy(name, self.service, gene, config)
        self.quarantined = False
        # Burn-rate sentinel over this experiment's own error stream.
        # publish=False: the gate samples would land in the bulkhead's
        # store and perturb crash-recovery store equality; the fleet
        # consumes verdicts directly via the watchdog instead.
        self.alerts: AlertEngine | None = None
        if config.slo_objective is not None:
            self.alerts = AlertEngine(
                self.store,
                [
                    AlertRule(
                        name=f"{name}-slo",
                        service=self.service,
                        version=EXPERIMENTAL_VERSION,
                        objective=config.slo_objective,
                        fast_window=config.slo_fast_window_seconds,
                        slow_window=config.slo_slow_window_seconds,
                        burn_threshold=config.slo_burn_threshold,
                    )
                ],
                observer=observer,
                publish=False,
            )
        window = (
            None
            if config.restart_window_slots is None
            else config.restart_window_slots * config.slot_seconds
        )
        self.supervisor = EngineSupervisor(
            self._build_engine,
            self.journal,
            self.snapshots,
            policy=RestartPolicy(
                max_restarts=config.restart_max, window_seconds=window
            ),
            observer=observer,
        )

    def _build_engine(self) -> BifrostEngine:
        engine = BifrostEngine(
            self.sim,
            self.application,
            self.router,
            self.store,
            journal=self.journal,
            snapshots=self.snapshots,
        )
        engine.evaluator = _FaultableEvaluator(
            CheckEvaluator(self.store),
            self.faults,
            self.config.slot_seconds,
            self.name,
        )
        engine.alerts = self.alerts
        return engine

    @property
    def engine(self) -> BifrostEngine:
        return self.supervisor.engine

    @property
    def submitted(self) -> bool:
        return any(e.strategy.name == self.name for e in self.engine.executions)

    def engine_outcome(self) -> str | None:
        """Terminal fleet outcome of this bulkhead's engine, if any."""
        for execution in self.engine.executions:
            if execution.strategy.name == self.name:
                return _ENGINE_OUTCOMES.get(execution.outcome)
        return None


@dataclass
class _ResumeState:
    """Committed fleet state recover_fleet folds out of the WAL."""

    cursor: int = 0
    started: set[str] = field(default_factory=set)
    outcomes: dict[str, str] = field(default_factory=dict)
    sheds: dict[str, str] = field(default_factory=dict)
    restarts: dict[str, int] = field(default_factory=dict)
    restart_times: dict[str, list[float]] = field(default_factory=dict)
    deferrals: dict[str, int] = field(default_factory=dict)
    ledger: list[SlotLedger] = field(default_factory=list)
    aborted: bool = False


class FleetOrchestrator:
    """Executes a Fenrir schedule as a supervised Bifrost fleet."""

    def __init__(
        self,
        schedule: Schedule,
        world: Mapping[str, float] | None = None,
        faults: Mapping[str, ExperimentFaults] | None = None,
        config: FleetConfig | None = None,
        observer: Observer | None = None,
        watchdog: FleetWatchdog | None = None,
        fleet_journal: Journal | None = None,
        journal_factory: Callable[[str], Journal] | None = None,
        crash_after_appends: int | None = None,
        _resume: _ResumeState | None = None,
    ) -> None:
        self.schedule = schedule
        self.problem = schedule.problem
        self.config = config or FleetConfig()
        self.world = dict(world or {})
        self.faults = dict(faults or {})
        self.obs = observer or NULL_OBSERVER
        self.watchdog = watchdog or FleetWatchdog()
        self.journal = fleet_journal or Journal()
        self.journal_factory = journal_factory or (lambda name: Journal())
        self.crash_after_appends = crash_after_appends
        self._fleet_appends = 0

        names = {spec.name for spec, _ in schedule}
        for name in self.world:
            if name not in names:
                raise ValidationError(f"world entry for unknown experiment {name!r}")
        for name in self.faults:
            if name not in names:
                raise ValidationError(f"faults entry for unknown experiment {name!r}")

        self.admission = AdmissionController(
            self.problem.group_names,
            budget=self.config.budget,
            max_defer=self.config.max_defer_slots,
        )
        self.feed = SlotTrafficFeed(
            self.problem,
            seed=self.config.seed,
            slot_seconds=self.config.slot_seconds,
            base_error=self.config.base_error,
        )
        self.application = self._build_application()
        self.bulkheads: dict[str, _Bulkhead] = {}
        for spec, gene in schedule:
            self.bulkheads[spec.name] = _Bulkhead(
                spec.name,
                spec,
                gene,
                self.application,
                self.config,
                self.faults.get(spec.name, ExperimentFaults()),
                self.journal_factory(spec.name),
                self.obs,
            )

        if self.watchdog.burning_of is None and any(
            b.alerts is not None for b in self.bulkheads.values()
        ):
            self.watchdog.burning_of = self._burning_experiments

        state = _resume or _ResumeState()
        self.cursor = state.cursor
        self.started = set(state.started)
        self.outcomes = dict(state.outcomes)
        self.sheds = dict(state.sheds)
        self.restarts = dict(state.restarts)
        self.deferrals = dict(state.deferrals)
        self.ledger = list(state.ledger)
        self.aborted = state.aborted
        self.recovered = _resume is not None

        if _resume is None:
            self._append(
                K_PLANNED,
                0.0,
                {
                    "format": FLEET_FORMAT,
                    "config": self.config.to_dict(),
                    "world": dict(sorted(self.world.items())),
                    "faults": {
                        name: f.to_dict()
                        for name, f in sorted(self.faults.items())
                    },
                    "schedule": _schedule_doc(schedule),
                },
            )
            if self.obs.enabled:
                self.obs.emit(
                    FLEET_PLANNED,
                    0.0,
                    experiments=len(self.bulkheads),
                    horizon=self.problem.horizon,
                    budget=self.config.budget,
                )

    # -- construction helpers ------------------------------------------------

    def _build_application(self) -> Application:
        app = Application()
        for spec, _ in self.schedule:
            service = service_of(spec.name)
            endpoints = {
                "handle": EndpointSpec("handle", latency=ConstantLatency(10.0))
            }
            app.deploy(
                ServiceVersion(service, STABLE_VERSION, endpoints), stable=True
            )
            app.deploy(ServiceVersion(service, EXPERIMENTAL_VERSION, endpoints))
        return app

    def _append(self, kind: str, time: float, data: dict) -> None:
        """Fleet-WAL append — the only kill points crash tests exercise."""
        if (
            self.crash_after_appends is not None
            and self._fleet_appends >= self.crash_after_appends
        ):
            raise OrchestratorKilled(
                f"orchestrator killed before fleet append "
                f"#{self._fleet_appends + 1} ({kind} @ {time})"
            )
        self._fleet_appends += 1
        self.journal.append(kind, time, data)

    # -- state queries -------------------------------------------------------

    @property
    def names(self) -> list[str]:
        return [spec.name for spec, _ in self.schedule]

    @property
    def done(self) -> bool:
        return self.aborted or all(name in self.outcomes for name in self.names)

    def _holding(self) -> list[str]:
        """Experiments currently holding a traffic reservation."""
        return [
            name
            for name in self.names
            if name in self.started and name not in self.outcomes
        ]

    def _burning_experiments(self, slot: int) -> tuple[str, ...]:
        """Holding experiments whose burn-rate SLO is firing at *slot*.

        Pure in (bulkhead stores, slot) — the alert engines evaluate
        multi-window burns from store contents alone, so recovery from a
        WAL reaches the same verdicts and crash-consistency holds.
        """
        now = slot * self.config.slot_seconds
        burning = []
        for name in self._holding():
            bulkhead = self.bulkheads[name]
            if bulkhead.alerts is None or bulkhead.quarantined:
                continue
            evaluations = bulkhead.alerts.evaluate(now)
            if any(evaluation.firing for evaluation in evaluations):
                burning.append(name)
        return tuple(sorted(burning))

    def _request_for(self, bulkhead: _Bulkhead, slot: int) -> AdmissionRequest:
        gene, spec = bulkhead.gene, bulkhead.spec
        latest = max(gene.start, self.problem.horizon - gene.duration)
        return AdmissionRequest(
            name=bulkhead.name,
            fraction=gene.fraction,
            groups=tuple(sorted(gene.groups)),
            weight=spec.weight,
            latest_start=latest,
            deferrals=self.deferrals.get(bulkhead.name, 0),
        )

    # -- slot execution ------------------------------------------------------

    def run(self) -> FleetResult:
        """Advance slots until every experiment reached a terminal outcome."""
        while not self.done:
            self.advance_slot()
        t = self.cursor * self.config.slot_seconds
        self._append(
            K_FINISHED, t, {"outcomes": dict(sorted(self.outcomes.items()))}
        )
        if self.obs.enabled:
            self.obs.emit(
                FLEET_FINISHED,
                t,
                slots=self.cursor,
                outcomes=dict(sorted(self.outcomes.items())),
                shed=len(self.sheds),
            )
        return self.result()

    def result(self) -> FleetResult:
        return FleetResult(
            outcomes=dict(self.outcomes),
            ledger=list(self.ledger),
            sheds=dict(self.sheds),
            restarts=dict(self.restarts),
            slots_run=self.cursor,
            aborted=self.aborted,
            recovered=self.recovered,
        )

    def advance_slot(self) -> None:
        """Run one slot: admit, feed, advance every bulkhead, commit."""
        slot = self.cursor
        t0 = slot * self.config.slot_seconds
        t1 = t0 + self.config.slot_seconds
        cfg = self.config
        self._append(K_SLOT_STARTED, t0, {"slot": slot})
        if self.obs.enabled:
            self.obs.emit(FLEET_SLOT_STARTED, t0, slot=slot)

        slot_shed: list[tuple[str, str]] = []
        slot_outcomes: dict[str, str] = {}

        # Fleet deadline: past the grace window nothing may keep running.
        deadline = self.problem.horizon + cfg.grace_slots
        if slot >= deadline:
            for name in self.names:
                if name not in self.outcomes:
                    self._shed(name, SHED_FLEET_DEADLINE, t0, slot_shed, slot_outcomes)
            self._commit(
                slot, t1,
                started=(), admitted=(), queued=(),
                shed=slot_shed, crashed=(), restarted=(), failed=(),
                outcomes=slot_outcomes, usage=(), paused=False, health=None,
            )
            return

        verdict = self.watchdog.assess(slot)
        if verdict.shed:
            holders = self._holding()
            if holders:
                victim = min(
                    holders, key=lambda n: (self.bulkheads[n].spec.weight, n)
                )
                self._shed(victim, SHED_HEALTH, t0, slot_shed, slot_outcomes)

        # Burn-rate shedding: an experiment torching its own error
        # budget is cut before its deadline, however healthy the
        # substrate looks.
        for name in verdict.burning:
            if name in self.started and name not in slot_outcomes and (
                name not in self.outcomes
            ):
                self._shed(name, SHED_BURN, t0, slot_shed, slot_outcomes)

        # Admission: pending experiments whose planned start has arrived.
        reserved = [
            self._request_for(self.bulkheads[name], slot)
            for name in self._holding()
        ]
        pending = [
            self._request_for(bulkhead, slot)
            for name, bulkhead in self.bulkheads.items()
            if name not in self.started
            and name not in self.outcomes
            and bulkhead.gene.start <= slot
        ]
        decision = self.admission.decide(
            slot, pending, reserved, paused=verdict.pause
        )
        assert usage_within_budget(dict(decision.usage), cfg.budget), (
            f"admission over-admitted slot {slot}: {decision.usage}"
        )
        for name, reason in decision.shed:
            self._shed(name, reason, t0, slot_shed, slot_outcomes)
        for name in decision.queued:
            self.deferrals[name] = self.deferrals.get(name, 0) + 1
        started_now: list[str] = []
        for name in decision.admitted:
            bulkhead = self.bulkheads[name]
            if not bulkhead.submitted:  # recovery may have re-adopted it
                bulkhead.engine.submit(bulkhead.strategy, at=t0)
            self.started.add(name)
            started_now.append(name)
        self._append(
            K_DECISION,
            t0,
            {
                "slot": slot,
                "admitted": list(decision.admitted),
                "queued": list(decision.queued),
                "shed": [list(pair) for pair in decision.shed],
                "usage": [list(pair) for pair in decision.usage],
                "paused": verdict.pause,
            },
        )

        # The fed set: every reservation-holder this slot (new + running).
        # The ledger journals THIS list — recovery re-feeds exactly it.
        holders = self._holding()

        # Injected engine crashes land at slot start: the engine misses
        # the whole slot and catch-up replay covers it at restart.
        crashed: list[str] = []
        for name in holders:
            bulkhead = self.bulkheads[name]
            if bulkhead.faults.crashes_at(slot) and bulkhead.engine.alive:
                bulkhead.supervisor.crash(t0)
                crashed.append(name)
                if self.obs.enabled:
                    self.obs.emit(
                        FLEET_EXPERIMENT_CRASHED, t0, experiment=name, slot=slot
                    )

        # Shared traffic: every reservation-holder observes its slice,
        # whether or not its engine is up (telemetry outlives engines).
        for name in holders:
            bulkhead = self.bulkheads[name]
            self.feed.feed(
                bulkhead.store,
                name,
                slot,
                bulkhead.gene.fraction,
                tuple(sorted(bulkhead.gene.groups)),
                bulkhead.service,
                STABLE_VERSION,
                EXPERIMENTAL_VERSION,
                error_delta=self.world.get(name, 0.0),
            )

        # Advance every bulkhead's clock in lockstep.  The try/except IS
        # the bulkhead: a hard fault stops this experiment's clock only.
        failed: list[tuple[str, str]] = []
        for name in holders:
            bulkhead = self.bulkheads[name]
            try:
                bulkhead.sim.run_until(t1)
            except OrchestratorKilled:
                raise
            except Exception as exc:
                if not cfg.bulkheads:
                    self._abort_fleet(slot, t1, name, exc, slot_outcomes, failed)
                    self._commit(
                        slot, t1,
                        started=started_now, admitted=holders,
                        queued=decision.queued, shed=slot_shed,
                        crashed=crashed, restarted=(), failed=failed,
                        outcomes=slot_outcomes, usage=decision.usage,
                        paused=verdict.pause, health=verdict.score,
                    )
                    return
                bulkhead.quarantined = True
                if bulkhead.engine.alive:
                    bulkhead.engine.kill()
                failed.append((name, f"{type(exc).__name__}: {exc}"))
                slot_outcomes[name] = OUTCOME_INCONCLUSIVE
                self.outcomes[name] = OUTCOME_INCONCLUSIVE

        # Restart crashed engines at slot end; a refused restart means
        # the budget is spent — the fleet sheds the crash-looper.
        restarted: list[str] = []
        for name in list(self._holding()):
            bulkhead = self.bulkheads[name]
            if bulkhead.quarantined or bulkhead.engine.alive:
                continue
            bulkhead.supervisor.restart(t1)
            if bulkhead.supervisor.gave_up:
                self._shed(name, SHED_CRASH_LOOP, t1, slot_shed, slot_outcomes)
            else:
                restarted.append(name)
                self.restarts[name] = self.restarts.get(name, 0) + 1
                if self.obs.enabled:
                    self.obs.emit(
                        FLEET_EXPERIMENT_RESTARTED,
                        t1,
                        experiment=name,
                        slot=slot,
                        restarts=self.restarts[name],
                    )

        # Harvest newly-terminal engine outcomes.
        for name in list(self._holding()):
            outcome = self.bulkheads[name].engine_outcome()
            if outcome is not None:
                slot_outcomes[name] = outcome
                self.outcomes[name] = outcome
                if self.obs.enabled:
                    self.obs.emit(
                        FLEET_EXPERIMENT_OUTCOME,
                        t1,
                        experiment=name,
                        outcome=outcome,
                        slot=slot,
                    )

        self._commit(
            slot, t1,
            started=started_now, admitted=holders,
            queued=decision.queued, shed=slot_shed, crashed=crashed,
            restarted=restarted, failed=failed, outcomes=slot_outcomes,
            usage=decision.usage, paused=verdict.pause, health=verdict.score,
        )

    # -- slot bookkeeping ----------------------------------------------------

    def _shed(
        self,
        name: str,
        reason: str,
        time: float,
        slot_shed: list[tuple[str, str]],
        slot_outcomes: dict[str, str],
    ) -> None:
        """Drop one experiment from the plan — reported, never silent."""
        bulkhead = self.bulkheads[name]
        if name in self.started and bulkhead.engine.alive:
            try:
                bulkhead.engine.cancel(name)
            except ExecutionError:
                pass  # never submitted on this engine incarnation
        self.outcomes[name] = OUTCOME_SHED
        self.sheds[name] = reason
        slot_outcomes[name] = OUTCOME_SHED
        slot_shed.append((name, reason))
        if self.obs.enabled:
            self.obs.emit(FLEET_SHED, time, experiment=name, reason=reason)
            self.obs.metrics.counter("fleet_shed_total", reason=reason).increment()

    def _abort_fleet(
        self,
        slot: int,
        time: float,
        culprit: str,
        exc: Exception,
        slot_outcomes: dict[str, str],
        failed: list[tuple[str, str]],
    ) -> None:
        """No bulkheads: one hard fault takes the whole fleet down."""
        failed.append((culprit, f"{type(exc).__name__}: {exc}"))
        self.aborted = True
        for name in self.names:
            if name not in self.outcomes:
                self.outcomes[name] = OUTCOME_INCONCLUSIVE
                slot_outcomes[name] = OUTCOME_INCONCLUSIVE

    def _commit(
        self,
        slot: int,
        time: float,
        started,
        admitted,
        queued,
        shed,
        crashed,
        restarted,
        failed,
        outcomes,
        usage,
        paused,
        health,
    ) -> None:
        row = SlotLedger(
            slot=slot,
            started=tuple(started),
            admitted=tuple(admitted),
            queued=tuple(queued),
            shed=tuple(shed),
            crashed=tuple(crashed),
            restarted=tuple(restarted),
            failed=tuple(failed),
            outcomes=tuple(sorted(outcomes.items())),
            usage=tuple(usage),
            paused=bool(paused),
            health=health,
        )
        doc = row.to_dict()
        doc["deferrals"] = dict(sorted(self.deferrals.items()))
        doc["aborted"] = self.aborted
        self._append(K_SLOT, time, doc)
        self.ledger.append(row)
        self.cursor = slot + 1
        if self.obs.enabled:
            self.obs.emit(
                FLEET_SLOT_COMMITTED,
                time,
                slot=slot,
                running=len(self._holding()),
                terminal=len(self.outcomes),
            )
            self.obs.metrics.gauge("fleet_running").set(float(len(self._holding())))
            self.obs.metrics.counter("fleet_slots_total").increment()


def _schedule_doc(schedule: Schedule) -> dict:
    from repro.fenrir.serialize import schedule_to_dict

    return schedule_to_dict(schedule)


def _schedule_from_doc(data: Mapping) -> Schedule:
    from repro.fenrir.serialize import schedule_from_dict

    return schedule_from_dict(dict(data))


def fleet_outcomes_for_reevaluation(result: FleetResult) -> dict[str, str]:
    """The outcome mapping :func:`build_reevaluation_from_fleet` accepts."""
    return dict(result.outcomes)


# Re-exported for FleetConfig.from_dict simplicity: dataclasses.replace
# users sometimes want the spec of overridable fields.
CONFIG_FIELDS = tuple(FleetConfig().to_dict())

__all__ = [
    "CONFIG_FIELDS",
    "EXPERIMENTAL_VERSION",
    "ExperimentFaults",
    "FLEET_FORMAT",
    "FleetConfig",
    "FleetOrchestrator",
    "FleetPoison",
    "FleetResult",
    "K_DECISION",
    "K_FINISHED",
    "K_PLANNED",
    "K_RECOVERED",
    "K_SLOT",
    "K_SLOT_STARTED",
    "OrchestratorKilled",
    "SHED_BURN",
    "SHED_CRASH_LOOP",
    "SHED_FLEET_DEADLINE",
    "SHED_HEALTH",
    "OUTCOME_ABORTED",
    "OUTCOME_INCONCLUSIVE",
    "OUTCOME_PROMOTED",
    "OUTCOME_ROLLED_BACK",
    "OUTCOME_SHED",
    "STABLE_VERSION",
    "SlotLedger",
    "fleet_outcomes_for_reevaluation",
    "fleet_strategy",
    "service_of",
]
