"""Fleet-level health and deadline supervision.

The watchdog is the fleet's circuit breaker against a degraded
substrate: when the streaming topology pipeline's overall health score
(:class:`~repro.topology.streaming.LiveHealthMonitor`) drops below the
*pause* threshold, no new experiments are admitted; below the *shed*
threshold the orchestrator starts dropping the lowest-priority running
experiments — better to finish a few experiments cleanly than to let
all of them starve on an unhealthy cluster.  A fleet-wide deadline
(``grace_slots`` past the schedule horizon) bounds how long repeating
or crash-recovering experiments can hold the fleet open.

Health providers must be deterministic functions of the fleet's own
state for crash-recovery equality to hold; a provider fed by live
wall-clock telemetry trades that equality for timeliness, which is the
right call in production and the wrong one in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.topology.streaming import LiveHealthMonitor


@dataclass(frozen=True)
class WatchdogVerdict:
    """One slot's supervision verdict.

    Attributes:
        score: substrate health in [0, 1], or None when unknown.
        pause: stop admitting new experiments this slot.
        shed: drop the lowest-priority running experiment this slot.
        burning: names of running experiments whose burn-rate SLO is
            firing — the orchestrator sheds these before their deadline
            instead of letting them burn through the error budget.
    """

    score: float | None
    pause: bool
    shed: bool
    burning: tuple[str, ...] = ()


class FleetWatchdog:
    """Turns health and burn-rate signals into per-slot verdicts."""

    def __init__(
        self,
        health_of: Callable[[], float | None] | None = None,
        pause_below: float = 0.6,
        shed_below: float = 0.3,
        burning_of: Callable[[int], tuple[str, ...]] | None = None,
    ) -> None:
        if not 0.0 <= shed_below <= pause_below <= 1.0:
            raise ValidationError(
                f"need 0 <= shed_below <= pause_below <= 1, got "
                f"shed_below={shed_below}, pause_below={pause_below}"
            )
        self.health_of = health_of
        self.pause_below = pause_below
        self.shed_below = shed_below
        self.burning_of = burning_of

    @classmethod
    def from_monitor(
        cls,
        monitor: "LiveHealthMonitor",
        pause_below: float = 0.6,
        shed_below: float = 0.3,
    ) -> "FleetWatchdog":
        """Wire the watchdog to a live topology health monitor."""
        return cls(
            health_of=monitor.overall_health,
            pause_below=pause_below,
            shed_below=shed_below,
        )

    def assess(self, slot: int) -> WatchdogVerdict:
        """Judge the substrate for *slot*; unknown health never trips.

        Burn-rate verdicts are orthogonal to the health score: an
        experiment can burn its own error budget on a perfectly healthy
        substrate, so ``burning`` is computed even when health is
        unknown.
        """
        burning = self.burning_of(slot) if self.burning_of is not None else ()
        score = self.health_of() if self.health_of is not None else None
        if score is None:
            return WatchdogVerdict(
                score=None, pause=False, shed=False, burning=burning
            )
        return WatchdogVerdict(
            score=score,
            pause=score < self.pause_below,
            shed=score < self.shed_below,
            burning=burning,
        )
