"""Fault-tolerant fleet orchestration: Fenrir plans run through Bifrost.

The layer that closes the dissertation's plan → execute → observe →
replan loop (docs/FLEET.md).  A Fenrir schedule of overlapping
experiments executes as a fleet of supervised Bifrost engines — one
bulkhead per experiment — under per-slot admission control, a health
watchdog, and a crash-consistent fleet WAL.
"""

from repro.fleet.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionRequest,
    SHED_DEADLINE,
    SHED_STARVED,
    schedule_budget_violations,
    usage_within_budget,
)
from repro.fleet.orchestrator import (
    EXPERIMENTAL_VERSION,
    ExperimentFaults,
    FleetConfig,
    FleetOrchestrator,
    FleetPoison,
    FleetResult,
    OrchestratorKilled,
    OUTCOME_ABORTED,
    OUTCOME_INCONCLUSIVE,
    OUTCOME_PROMOTED,
    OUTCOME_ROLLED_BACK,
    OUTCOME_SHED,
    SHED_BURN,
    SHED_CRASH_LOOP,
    SHED_FLEET_DEADLINE,
    SHED_HEALTH,
    STABLE_VERSION,
    SlotLedger,
    fleet_outcomes_for_reevaluation,
    fleet_strategy,
    service_of,
)
from repro.fleet.recovery import recover_fleet
from repro.fleet.traffic import SlotTrafficFeed
from repro.fleet.watchdog import FleetWatchdog, WatchdogVerdict

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionRequest",
    "EXPERIMENTAL_VERSION",
    "ExperimentFaults",
    "FleetConfig",
    "FleetOrchestrator",
    "FleetPoison",
    "FleetResult",
    "FleetWatchdog",
    "OrchestratorKilled",
    "OUTCOME_ABORTED",
    "OUTCOME_INCONCLUSIVE",
    "OUTCOME_PROMOTED",
    "OUTCOME_ROLLED_BACK",
    "OUTCOME_SHED",
    "SHED_BURN",
    "SHED_CRASH_LOOP",
    "SHED_DEADLINE",
    "SHED_FLEET_DEADLINE",
    "SHED_HEALTH",
    "SHED_STARVED",
    "STABLE_VERSION",
    "SlotLedger",
    "SlotTrafficFeed",
    "WatchdogVerdict",
    "fleet_outcomes_for_reevaluation",
    "fleet_strategy",
    "recover_fleet",
    "schedule_budget_violations",
    "service_of",
    "usage_within_budget",
]
