"""Per-slot traffic admission against Fenrir's overlap budgets.

Fenrir's schedule reserves a traffic *fraction* of selected user groups
per slot for every experiment, under the overlap constraint that no
(slot, group) cell exceeds 100% of its traffic.  At execution time that
plan meets reality: experiments overrun their slots (inconclusive
repeats), crash-loop, or arrive late — so the fleet cannot simply trust
the plan.  The :class:`AdmissionController` re-checks the budget at
every slot boundary: experiments whose start would overdraw a (slot,
group) cell are **queued** (deferred to a later slot) or **shed** (by
priority, with a reported reason) — never silently over-admitted.

The controller is deliberately *pure*: a decision is a function of the
requests and reservations passed in, independent of arrival order
(requests are ranked by descending weight, then name).  That makes the
no-over-admission invariant directly property-testable and lets the
orchestrator re-derive an uncommitted slot's decision bit-for-bit after
a crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ValidationError
from repro.fenrir.schedule import Schedule

#: Float slack when comparing summed fractions against the budget.
EPSILON = 1e-9

#: Shed reasons the controller itself can produce.
SHED_DEADLINE = "deadline"
SHED_STARVED = "starved"


@dataclass(frozen=True)
class AdmissionRequest:
    """One experiment asking to hold traffic in a slot.

    Attributes:
        name: experiment name (unique within the fleet).
        fraction: share of each selected group's traffic it consumes.
        groups: user groups the experiment runs on.
        weight: priority — higher-weight experiments are admitted first
            and shed last.
        latest_start: last slot the experiment may still *start* in and
            finish within its deadline; deferred past it, it is shed
            with reason :data:`SHED_DEADLINE`.  ``None`` disables.
        deferrals: how many slots this request has already been queued;
            at ``max_defer`` the controller sheds it as
            :data:`SHED_STARVED` instead of queueing forever.
    """

    name: str
    fraction: float
    groups: tuple[str, ...]
    weight: float = 1.0
    latest_start: int | None = None
    deferrals: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValidationError(
                f"admission fraction must be in (0, 1], got {self.fraction} "
                f"for {self.name!r}"
            )
        if not self.groups:
            raise ValidationError(f"admission request {self.name!r} needs groups")


@dataclass(frozen=True)
class AdmissionDecision:
    """What one slot's admission pass decided.

    Attributes:
        slot: the slot decided.
        admitted: names newly admitted this slot (start now).
        queued: names deferred to a later slot.
        shed: (name, reason) pairs dropped from the plan — always
            reported, never silent.
        usage: per-group admitted fraction after the decision, including
            pre-existing reservations.
    """

    slot: int
    admitted: tuple[str, ...]
    queued: tuple[str, ...]
    shed: tuple[tuple[str, str], ...]
    usage: tuple[tuple[str, float], ...]


class AdmissionController:
    """Ranks, admits, queues, and sheds experiment starts per slot."""

    def __init__(self, groups: Iterable[str], budget: float = 1.0,
                 max_defer: int | None = None) -> None:
        self.groups = tuple(sorted(set(groups)))
        if not self.groups:
            raise ValidationError("admission controller needs user groups")
        if budget <= 0:
            raise ValidationError(f"budget must be positive, got {budget}")
        if max_defer is not None and max_defer < 0:
            raise ValidationError(f"max_defer must be >= 0, got {max_defer}")
        self.budget = float(budget)
        self.max_defer = max_defer

    def decide(
        self,
        slot: int,
        requests: Iterable[AdmissionRequest],
        reserved: Iterable[AdmissionRequest] = (),
        paused: bool = False,
    ) -> AdmissionDecision:
        """Decide one slot: admit, queue, or shed every request.

        *reserved* carries the experiments already running (they hold
        their budget for as long as they run); *requests* the ones that
        want to start this slot.  With *paused* (the health watchdog
        tripped) nothing new is admitted, but deadline/starvation
        shedding still applies — a paused fleet must not silently hold
        doomed experiments forever.
        """
        usage: dict[str, float] = {g: 0.0 for g in self.groups}
        for holder in reserved:
            for group in holder.groups:
                self._known(group)
                usage[group] += holder.fraction
        admitted: list[str] = []
        queued: list[str] = []
        shed: list[tuple[str, str]] = []
        ranked = sorted(requests, key=lambda r: (-r.weight, r.name))
        for request in ranked:
            for group in request.groups:
                self._known(group)
            if request.latest_start is not None and slot > request.latest_start:
                shed.append((request.name, SHED_DEADLINE))
                continue
            if self.max_defer is not None and request.deferrals >= self.max_defer:
                shed.append((request.name, SHED_STARVED))
                continue
            if paused:
                queued.append(request.name)
                continue
            if all(
                usage[g] + request.fraction <= self.budget + EPSILON
                for g in request.groups
            ):
                admitted.append(request.name)
                for group in request.groups:
                    usage[group] += request.fraction
            else:
                queued.append(request.name)
        return AdmissionDecision(
            slot=slot,
            admitted=tuple(admitted),
            queued=tuple(queued),
            shed=tuple(shed),
            usage=tuple(sorted(usage.items())),
        )

    def _known(self, group: str) -> None:
        if group not in self.groups:
            raise ValidationError(
                f"unknown user group {group!r}; known: {list(self.groups)}"
            )


def usage_within_budget(
    usage: Mapping[str, float] | Iterable[tuple[str, float]],
    budget: float = 1.0,
) -> bool:
    """Whether every group's admitted fraction respects *budget*."""
    items = usage.items() if isinstance(usage, Mapping) else usage
    return all(used <= budget + EPSILON for _, used in items)


def schedule_budget_violations(
    schedule: Schedule, budget: float = 1.0
) -> list[tuple[int, str, float]]:
    """(slot, group, usage) cells where the *plan itself* overdraws.

    Fenrir's fitness penalizes overlap violations but does not forbid
    them; the fleet uses this to report when queueing is the plan's
    fault rather than runtime drift.
    """
    return sorted(
        (slot, group, used)
        for (slot, group), used in schedule.group_usage().items()
        if used > budget + EPSILON
    )
