"""Crash-consistent fleet recovery from the fleet WAL.

The orchestrator journals with a redo-logging discipline: a slot's
``fleet_slot`` commit record is the *only* durability point — everything
between slot start and commit (admission decisions, traffic feeds,
engine advances) is a deterministic function of the committed state
plus each experiment's own WAL, so an uncommitted slot is simply redone.
Recovery therefore folds the committed prefix into a
:class:`~repro.fleet.orchestrator._ResumeState`, rebuilds every
started-but-unfinished experiment's engine through the PR-2
:class:`~repro.bifrost.recovery.RecoveryManager` (journal replay +
catch-up at original logical timestamps), re-feeds the deterministic
traffic of committed slots into fresh metric stores, reloads each
supervisor's restart accounting (a crash-looper must not get a fresh
budget just because the *orchestrator* died), and resumes at the slot
cursor.  The property test in ``tests/property/test_fleet_properties.py``
asserts the recovered run's result digest equals the uncrashed run's for
every fleet-WAL kill point.
"""

from __future__ import annotations

from typing import Callable

from repro.bifrost.journal import Journal
from repro.bifrost.recovery import RecoveryManager
from repro.errors import ValidationError
from repro.fleet.orchestrator import (
    EXPERIMENTAL_VERSION,
    K_PLANNED,
    K_RECOVERED,
    K_SLOT,
    STABLE_VERSION,
    ExperimentFaults,
    FleetConfig,
    FleetOrchestrator,
    SlotLedger,
    _ResumeState,
    _schedule_from_doc,
)
from repro.fleet.watchdog import FleetWatchdog
from repro.obs.events import FLEET_RECOVERED
from repro.obs.observer import NULL_OBSERVER, Observer


def recover_fleet(
    fleet_journal: Journal,
    journal_factory: Callable[[str], Journal],
    observer: Observer | None = None,
    watchdog: FleetWatchdog | None = None,
    crash_after_appends: int | None = None,
) -> FleetOrchestrator:
    """Rebuild a killed orchestrator from its WAL, ready to resume.

    *journal_factory* must hand back each experiment's surviving journal
    (same contract as the orchestrator's constructor argument); the
    fleet plan, config, world, and injected faults all come from the
    WAL's ``fleet_planned`` record.  *watchdog* is re-supplied by the
    caller because health providers are live objects the WAL cannot
    carry — recovery equality requires supplying an equivalent one.
    """
    obs = observer or NULL_OBSERVER
    records, dropped = fleet_journal.records_after(0)
    if dropped:
        fleet_journal.truncate_corrupt_tail()
    planned = next((r for r in records if r.kind == K_PLANNED), None)
    if planned is None:
        raise ValidationError("fleet journal has no fleet_planned record")
    doc = planned.data
    config = FleetConfig.from_dict(doc["config"])
    world = {str(k): float(v) for k, v in doc["world"].items()}
    faults = {
        str(k): ExperimentFaults.from_dict(v) for k, v in doc["faults"].items()
    }
    schedule = _schedule_from_doc(doc["schedule"])

    state = _ResumeState()
    for record in records:
        if record.kind != K_SLOT:
            continue
        row = SlotLedger.from_dict(record.data)
        state.ledger.append(row)
        state.cursor = row.slot + 1
        state.started.update(row.started)
        for name, outcome in row.outcomes:
            state.outcomes[name] = outcome
        for name, reason in row.shed:
            state.sheds[name] = reason
        for name in row.restarted:
            state.restarts[name] = state.restarts.get(name, 0) + 1
            state.restart_times.setdefault(name, []).append(
                (row.slot + 1) * config.slot_seconds
            )
        state.deferrals = {
            str(k): int(v) for k, v in record.data.get("deferrals", {}).items()
        }
        state.aborted = bool(record.data.get("aborted", False))

    orchestrator = FleetOrchestrator(
        schedule,
        world=world,
        faults=faults,
        config=config,
        observer=obs,
        watchdog=watchdog,
        fleet_journal=fleet_journal,
        journal_factory=journal_factory,
        crash_after_appends=crash_after_appends,
        _resume=state,
    )

    # Rebuild every started-but-unfinished experiment: replay its WAL
    # into a fresh engine, re-feed the committed slots' deterministic
    # traffic, and reload the supervisor's restart accounting.
    replayed = []
    for name in sorted(state.started):
        if name in state.outcomes:
            continue
        bulkhead = orchestrator.bulkheads[name]
        manager = RecoveryManager(
            bulkhead.journal, bulkhead.snapshots, observer=obs
        )
        manager.recover(bulkhead.engine)
        bulkhead.supervisor.restore_counters(
            state.restarts.get(name, 0), state.restart_times.get(name, [])
        )
        replayed.append(name)
    for row in state.ledger:
        for name in row.admitted:
            if name in state.outcomes:
                continue
            bulkhead = orchestrator.bulkheads[name]
            orchestrator.feed.feed(
                bulkhead.store,
                name,
                row.slot,
                bulkhead.gene.fraction,
                tuple(sorted(bulkhead.gene.groups)),
                bulkhead.service,
                stable=STABLE_VERSION,
                experimental=EXPERIMENTAL_VERSION,
                error_delta=world.get(name, 0.0),
            )

    now = state.cursor * config.slot_seconds
    orchestrator._append(
        K_RECOVERED,
        now,
        {
            "cursor": state.cursor,
            "replayed": replayed,
            "terminal": sorted(state.outcomes),
        },
    )
    if obs.enabled:
        obs.emit(
            FLEET_RECOVERED,
            now,
            cursor=state.cursor,
            replayed=len(replayed),
            terminal=len(state.outcomes),
        )
        obs.metrics.counter("fleet_recoveries_total").increment()
    return orchestrator
