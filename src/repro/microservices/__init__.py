"""Simulated microservice applications.

The dissertation evaluates Bifrost and the health-assessment heuristics on
microservice-based case-study applications deployed to public-cloud VMs.
This package is the offline substitute: services with independently
deployable *versions*, endpoints with latency/error behaviour and
downstream calls, and a :class:`Runtime` that executes end-user requests
through the topology — emitting distributed traces and telemetry exactly
like an instrumented production system would.

The resilience layer (:mod:`repro.microservices.resilience`) threads
timeouts, retries, fallbacks, and circuit breakers through every hop;
the fault module (:mod:`repro.microservices.faults`) provides both
static degradations and time-windowed transient fault campaigns.
"""

from repro.microservices.service import (
    DownstreamCall,
    EndpointSpec,
    Service,
    ServiceVersion,
)
from repro.microservices.application import Application
from repro.microservices.runtime import LoadTracker, RequestOutcome, Runtime
from repro.microservices.resilience import (
    BreakerConfig,
    BreakerState,
    BreakerTransition,
    CallPolicy,
    CircuitBreaker,
    ResilienceEvent,
    ResilienceLayer,
    ResilienceSummary,
)
from repro.microservices.faults import (
    CampaignEvent,
    ErrorBurst,
    FaultCampaign,
    FaultInjector,
    LatencySpike,
    NetworkState,
    Partition,
    VersionCrash,
)
from repro.microservices.generator import random_application

__all__ = [
    "DownstreamCall",
    "EndpointSpec",
    "Service",
    "ServiceVersion",
    "Application",
    "LoadTracker",
    "RequestOutcome",
    "Runtime",
    "BreakerConfig",
    "BreakerState",
    "BreakerTransition",
    "CallPolicy",
    "CircuitBreaker",
    "ResilienceEvent",
    "ResilienceLayer",
    "ResilienceSummary",
    "CampaignEvent",
    "ErrorBurst",
    "FaultCampaign",
    "FaultInjector",
    "LatencySpike",
    "NetworkState",
    "Partition",
    "VersionCrash",
    "random_application",
]
