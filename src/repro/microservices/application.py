"""The application: a registry of services and their deployed versions."""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigurationError
from repro.microservices.service import Service, ServiceVersion


class Application:
    """A microservice-based application (Section 5.4.1).

    Holds all services with their deployed versions and knows which
    version of each service is *stable* (the baseline variant); canaries
    and other experimental versions are deployed alongside and reached via
    routing rules.
    """

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self._services: dict[str, Service] = {}

    @property
    def service_names(self) -> list[str]:
        """Names of all registered services."""
        return list(self._services)

    def service(self, name: str) -> Service:
        """Look up a service by name."""
        try:
            return self._services[name]
        except KeyError:
            raise ConfigurationError(
                f"application {self.name!r} has no service {name!r}"
            ) from None

    def has_service(self, name: str) -> bool:
        """Whether a service with *name* exists."""
        return name in self._services

    def deploy(self, version: ServiceVersion, stable: bool = False) -> None:
        """Deploy a service version, creating the service if needed."""
        service = self._services.get(version.service)
        if service is None:
            service = Service(version.service)
            self._services[version.service] = service
        service.deploy(version, stable=stable)

    def deploy_all(self, versions: Iterable[ServiceVersion]) -> None:
        """Deploy many versions in order."""
        for version in versions:
            self.deploy(version)

    def stable_version(self, service: str) -> str:
        """Stable version string of *service*."""
        return self.service(service).stable_version

    def resolve(self, service: str, version: str | None = None) -> ServiceVersion:
        """Fetch a concrete :class:`ServiceVersion` (stable by default)."""
        svc = self.service(service)
        return svc.get(version if version is not None else svc.stable_version)

    def validate_wiring(self) -> list[str]:
        """Check that every downstream call can be satisfied.

        Returns a list of human-readable problems (empty when the
        topology is closed).  A call is satisfiable when the callee
        service exists and its *stable* version exposes the endpoint —
        experimental versions may add endpoints, which is fine.
        """
        problems: list[str] = []
        for service in self._services.values():
            for version_name in service.versions:
                version = service.get(version_name)
                for spec in version.endpoints.values():
                    for call in spec.calls:
                        if call.service not in self._services:
                            problems.append(
                                f"{service.name}@{version_name}/{spec.name} calls "
                                f"unknown service {call.service!r}"
                            )
                            continue
                        callee = self._services[call.service]
                        found = any(
                            call.endpoint in callee.get(v).endpoints
                            for v in callee.versions
                        )
                        if not found:
                            problems.append(
                                f"{service.name}@{version_name}/{spec.name} calls "
                                f"missing endpoint {call.target!r}"
                            )
        return problems

    def endpoint_count(self) -> int:
        """Total number of endpoints across stable versions."""
        total = 0
        for service in self._services.values():
            total += len(service.get(service.stable_version).endpoints)
        return total
