"""Resilience policies for the request path.

The Bifrost evaluation hinges on experiments that *fail realistically*:
canaries that absorb transient faults via retries, and sustained faults
that trip circuit breakers and trigger rollbacks.  This module provides
the self-adaptive failure handling SEAByTE-style artifacts implement in
the request path:

- :class:`CallPolicy` — per-call timeout, bounded retries with
  exponential backoff and *seeded* jitter, and an optional fallback
  response served when every attempt failed (graceful degradation).
- :class:`CircuitBreaker` — a per-(service, version) closed → open →
  half-open state machine tripped by the failure rate over a sliding
  window of recent outcomes.
- :class:`ResilienceLayer` — the registry the
  :class:`~repro.microservices.runtime.Runtime` consults on every hop;
  it records :class:`ResilienceEvent` occurrences (retries, timeouts,
  fallbacks, breaker transitions) and forwards them to subscribers such
  as the telemetry monitor, so Chapter-5 trace analysis sees them.

Everything is driven by the shared simulated clock and the runtime's
:class:`~repro.simulation.rng.SeededRng`, so two runs with the same seed
produce identical retry counts, breaker transitions, and durations.
"""

from __future__ import annotations

import enum
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError


class BreakerState(enum.Enum):
    """The circuit breaker's three classic states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class CallPolicy:
    """Failure-handling policy for calls to one endpoint (or service).

    Attributes:
        timeout_ms: the caller abandons an attempt that takes longer than
            this; the abandoned attempt counts as a failure and only
            ``timeout_ms`` of waiting is charged to the observed
            duration.  None disables the timeout.
        max_retries: additional attempts after the first failure.
        backoff_base_ms: backoff before the first retry.
        backoff_multiplier: exponential growth factor per further retry.
        jitter_ms: upper bound of the uniform jitter added to each
            backoff, sampled from the runtime's seeded RNG.
        fallback: when True and every attempt failed, a degraded fallback
            response is served instead of an error (the request succeeds
            from the user's point of view, tagged so telemetry can count
            it).
        fallback_latency_ms: extra latency charged for producing the
            fallback response.
    """

    timeout_ms: float | None = None
    max_retries: int = 0
    backoff_base_ms: float = 10.0
    backoff_multiplier: float = 2.0
    jitter_ms: float = 0.0
    fallback: bool = False
    fallback_latency_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ConfigurationError("timeout_ms must be positive when set")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base_ms < 0:
            raise ConfigurationError("backoff_base_ms must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.jitter_ms < 0:
            raise ConfigurationError("jitter_ms must be >= 0")
        if self.fallback_latency_ms < 0:
            raise ConfigurationError("fallback_latency_ms must be >= 0")

    def backoff_ms(self, attempt: int) -> float:
        """Deterministic backoff component before retry *attempt* (1-based)."""
        if attempt < 1:
            raise ConfigurationError("backoff applies from attempt 1 on")
        return self.backoff_base_ms * self.backoff_multiplier ** (attempt - 1)


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning of one circuit breaker.

    Attributes:
        failure_threshold: failure rate over the sliding window that
            trips the breaker.
        window_size: number of recent call outcomes considered.
        min_calls: outcomes required before the rate is meaningful.
        open_seconds: how long the breaker rejects calls before probing.
        half_open_max_calls: probe calls admitted while half-open.
        half_open_successes: consecutive probe successes that close the
            breaker again.
    """

    failure_threshold: float = 0.5
    window_size: int = 20
    min_calls: int = 10
    open_seconds: float = 30.0
    half_open_max_calls: int = 3
    half_open_successes: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ConfigurationError("failure_threshold must be in (0, 1]")
        if self.window_size < 1:
            raise ConfigurationError("window_size must be >= 1")
        if self.min_calls < 1:
            raise ConfigurationError("min_calls must be >= 1")
        if self.open_seconds <= 0:
            raise ConfigurationError("open_seconds must be > 0")
        if self.half_open_max_calls < 1:
            raise ConfigurationError("half_open_max_calls must be >= 1")
        if not 1 <= self.half_open_successes <= self.half_open_max_calls:
            raise ConfigurationError(
                "half_open_successes must be in [1, half_open_max_calls]"
            )


@dataclass(frozen=True)
class BreakerTransition:
    """One state change of one breaker, on the simulated clock."""

    time: float
    service: str
    version: str
    source: BreakerState
    target: BreakerState


class CircuitBreaker:
    """Failure-rate breaker for one (service, version) pair.

    Closed: all calls pass; outcomes feed a sliding window.  When the
    window holds at least ``min_calls`` outcomes and the failure rate
    reaches ``failure_threshold``, the breaker opens.  Open: calls are
    rejected without reaching the version until ``open_seconds`` of
    simulated time elapsed, then the breaker half-opens.  Half-open: up
    to ``half_open_max_calls`` probe calls are admitted;
    ``half_open_successes`` successes close the breaker, any failure
    reopens it.
    """

    def __init__(
        self, service: str, version: str, config: BreakerConfig | None = None
    ) -> None:
        self.service = service
        self.version = version
        self.config = config or BreakerConfig()
        self.state = BreakerState.CLOSED
        self.transitions: list[BreakerTransition] = []
        self._window: deque[bool] = deque(maxlen=self.config.window_size)
        self._opened_at = 0.0
        self._probes_admitted = 0
        self._probe_successes = 0
        self.rejected_calls = 0

    def _move(self, now: float, target: BreakerState) -> None:
        self.transitions.append(
            BreakerTransition(now, self.service, self.version, self.state, target)
        )
        self.state = target

    def failure_rate(self) -> float:
        """Failure rate over the current window (0.0 when empty)."""
        if not self._window:
            return 0.0
        return sum(1 for ok in self._window if not ok) / len(self._window)

    def allow(self, now: float) -> bool:
        """Whether a call may proceed at simulated time *now*."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self._opened_at >= self.config.open_seconds:
                self._move(now, BreakerState.HALF_OPEN)
                self._probes_admitted = 1
                self._probe_successes = 0
                return True
            self.rejected_calls += 1
            return False
        # HALF_OPEN: admit a bounded number of probes.
        if self._probes_admitted < self.config.half_open_max_calls:
            self._probes_admitted += 1
            return True
        self.rejected_calls += 1
        return False

    def record(self, now: float, success: bool) -> None:
        """Feed one call outcome observed at simulated time *now*."""
        if self.state is BreakerState.HALF_OPEN:
            if success:
                self._probe_successes += 1
                if self._probe_successes >= self.config.half_open_successes:
                    self._window.clear()
                    self._move(now, BreakerState.CLOSED)
            else:
                self._opened_at = now
                self._move(now, BreakerState.OPEN)
            return
        if self.state is BreakerState.OPEN:
            # A call that was already in flight when the breaker opened;
            # its outcome no longer matters.
            return
        self._window.append(success)
        if (
            len(self._window) >= self.config.min_calls
            and self.failure_rate() >= self.config.failure_threshold
        ):
            self._opened_at = now
            self._move(now, BreakerState.OPEN)


#: Event kinds a :class:`ResilienceEvent` may carry.
RETRY = "retry"
TIMEOUT = "timeout"
FALLBACK = "fallback"
BREAKER_REJECT = "breaker_reject"
BREAKER_OPEN = "breaker_open"
BREAKER_HALF_OPEN = "breaker_half_open"
BREAKER_CLOSE = "breaker_close"

_BREAKER_EVENT_KIND = {
    BreakerState.OPEN: BREAKER_OPEN,
    BreakerState.HALF_OPEN: BREAKER_HALF_OPEN,
    BreakerState.CLOSED: BREAKER_CLOSE,
}


@dataclass(frozen=True)
class ResilienceEvent:
    """One resilience occurrence on the simulated clock."""

    kind: str
    time: float
    service: str
    version: str = ""
    endpoint: str = ""
    attempt: int = 0
    detail: str = ""


class ResilienceLayer:
    """Per-call policies plus per-(service, version) breakers.

    The runtime consults :meth:`policy_for` on every hop and the breaker
    methods around every attempt.  Policies can be registered for one
    endpoint, a whole service, or as the default for every call; the
    most specific match wins.  Breakers are created lazily, but only
    when a :class:`BreakerConfig` was supplied — a layer without one
    never interferes with call admission.
    """

    def __init__(self, breaker_config: BreakerConfig | None = None) -> None:
        self.breaker_config = breaker_config
        self._default_policy: CallPolicy | None = None
        self._service_policies: dict[str, CallPolicy] = {}
        self._endpoint_policies: dict[tuple[str, str], CallPolicy] = {}
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}
        self.events: list[ResilienceEvent] = []
        self._subscribers: list[Callable[[ResilienceEvent], None]] = []

    @property
    def passthrough(self) -> bool:
        """True when the layer cannot influence any call.

        No policies registered at any scope and no breaker config means
        ``policy_for`` always returns None, ``admit`` always allows, and
        ``observe`` is a no-op — the precondition for the batch execution
        kernel's fast path, which skips these hooks entirely.
        """
        return (
            self.breaker_config is None
            and self._default_policy is None
            and not self._service_policies
            and not self._endpoint_policies
        )

    # -- policy registry ---------------------------------------------------

    def set_policy(
        self,
        policy: CallPolicy,
        service: str | None = None,
        endpoint: str | None = None,
    ) -> None:
        """Register *policy*; scope it by *service* and/or *endpoint*.

        With neither, the policy becomes the default for every call.
        """
        if endpoint is not None:
            if service is None:
                raise ConfigurationError(
                    "an endpoint-scoped policy needs a service"
                )
            self._endpoint_policies[(service, endpoint)] = policy
        elif service is not None:
            self._service_policies[service] = policy
        else:
            self._default_policy = policy

    def policy_for(self, service: str, endpoint: str) -> CallPolicy | None:
        """Most specific policy for a call, or None when unmanaged."""
        policy = self._endpoint_policies.get((service, endpoint))
        if policy is not None:
            return policy
        policy = self._service_policies.get(service)
        if policy is not None:
            return policy
        return self._default_policy

    # -- breakers ----------------------------------------------------------

    def breaker(self, service: str, version: str) -> CircuitBreaker | None:
        """The breaker guarding (service, version); None when disabled."""
        if self.breaker_config is None:
            return None
        key = (service, version)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(service, version, self.breaker_config)
            self._breakers[key] = breaker
        return breaker

    def breakers(self) -> list[CircuitBreaker]:
        """All breakers created so far, in deterministic key order."""
        return [self._breakers[key] for key in sorted(self._breakers)]

    def breaker_transitions(self) -> list[BreakerTransition]:
        """Every breaker transition so far, ordered by time."""
        transitions = [
            t for breaker in self.breakers() for t in breaker.transitions
        ]
        transitions.sort(key=lambda t: (t.time, t.service, t.version))
        return transitions

    def admit(self, service: str, version: str, now: float) -> bool:
        """Breaker admission check; emits transition events as they occur."""
        breaker = self.breaker(service, version)
        if breaker is None:
            return True
        before = len(breaker.transitions)
        allowed = breaker.allow(now)
        self._emit_transitions(breaker, before)
        return allowed

    def observe(self, service: str, version: str, now: float, success: bool) -> None:
        """Feed one call outcome into the breaker (if any)."""
        breaker = self.breaker(service, version)
        if breaker is None:
            return
        before = len(breaker.transitions)
        breaker.record(now, success)
        self._emit_transitions(breaker, before)

    def _emit_transitions(self, breaker: CircuitBreaker, since: int) -> None:
        for transition in breaker.transitions[since:]:
            self.emit(
                ResilienceEvent(
                    kind=_BREAKER_EVENT_KIND[transition.target],
                    time=transition.time,
                    service=transition.service,
                    version=transition.version,
                    detail=f"{transition.source.value}->{transition.target.value}",
                )
            )

    # -- events ------------------------------------------------------------

    def subscribe(self, listener: Callable[[ResilienceEvent], None]) -> None:
        """Register a callback invoked for every emitted event."""
        self._subscribers.append(listener)

    def emit(self, event: ResilienceEvent) -> None:
        """Record *event* and notify subscribers."""
        self.events.append(event)
        for listener in self._subscribers:
            listener(event)

    def counters(self) -> dict[str, int]:
        """Event counts per kind (stable insertion order by kind name)."""
        counts = Counter(event.kind for event in self.events)
        return dict(sorted(counts.items()))


@dataclass
class ResilienceSummary:
    """Aggregate view of a layer's activity (reporting convenience)."""

    events: dict[str, int] = field(default_factory=dict)
    open_breakers: list[tuple[str, str]] = field(default_factory=list)

    @classmethod
    def of(cls, layer: ResilienceLayer) -> "ResilienceSummary":
        """Summarize *layer* right now."""
        return cls(
            events=layer.counters(),
            open_breakers=[
                (b.service, b.version)
                for b in layer.breakers()
                if b.state is not BreakerState.CLOSED
            ],
        )

    def describe(self) -> str:
        """Human-readable one-paragraph report."""
        if self.events:
            counts = ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.events.items())
            )
        else:
            counts = "no resilience events"
        if self.open_breakers:
            breakers = ", ".join(f"{s}/{v}" for s, v in self.open_breakers)
            breakers = f"non-closed breakers: {breakers}"
        else:
            breakers = "all breakers closed"
        return f"resilience: {counts}; {breakers}"
