"""Service, version, and endpoint models.

A *service* is the unit of independent deployment (Chapter 2's key
enabler); each deployed *version* carries its own endpoint behaviour, so a
canary can change latency, error rate, or the set of downstream calls —
precisely the change types Chapter 5's taxonomy classifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.simulation.latency import LatencyModel, LogNormalLatency


@dataclass(frozen=True)
class DownstreamCall:
    """A call an endpoint makes to another service's endpoint.

    Attributes:
        service: the callee's logical service name.
        endpoint: the callee endpoint name.
        probability: chance the call happens on a given request (1.0 for
            unconditional calls).
    """

    service: str
    endpoint: str
    probability: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError(
                f"call probability must be in (0, 1], got {self.probability}"
            )

    @property
    def target(self) -> str:
        """``service.endpoint`` convenience form."""
        return f"{self.service}.{self.endpoint}"


@dataclass
class EndpointSpec:
    """Behaviour of one endpoint within one service version.

    Attributes:
        name: endpoint name unique within the version.
        latency: model for the endpoint's *own* processing time.
        error_rate: probability a request to this endpoint fails locally.
        calls: downstream calls issued while handling a request.
        parallel_calls: when True the downstream calls are issued
            concurrently (fan-out) and the endpoint waits for the
            slowest; when False they run sequentially and latencies sum.
    """

    name: str
    latency: LatencyModel = field(default_factory=lambda: LogNormalLatency(20.0))
    error_rate: float = 0.0
    calls: Sequence[DownstreamCall] = ()
    parallel_calls: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("endpoint name must be non-empty")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ConfigurationError(
                f"error_rate must be in [0, 1], got {self.error_rate}"
            )
        self.calls = tuple(self.calls)


@dataclass
class ServiceVersion:
    """One deployable version of a service.

    Attributes:
        service: the logical service name.
        version: version string, e.g. ``"1.2.0"``.
        endpoints: endpoint specs keyed by endpoint name.
        capacity_rps: nominal requests/second one instance handles at
            design load; drives the load-sensitivity of latencies.
        instances: number of deployed instances (scales capacity).
    """

    service: str
    version: str
    endpoints: Mapping[str, EndpointSpec]
    capacity_rps: float = 100.0
    instances: int = 1

    def __post_init__(self) -> None:
        if not self.service or not self.version:
            raise ConfigurationError("service and version must be non-empty")
        if not self.endpoints:
            raise ConfigurationError(
                f"{self.service}@{self.version} needs at least one endpoint"
            )
        for name, spec in self.endpoints.items():
            if name != spec.name:
                raise ConfigurationError(
                    f"endpoint key {name!r} does not match spec name {spec.name!r}"
                )
        if self.capacity_rps <= 0:
            raise ConfigurationError("capacity_rps must be positive")
        if self.instances <= 0:
            raise ConfigurationError("instances must be positive")
        self.endpoints = dict(self.endpoints)

    @property
    def total_capacity_rps(self) -> float:
        """Aggregate capacity across instances."""
        return self.capacity_rps * self.instances

    def endpoint(self, name: str) -> EndpointSpec:
        """Look up an endpoint spec."""
        try:
            return self.endpoints[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.service}@{self.version} has no endpoint {name!r}"
            ) from None

    def with_endpoint(self, spec: EndpointSpec) -> "ServiceVersion":
        """Return a copy with *spec* added or replaced (builder helper)."""
        endpoints = dict(self.endpoints)
        endpoints[spec.name] = spec
        return ServiceVersion(
            self.service, self.version, endpoints, self.capacity_rps, self.instances
        )


class Service:
    """A named service holding its deployed versions."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("service name must be non-empty")
        self.name = name
        self._versions: dict[str, ServiceVersion] = {}
        self._stable: str | None = None

    @property
    def versions(self) -> list[str]:
        """All deployed version strings in deployment order."""
        return list(self._versions)

    @property
    def stable_version(self) -> str:
        """The version production traffic defaults to."""
        if self._stable is None:
            raise ConfigurationError(f"service {self.name!r} has no stable version")
        return self._stable

    def deploy(self, version: ServiceVersion, stable: bool = False) -> None:
        """Register a version; the first deployed version becomes stable."""
        if version.service != self.name:
            raise ConfigurationError(
                f"version belongs to {version.service!r}, not {self.name!r}"
            )
        self._versions[version.version] = version
        if stable or self._stable is None:
            self._stable = version.version

    def promote(self, version: str) -> None:
        """Make an already-deployed *version* the stable one."""
        if version not in self._versions:
            raise ConfigurationError(
                f"cannot promote unknown version {version!r} of {self.name!r}"
            )
        self._stable = version

    def undeploy(self, version: str) -> None:
        """Remove a version (not the stable one)."""
        if version == self._stable:
            raise ConfigurationError(
                f"cannot undeploy stable version {version!r} of {self.name!r}"
            )
        self._versions.pop(version, None)

    def get(self, version: str) -> ServiceVersion:
        """Look up a deployed version."""
        try:
            return self._versions[version]
        except KeyError:
            raise ConfigurationError(
                f"service {self.name!r} has no version {version!r}"
            ) from None

    def has_version(self, version: str) -> bool:
        """Whether *version* is deployed."""
        return version in self._versions
