"""The request-execution runtime.

Executes end-user requests through the application topology on simulated
time: each hop resolves the callee's version through a *router* (the
traffic-routing mechanism Bifrost relies on), samples the endpoint's
latency under the current load, recurses into downstream calls, and emits
spans into the trace collector and metrics into the monitor.

Load is modelled as the ratio of recent arrival rate to a version's
deployed capacity; the latency models translate load > 1 into inflated
response times.  That single mechanism produces both effects the Bifrost
evaluation reports: dark launches *duplicate* traffic (load up, latency
up) while A/B tests *split* it (load down, latency down).

Every hop additionally consults the :class:`ResilienceLayer`: a
:class:`~repro.microservices.resilience.CallPolicy` can time the call
out, retry it with seeded exponential backoff, or serve a fallback
response; a per-(service, version) circuit breaker can reject the call
before it reaches a failing version.  Retry latency and backoff are
charged to the observed duration, and every resilience occurrence is
emitted as a tagged event so trace analysis sees it.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import ExecutionError
from repro.microservices.application import Application
from repro.microservices.resilience import (
    BREAKER_REJECT,
    FALLBACK,
    RETRY,
    TIMEOUT,
    ResilienceEvent,
    ResilienceLayer,
)
from repro.simulation.clock import SimulationClock
from repro.simulation.rng import SeededRng
from repro.telemetry.monitor import Monitor
from repro.tracing.collector import TraceCollector
from repro.tracing.span import Span, next_span_id
from repro.tracing.trace import Trace
from repro.traffic.workload import Request

_MAX_CALL_DEPTH = 32


@dataclass(frozen=True)
class RoutingDecision:
    """Outcome of routing one service call.

    Attributes:
        version: concrete version to serve the call, or None for the
            service's stable version.
        shadow_versions: versions that additionally receive a *duplicated*
            (dark-launched) copy of the call; their work does not affect
            the user-visible response.
        proxy_hops: number of routing proxies traversed; each hop adds
            the runtime's configured proxy overhead to the observed
            latency (the source of Bifrost's end-user overhead).
    """

    version: str | None = None
    shadow_versions: tuple[str, ...] = ()
    proxy_hops: int = 0


class Router(Protocol):
    """Anything that can resolve a service call to a concrete version."""

    def route(self, request: Request, service: str) -> RoutingDecision:
        """Decide which version of *service* handles *request*."""
        ...  # pragma: no cover - protocol


class StaticRouter:
    """Routes everything to the stable version with no proxy overhead."""

    def route(self, request: Request, service: str) -> RoutingDecision:
        return RoutingDecision()


class NetworkGate(Protocol):
    """Anything that can veto the link between two services."""

    def is_partitioned(self, caller: str, callee: str) -> bool:
        """Whether calls from *caller* to *callee* currently fail."""
        ...  # pragma: no cover - protocol


class LoadTracker:
    """Sliding-window arrival-rate tracker per (service, version)."""

    def __init__(self, window_seconds: float = 10.0) -> None:
        if window_seconds <= 0:
            raise ExecutionError("load window must be positive")
        self.window_seconds = window_seconds
        self._arrivals: dict[tuple[str, str], deque[float]] = {}

    def observe(self, service: str, version: str, now: float, capacity_rps: float) -> float:
        """Record one arrival and return the resulting relative load."""
        key = (service, version)
        arrivals = self._arrivals.setdefault(key, deque())
        arrivals.append(now)
        cutoff = now - self.window_seconds
        while arrivals and arrivals[0] < cutoff:
            arrivals.popleft()
        rate = len(arrivals) / self.window_seconds
        return rate / capacity_rps if capacity_rps > 0 else 0.0

    def current_load(self, service: str, version: str, now: float, capacity_rps: float) -> float:
        """Relative load without recording an arrival."""
        arrivals = self._arrivals.get((service, version))
        if not arrivals:
            return 0.0
        cutoff = now - self.window_seconds
        count = sum(1 for t in arrivals if t >= cutoff)
        rate = count / self.window_seconds
        return rate / capacity_rps if capacity_rps > 0 else 0.0

    def arrivals_for(self, service: str, version: str) -> deque[float]:
        """The raw arrival deque of (service, version), created on demand.

        The batch execution kernel maintains this deque inline (append +
        expire + count, exactly :meth:`observe`'s bookkeeping) so scalar
        and batch slices share one continuous load window.
        """
        return self._arrivals.setdefault((service, version), deque())


@dataclass(frozen=True)
class RequestOutcome:
    """Result of executing one end-user request."""

    request: Request
    trace: Trace
    duration_ms: float
    error: bool
    version_path: tuple[tuple[str, str], ...] = field(default=())


class Runtime:
    """Executes requests against an :class:`Application`."""

    def __init__(
        self,
        application: Application,
        router: Router | None = None,
        clock: SimulationClock | None = None,
        seed: int = 101,
        collector: TraceCollector | None = None,
        monitor: Monitor | None = None,
        proxy_overhead_ms: float = 2.0,
        load_window_seconds: float = 10.0,
        resilience: ResilienceLayer | None = None,
        network: NetworkGate | None = None,
    ) -> None:
        self.application = application
        self.router = router or StaticRouter()
        self.clock = clock or SimulationClock()
        self.rng = SeededRng(seed)
        self.collector = collector or TraceCollector()
        self.monitor = monitor or Monitor()
        self.proxy_overhead_ms = proxy_overhead_ms
        self.load = LoadTracker(load_window_seconds)
        self.resilience = resilience or ResilienceLayer()
        self.resilience.subscribe(self.monitor.observe_resilience)
        self.network = network
        self._trace_counter = itertools.count(1)
        self.requests_executed = 0

    # -- batch fast-path hooks ---------------------------------------------

    def fast_path_blockers(self) -> list[str]:
        """Runtime-level reasons the batch kernel must not bypass ``_call``.

        Empty means every per-hop hook this runtime would invoke is a
        no-op: no resilience policies or breakers, and no network gate
        that could fail a link.  The batch driver combines these with
        its own slice-level checks (routes, campaigns, subscribers).
        """
        reasons: list[str] = []
        if not self.resilience.passthrough:
            reasons.append("resilience-policies")
        if self.network is not None:
            partitions = getattr(self.network, "partitions", None)
            if partitions is None:
                # Unknown gate implementation: can't prove it inert.
                reasons.append("network-gate")
            elif partitions:
                reasons.append("network-partitions")
        return reasons

    def next_trace_id(self) -> str:
        """Allocate the next trace id (shared scalar/batch numbering)."""
        return f"t{next(self._trace_counter):09d}"

    def advance_trace_ids(self, count: int) -> None:
        """Consume *count* trace ids in O(1).

        The batch kernel's non-recording mode doesn't build traces but
        still burns one id per request, so a scalar request executed
        after a batch run gets the same id it would have in an all-scalar
        replay.
        """
        if count <= 0:
            return
        base = next(self._trace_counter)
        self._trace_counter = itertools.count(base + count)

    def execute(self, request: Request) -> RequestOutcome:
        """Run *request* through the topology and return its outcome.

        The shared clock is advanced to the request's arrival time first,
        so workloads must be replayed in timestamp order.
        """
        if request.timestamp > self.clock.now:
            self.clock.advance_to(request.timestamp)
        service, _, endpoint = request.entry.partition(".")
        if not endpoint:
            raise ExecutionError(
                f"request entry must be 'service.endpoint', got {request.entry!r}"
            )
        trace_id = f"t{next(self._trace_counter):09d}"
        spans: list[Span] = []
        versions: list[tuple[str, str]] = []
        duration, error = self._dispatch(
            request,
            trace_id,
            parent_id=None,
            caller=None,
            service=service,
            endpoint=endpoint,
            start=self.clock.now,
            depth=0,
            shadow=False,
            spans=spans,
            versions=versions,
        )
        self.collector.record_all(spans)
        self.monitor.observe_spans(spans)
        self.requests_executed += 1
        trace = Trace(trace_id, spans)
        return RequestOutcome(request, trace, duration, error, tuple(versions))

    def _dispatch(
        self,
        request: Request,
        trace_id: str,
        parent_id: str | None,
        caller: str | None,
        service: str,
        endpoint: str,
        start: float,
        depth: int,
        shadow: bool,
        spans: list[Span],
        versions: list[tuple[str, str]],
    ) -> tuple[float, bool]:
        """Execute one hop under its :class:`CallPolicy` (if any).

        Runs the call, applies the timeout, and retries failures with
        exponential backoff plus seeded jitter; all attempt durations and
        backoff pauses are charged to the observed duration.  When every
        attempt failed and the policy allows it, a fallback response is
        served instead of an error.
        """
        policy = self.resilience.policy_for(service, endpoint)
        if policy is None or shadow:
            duration, error, _ = self._call(
                request, trace_id, parent_id, caller, service, endpoint,
                start, depth, shadow, spans, versions,
            )
            return duration, error

        elapsed_ms = 0.0
        attempts = policy.max_retries + 1
        version = ""
        for attempt in range(attempts):
            attempt_start = start + elapsed_ms / 1000.0
            duration, error, version = self._call(
                request, trace_id, parent_id, caller, service, endpoint,
                attempt_start, depth, shadow, spans, versions,
                attempt=attempt,
            )
            timed_out = (
                policy.timeout_ms is not None and duration > policy.timeout_ms
            )
            if timed_out:
                # The caller stops waiting at the timeout; the callee's
                # span keeps its full duration but only the wait charges.
                elapsed_ms += policy.timeout_ms
                self.resilience.emit(
                    ResilienceEvent(
                        TIMEOUT,
                        attempt_start,
                        service,
                        version,
                        endpoint,
                        attempt,
                        detail=f"{duration:.1f}ms > {policy.timeout_ms:.1f}ms",
                    )
                )
            else:
                elapsed_ms += duration
            if not error and not timed_out:
                return elapsed_ms, False
            if attempt + 1 < attempts:
                backoff = policy.backoff_ms(attempt + 1)
                if policy.jitter_ms > 0:
                    backoff += self.rng.uniform(0.0, policy.jitter_ms)
                elapsed_ms += backoff
                self.resilience.emit(
                    ResilienceEvent(
                        RETRY,
                        start + elapsed_ms / 1000.0,
                        service,
                        version,
                        endpoint,
                        attempt + 1,
                        detail=f"backoff={backoff:.1f}ms",
                    )
                )
        if policy.fallback:
            elapsed_ms += policy.fallback_latency_ms
            self.resilience.emit(
                ResilienceEvent(
                    FALLBACK,
                    start + elapsed_ms / 1000.0,
                    service,
                    version,
                    endpoint,
                    attempts - 1,
                )
            )
            return elapsed_ms, False
        return elapsed_ms, True

    def _call(
        self,
        request: Request,
        trace_id: str,
        parent_id: str | None,
        caller: str | None,
        service: str,
        endpoint: str,
        start: float,
        depth: int,
        shadow: bool,
        spans: list[Span],
        versions: list[tuple[str, str]],
        forced_version: str | None = None,
        attempt: int = 0,
    ) -> tuple[float, bool, str]:
        """Execute one attempt; returns (observed duration ms, error, version)."""
        if depth > _MAX_CALL_DEPTH:
            raise ExecutionError(
                f"call depth exceeded {_MAX_CALL_DEPTH}; cyclic topology?"
            )
        if forced_version is not None:
            decision = RoutingDecision(version=forced_version)
        else:
            decision = self.router.route(request, service)
        svc = self.application.service(service)
        version_name = decision.version or svc.stable_version
        version = svc.get(version_name)

        base_tags = {"group": request.group, "user": request.user_id}
        if shadow:
            base_tags["shadow"] = "true"
        if attempt > 0:
            base_tags["retry_attempt"] = str(attempt)

        # Network partition: the link between caller and callee is down;
        # the call fails before any work happens on the callee.
        if (
            caller is not None
            and self.network is not None
            and self.network.is_partitioned(caller, service)
        ):
            spans.append(
                Span(
                    span_id=next_span_id(),
                    trace_id=trace_id,
                    parent_id=parent_id,
                    service=service,
                    version=version_name,
                    endpoint=endpoint,
                    start=start,
                    duration_ms=0.0,
                    error=True,
                    tags={**base_tags, "fault": "partition"},
                )
            )
            if not shadow:
                versions.append((service, version_name))
            self.resilience.observe(service, version_name, start, success=False)
            return 0.0, True, version_name

        # Circuit breaker: an open breaker rejects the call outright.
        if not self.resilience.admit(service, version_name, start):
            spans.append(
                Span(
                    span_id=next_span_id(),
                    trace_id=trace_id,
                    parent_id=parent_id,
                    service=service,
                    version=version_name,
                    endpoint=endpoint,
                    start=start,
                    duration_ms=0.0,
                    error=True,
                    tags={**base_tags, "breaker": "open"},
                )
            )
            if not shadow:
                versions.append((service, version_name))
            self.resilience.emit(
                ResilienceEvent(
                    BREAKER_REJECT, start, service, version_name, endpoint, attempt
                )
            )
            return 0.0, True, version_name

        spec = version.endpoint(endpoint)
        load = self.load.observe(
            service, version_name, start, version.total_capacity_rps
        )
        own_latency = spec.latency.sample(self.rng, load)
        proxy_cost = decision.proxy_hops * self.proxy_overhead_ms
        local_error = self.rng.random() < spec.error_rate
        if not shadow:
            versions.append((service, version_name))
        # Allocate the span id up front so children can reference their
        # parent directly.
        span_id = next_span_id()

        children_duration = 0.0
        slowest_child = 0.0
        child_error = False
        # Children start after the local pre-processing share of the
        # endpoint's own latency; sequentially they chain one after the
        # other, with fan-out they all start together and the endpoint
        # waits for the slowest.
        child_start = start + 0.3 * own_latency / 1000.0
        for call in spec.calls:
            if call.probability < 1.0 and self.rng.random() >= call.probability:
                continue
            offset = 0.0 if spec.parallel_calls else children_duration / 1000.0
            child_duration, failed = self._dispatch(
                request,
                trace_id,
                parent_id=span_id,
                caller=service,
                service=call.service,
                endpoint=call.endpoint,
                start=child_start + offset,
                depth=depth + 1,
                shadow=shadow,
                spans=spans,
                versions=versions,
            )
            children_duration += child_duration
            slowest_child = max(slowest_child, child_duration)
            child_error = child_error or failed
        waited = slowest_child if spec.parallel_calls else children_duration
        duration = own_latency + proxy_cost + waited
        error = local_error or child_error

        span = Span(
            span_id=span_id,
            trace_id=trace_id,
            parent_id=parent_id,
            service=service,
            version=version_name,
            endpoint=endpoint,
            start=start,
            duration_ms=duration,
            error=error,
            tags=base_tags,
        )
        spans.append(span)
        self.resilience.observe(
            service, version_name, start + duration / 1000.0, success=not error
        )

        # Dark-launch duplication: replay the same call against shadow
        # versions; their spans join the trace (tagged) but their latency
        # never reaches the user.
        for shadow_version in decision.shadow_versions:
            if not svc.has_version(shadow_version):
                continue
            self._call(
                request,
                trace_id,
                parent_id=span_id,
                caller=caller,
                service=service,
                endpoint=endpoint,
                start=start,
                depth=depth + 1,
                shadow=True,
                spans=spans,
                versions=versions,
                forced_version=shadow_version,
            )
        return duration, error, version_name
