"""Fault injection: controlled degradations for evaluation scenarios.

The Chapter 5 ranking evaluation distinguishes sub-scenarios "with and
without introduced performance degradation"; the Bifrost evaluation needs
versions that violate health criteria so rollbacks actually trigger.
:class:`FaultInjector` rewrites endpoint specs of a deployed version:
latency multipliers and added error rates.  Repeated degradations of the
same endpoint *compose* against the pristine spec (factors multiply,
error rates add) instead of stacking wrapper upon wrapper, and each
applied fault can be reverted individually.

:class:`FaultCampaign` extends the taxonomy beyond static degradation:
it schedules *time-windowed transient faults* — error bursts, latency
spikes, version crashes, and network partitions — that activate and
revert on simulated-clock boundaries, driven by the discrete-event
engine.  That is what lets a canary face a 30-second burst that retries
can absorb, versus a sustained crash that must trip the breaker and the
rollback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Union

from repro.errors import ConfigurationError
from repro.microservices.application import Application
from repro.microservices.service import EndpointSpec
from repro.simulation.engine import SimulationEngine
from repro.simulation.latency import LatencyModel
from repro.simulation.rng import SeededRng


class _ScaledLatency(LatencyModel):
    """Multiplies a base latency model by a constant factor."""

    def __init__(self, base: LatencyModel, factor: float) -> None:
        self.base = base
        self.factor = factor

    def sample(self, rng: SeededRng, load: float = 1.0) -> float:
        return self.base.sample(rng, load) * self.factor

    def mean(self) -> float:
        return self.base.mean() * self.factor


def _remove_exact(items: list, target: object) -> bool:
    """Remove *target* from *items* by identity (fall back to equality).

    ``list.remove`` uses value equality, which conflates two equal
    overlapping faults; preferring identity keeps each handle tied to
    its own application.
    """
    for index, item in enumerate(items):
        if item is target:
            del items[index]
            return True
    for index, item in enumerate(items):
        if item == target:
            del items[index]
            return True
    return False


@dataclass(frozen=True)
class InjectedFault:
    """Record of one applied fault (for reporting and reversal)."""

    service: str
    version: str
    endpoint: str
    latency_factor: float
    added_error_rate: float


class FaultInjector:
    """Applies and tracks degradations on deployed service versions.

    All active faults on one endpoint compose against the *original*
    (pristine) spec: latency factors multiply, added error rates sum
    (clamped to 1.0).  This guards against stacking ``_ScaledLatency``
    wrappers when the same endpoint is degraded twice, and makes
    single-fault reversal exact.
    """

    def __init__(self, application: Application) -> None:
        self.application = application
        self._originals: dict[tuple[str, str, str], EndpointSpec] = {}
        self._active: dict[tuple[str, str, str], list[InjectedFault]] = {}
        self._order: list[InjectedFault] = []

    @property
    def faults(self) -> list[InjectedFault]:
        """All currently applied faults, in application order."""
        return list(self._order)

    def degrade(
        self,
        service: str,
        version: str,
        endpoint: str,
        latency_factor: float = 1.0,
        added_error_rate: float = 0.0,
    ) -> InjectedFault:
        """Degrade one endpoint of one version in place.

        *latency_factor* multiplies sampled latencies (>= 1 slows the
        endpoint down); *added_error_rate* is added to the endpoint's
        local failure probability (clamped to 1.0).  Degrading an already
        degraded endpoint composes with the active faults rather than
        wrapping the degraded spec again.
        """
        if latency_factor <= 0:
            raise ConfigurationError("latency_factor must be positive")
        if not 0.0 <= added_error_rate <= 1.0:
            raise ConfigurationError("added_error_rate must be in [0, 1]")
        service_version = self.application.resolve(service, version)
        key = (service, version, endpoint)
        if key not in self._originals:
            self._originals[key] = service_version.endpoint(endpoint)
        fault = InjectedFault(
            service, version, endpoint, latency_factor, added_error_rate
        )
        self._active.setdefault(key, []).append(fault)
        self._order.append(fault)
        self._rebuild(key)
        return fault

    def restore(self, fault: InjectedFault) -> None:
        """Undo exactly one previously applied *fault*.

        Removal is identity-exact: when the same degradation was applied
        twice (overlapping windows of equal faults), each handle removes
        *its own* application, so interleaved restores stay balanced.
        """
        key = (fault.service, fault.version, fault.endpoint)
        active = self._active.get(key, [])
        if not _remove_exact(active, fault):
            raise ConfigurationError(f"fault was not applied (or already restored): {fault}")
        _remove_exact(self._order, fault)
        self._rebuild(key)

    def restore_all(self) -> int:
        """Undo every applied fault in LIFO order; returns the count.

        Reverting last-applied-first mirrors how nested transient-fault
        windows unwind (a spike inside a burst ends before the burst),
        so the intermediate endpoint states walked through are exactly
        the states the campaign walked through forward.
        """
        count = len(self._order)
        for fault in reversed(list(self._order)):
            self.restore(fault)
        return count

    def _rebuild(self, key: tuple[str, str, str]) -> None:
        """Recompute the endpoint spec from the original + active faults.

        When the last active fault on an endpoint is restored, the cached
        pristine spec is dropped as well: a later deploy may legitimately
        replace the endpoint, and a retained stale original would roll
        that deploy back on the next degrade/restore cycle.
        """
        service, version, endpoint = key
        original = self._originals[key]
        active = self._active.get(key, [])
        if not active:
            spec = original
            del self._originals[key]
            self._active.pop(key, None)
        else:
            factor = 1.0
            added_error = 0.0
            for fault in active:
                factor *= fault.latency_factor
                added_error += fault.added_error_rate
            latency = (
                _ScaledLatency(original.latency, factor)
                if factor != 1.0
                else original.latency
            )
            spec = EndpointSpec(
                name=original.name,
                latency=latency,
                error_rate=min(1.0, original.error_rate + added_error),
                calls=original.calls,
                parallel_calls=original.parallel_calls,
            )
        self.application.resolve(service, version).endpoints[endpoint] = spec


class NetworkState:
    """Active network partitions between service pairs.

    The runtime consults :meth:`is_partitioned` on every hop; a
    partitioned link fails the call before any callee work happens.
    Partitions are symmetric — "calls between two services fail".
    """

    def __init__(self) -> None:
        self._partitions: set[frozenset[str]] = set()

    def partition(self, service_a: str, service_b: str) -> None:
        """Cut the link between two services."""
        if service_a == service_b:
            raise ConfigurationError("cannot partition a service from itself")
        self._partitions.add(frozenset((service_a, service_b)))

    def heal(self, service_a: str, service_b: str) -> None:
        """Restore the link between two services (idempotent)."""
        self._partitions.discard(frozenset((service_a, service_b)))

    def heal_all(self) -> None:
        """Restore every link."""
        self._partitions.clear()

    def is_partitioned(self, caller: str, callee: str) -> bool:
        """Whether calls from *caller* to *callee* currently fail."""
        return frozenset((caller, callee)) in self._partitions

    @property
    def partitions(self) -> list[tuple[str, str]]:
        """Currently cut links as sorted pairs."""
        return sorted(tuple(sorted(pair)) for pair in self._partitions)


@dataclass(frozen=True)
class ErrorBurst:
    """Transient fault: an endpoint returns extra errors during a window."""

    service: str
    version: str
    endpoint: str
    added_error_rate: float
    start: float
    end: float


@dataclass(frozen=True)
class LatencySpike:
    """Transient fault: an endpoint slows down during a window."""

    service: str
    version: str
    endpoint: str
    latency_factor: float
    start: float
    end: float


@dataclass(frozen=True)
class VersionCrash:
    """Transient fault: every request to a version fails during a window."""

    service: str
    version: str
    start: float
    end: float


@dataclass(frozen=True)
class Partition:
    """Transient fault: calls between two services fail during a window."""

    service_a: str
    service_b: str
    start: float
    end: float


@dataclass(frozen=True)
class EngineCrash:
    """Transient fault: the *experiment engine itself* dies during a window.

    Unlike the application-facing faults, this targets the control
    plane: at ``start`` the engine is killed (in-memory execution state
    lost, routes and telemetry survive), at ``end`` the supervisor is
    asked to restart and recover it from journal + snapshot.
    """

    start: float
    end: float


class CrashTarget(Protocol):
    """What an :class:`EngineCrash` needs to drive — a supervisor that
    can kill the current engine and later restart-and-recover it."""

    def crash(self, now: float) -> None:
        """Kill the engine at simulated time *now*."""
        ...  # pragma: no cover - protocol

    def restart(self, now: float) -> None:
        """Restart and recover the engine at simulated time *now*."""
        ...  # pragma: no cover - protocol


TransientFault = Union[ErrorBurst, LatencySpike, VersionCrash, Partition, EngineCrash]


def describe_fault(fault: TransientFault) -> str:
    """Deterministic one-token label for a transient fault.

    Decision-provenance nodes (:mod:`repro.obs.provenance`) record these
    labels so a rollback report can name the fault that was active when
    the engine decided.  Labels carry the fault's identity but not its
    window — two bursts on the same endpoint are the same cause.
    """
    if isinstance(fault, ErrorBurst):
        return f"ErrorBurst:{fault.service}@{fault.version}/{fault.endpoint}"
    if isinstance(fault, LatencySpike):
        return f"LatencySpike:{fault.service}@{fault.version}/{fault.endpoint}"
    if isinstance(fault, VersionCrash):
        return f"VersionCrash:{fault.service}@{fault.version}"
    if isinstance(fault, Partition):
        pair = sorted((fault.service_a, fault.service_b))
        return f"Partition:{pair[0]}|{pair[1]}"
    return "EngineCrash"


@dataclass(frozen=True)
class CampaignEvent:
    """One activation or reversion performed by a campaign."""

    time: float
    action: str  # "activate" | "revert"
    fault: TransientFault


class FaultCampaign:
    """Schedules time-windowed transient faults on the simulated clock.

    Faults are declared up front via :meth:`add` and installed onto a
    :class:`~repro.simulation.engine.SimulationEngine`; the engine fires
    activation at ``fault.start`` and reversion at ``fault.end``, so the
    campaign composes deterministically with request replay and the
    Bifrost engine on the shared timeline.
    """

    def __init__(
        self,
        injector: FaultInjector,
        network: NetworkState | None = None,
        engine: CrashTarget | None = None,
    ) -> None:
        self.injector = injector
        self.network = network
        self.engine = engine
        self._faults: list[TransientFault] = []
        self._handles: dict[int, list[InjectedFault]] = {}
        self.log: list[CampaignEvent] = []
        self._installed = False

    @property
    def faults(self) -> list[TransientFault]:
        """All declared transient faults, in declaration order."""
        return list(self._faults)

    def add(self, fault: TransientFault) -> TransientFault:
        """Declare one transient *fault* (before :meth:`install`)."""
        if fault.end <= fault.start:
            raise ConfigurationError(
                f"fault window must satisfy start < end, got [{fault.start}, {fault.end}]"
            )
        if fault.start < 0:
            raise ConfigurationError("fault window cannot start before t=0")
        if isinstance(fault, Partition) and self.network is None:
            raise ConfigurationError(
                "partitions need a NetworkState wired into the campaign"
            )
        if self._installed:
            raise ConfigurationError("campaign already installed; add faults first")
        self._faults.append(fault)
        return fault

    def install(self, simulation: SimulationEngine) -> int:
        """Schedule every declared fault; returns the number of events."""
        if self._installed:
            raise ConfigurationError("campaign already installed")
        # The crash target is validated here, not in add(): middleware
        # wires the supervisor onto the campaign between declaring the
        # faults and installing them.
        if self.engine is None and any(
            isinstance(fault, EngineCrash) for fault in self._faults
        ):
            raise ConfigurationError(
                "engine crashes need a crash target (supervisor) wired "
                "into the campaign"
            )
        self._installed = True
        events = 0
        for index, fault in enumerate(self._faults):
            simulation.schedule_at(
                fault.start,
                lambda f=fault, i=index: self._activate(f, i, simulation.now),
                label=f"fault-on:{type(fault).__name__}",
            )
            simulation.schedule_at(
                fault.end,
                lambda f=fault, i=index: self._revert(f, i, simulation.now),
                label=f"fault-off:{type(fault).__name__}",
            )
            events += 2
        return events

    def active_at(self, now: float) -> list[TransientFault]:
        """Faults whose window covers *now* (inspection helper)."""
        return [f for f in self._faults if f.start <= now < f.end]

    def _activate(self, fault: TransientFault, index: int, now: float) -> None:
        handles: list[InjectedFault] = []
        if isinstance(fault, ErrorBurst):
            handles.append(
                self.injector.degrade(
                    fault.service,
                    fault.version,
                    fault.endpoint,
                    added_error_rate=fault.added_error_rate,
                )
            )
        elif isinstance(fault, LatencySpike):
            handles.append(
                self.injector.degrade(
                    fault.service,
                    fault.version,
                    fault.endpoint,
                    latency_factor=fault.latency_factor,
                )
            )
        elif isinstance(fault, VersionCrash):
            version = self.injector.application.resolve(fault.service, fault.version)
            for endpoint in sorted(version.endpoints):
                handles.append(
                    self.injector.degrade(
                        fault.service,
                        fault.version,
                        endpoint,
                        added_error_rate=1.0,
                    )
                )
        elif isinstance(fault, Partition):
            assert self.network is not None
            self.network.partition(fault.service_a, fault.service_b)
        else:  # EngineCrash
            assert self.engine is not None
            self.engine.crash(now)
        self._handles[index] = handles
        self.log.append(CampaignEvent(now, "activate", fault))

    def _revert(self, fault: TransientFault, index: int, now: float) -> None:
        for handle in self._handles.pop(index, []):
            self.injector.restore(handle)
        if isinstance(fault, Partition):
            assert self.network is not None
            self.network.heal(fault.service_a, fault.service_b)
        elif isinstance(fault, EngineCrash):
            assert self.engine is not None
            self.engine.restart(now)
        self.log.append(CampaignEvent(now, "revert", fault))
