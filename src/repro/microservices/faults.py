"""Fault injection: controlled degradations for evaluation scenarios.

The Chapter 5 ranking evaluation distinguishes sub-scenarios "with and
without introduced performance degradation"; the Bifrost evaluation needs
versions that violate health criteria so rollbacks actually trigger.
:class:`FaultInjector` rewrites endpoint specs of a deployed version:
latency multipliers and added error rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.microservices.application import Application
from repro.microservices.service import EndpointSpec
from repro.simulation.latency import LatencyModel
from repro.simulation.rng import SeededRng


class _ScaledLatency(LatencyModel):
    """Multiplies a base latency model by a constant factor."""

    def __init__(self, base: LatencyModel, factor: float) -> None:
        self.base = base
        self.factor = factor

    def sample(self, rng: SeededRng, load: float = 1.0) -> float:
        return self.base.sample(rng, load) * self.factor

    def mean(self) -> float:
        return self.base.mean() * self.factor


@dataclass(frozen=True)
class InjectedFault:
    """Record of one applied fault (for reporting and reversal)."""

    service: str
    version: str
    endpoint: str
    latency_factor: float
    added_error_rate: float


class FaultInjector:
    """Applies and tracks degradations on deployed service versions."""

    def __init__(self, application: Application) -> None:
        self.application = application
        self._applied: list[tuple[InjectedFault, EndpointSpec]] = []

    @property
    def faults(self) -> list[InjectedFault]:
        """All currently applied faults."""
        return [fault for fault, _ in self._applied]

    def degrade(
        self,
        service: str,
        version: str,
        endpoint: str,
        latency_factor: float = 1.0,
        added_error_rate: float = 0.0,
    ) -> InjectedFault:
        """Degrade one endpoint of one version in place.

        *latency_factor* multiplies sampled latencies (>= 1 slows the
        endpoint down); *added_error_rate* is added to the endpoint's
        local failure probability (clamped to 1.0).
        """
        if latency_factor <= 0:
            raise ConfigurationError("latency_factor must be positive")
        if not 0.0 <= added_error_rate <= 1.0:
            raise ConfigurationError("added_error_rate must be in [0, 1]")
        service_version = self.application.resolve(service, version)
        original = service_version.endpoint(endpoint)
        degraded = EndpointSpec(
            name=original.name,
            latency=_ScaledLatency(original.latency, latency_factor),
            error_rate=min(1.0, original.error_rate + added_error_rate),
            calls=original.calls,
        )
        service_version.endpoints[endpoint] = degraded
        fault = InjectedFault(
            service, version, endpoint, latency_factor, added_error_rate
        )
        self._applied.append((fault, original))
        return fault

    def restore_all(self) -> int:
        """Undo every applied fault; returns how many were reverted."""
        count = 0
        while self._applied:
            fault, original = self._applied.pop()
            service_version = self.application.resolve(fault.service, fault.version)
            service_version.endpoints[fault.endpoint] = original
            count += 1
        return count
