"""Random application topologies.

The Chapter 5 performance evaluation scales interaction graphs up to
"1,000 microservices with 10 endpoints each"; this generator produces
layered DAG applications of configurable depth/breadth so both the
runtime-based tests and the heuristic scalability benches can synthesize
realistic topologies.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.microservices.application import Application
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import LoadSensitiveLatency, LogNormalLatency
from repro.simulation.rng import SeededRng


def random_application(
    num_services: int = 10,
    endpoints_per_service: int = 3,
    layers: int = 3,
    fanout: int = 2,
    seed: int = 5,
    version: str = "1.0.0",
    base_latency_ms: float = 15.0,
) -> Application:
    """Generate a layered microservice application.

    Services are arranged into *layers*; endpoints in layer *i* call up to
    *fanout* endpoints in deeper layers only, so the topology is acyclic.
    Layer 0 holds the single ``frontend`` service whose endpoints are the
    request entry points.

    Args:
        num_services: total services including the frontend.
        endpoints_per_service: endpoints per service.
        layers: number of layers (>= 2 once there is more than one service).
        fanout: maximum downstream calls per endpoint.
        seed: RNG seed controlling wiring and latency medians.
        version: version string every generated service starts at.
        base_latency_ms: median own-latency scale.
    """
    if num_services < 1:
        raise ConfigurationError("need at least one service")
    if endpoints_per_service < 1:
        raise ConfigurationError("need at least one endpoint per service")
    if layers < 1:
        raise ConfigurationError("need at least one layer")
    if fanout < 0:
        raise ConfigurationError("fanout must be >= 0")
    rng = SeededRng(seed)
    app = Application("generated")

    # Assign services to layers: frontend alone in layer 0, the rest
    # spread round-robin over the deeper layers.
    layer_of: dict[str, int] = {"frontend": 0}
    names = ["frontend"]
    backend_layers = max(1, layers - 1)
    for i in range(1, num_services):
        name = f"svc{i:03d}"
        names.append(name)
        layer_of[name] = 1 + (i - 1) % backend_layers

    def endpoints_of(name: str) -> list[str]:
        return [f"ep{j}" for j in range(endpoints_per_service)]

    for name in names:
        layer = layer_of[name]
        deeper = [n for n in names if layer_of[n] > layer]
        specs: dict[str, EndpointSpec] = {}
        for ep_name in endpoints_of(name):
            calls: list[DownstreamCall] = []
            if deeper and fanout > 0:
                n_calls = rng.randint(0 if layer > 0 else 1, fanout)
                for _ in range(n_calls):
                    callee = rng.choice(deeper)
                    callee_ep = rng.choice(endpoints_of(callee))
                    target = DownstreamCall(callee, callee_ep, probability=1.0)
                    if all(
                        c.service != target.service or c.endpoint != target.endpoint
                        for c in calls
                    ):
                        calls.append(target)
            median = base_latency_ms * rng.uniform(0.5, 2.0)
            specs[ep_name] = EndpointSpec(
                name=ep_name,
                latency=LoadSensitiveLatency(LogNormalLatency(median, 0.3)),
                error_rate=0.0,
                calls=calls,
            )
        app.deploy(
            ServiceVersion(name, version, specs, capacity_rps=200.0), stable=True
        )
    return app
