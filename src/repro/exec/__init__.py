"""Mode-aware execution backends: one DSL strategy, three substrates.

The execution router makes the paper's portability claim concrete: a
Bifrost strategy (the DSL artifact teams version next to their code)
runs unmodified against

- **SIM** — the in-process discrete-event simulator,
- **REPLAY** — a recorded run re-driven at original logical timestamps
  and diffed outcome-by-outcome (:func:`diff_replay`),
- **LIVE** — a real asyncio/HTTP microservice testbed on loopback
  sockets, routed by the same proxy layer the engine installs
  experiment routes into.

See ``docs/EXECUTION_MODES.md`` for the mode matrix and workflows.
"""

from repro.exec.live import LiveBackend, LiveCluster, LiveOptions, LiveRunResult
from repro.exec.recording import (
    RecordedRequest,
    RecordedSpan,
    Recording,
    run_digest,
)
from repro.exec.replay import (
    ReplayBackend,
    ReplayDiff,
    ReplayRunResult,
    diff_replay,
)
from repro.exec.router import ExecutionMode, ExecutionReport, ExecutionRouter
from repro.exec.sim import SimBackend, SimRunResult

__all__ = [
    "ExecutionMode",
    "ExecutionReport",
    "ExecutionRouter",
    "LiveBackend",
    "LiveCluster",
    "LiveOptions",
    "LiveRunResult",
    "RecordedRequest",
    "RecordedSpan",
    "Recording",
    "ReplayBackend",
    "ReplayDiff",
    "ReplayRunResult",
    "SimBackend",
    "SimRunResult",
    "diff_replay",
    "run_digest",
]
