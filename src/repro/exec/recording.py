"""Recordings: the portable artifact the REPLAY backend re-drives.

A :class:`Recording` is everything one SIM (or LIVE) run observed,
serialized as one JSONL stream of typed lines:

- one ``meta`` line — the strategy as DSL text, the seed, the submit
  time, and the horizon, so a replay reconstructs the exact experiment;
- one ``event`` line per :class:`~repro.obs.events.Event` the observer
  captured (the full glass-box stream, not just the retained ring);
- one ``request`` line per executed request — its identity, arrival
  timestamp, and the *observed spans* ``(service, version, start,
  duration_ms, error)`` whose metrics the monitor derived from it;
- one ``digest`` line — the content digest of the run's decision-
  relevant state (full :meth:`MetricStore.snapshot`, transitions, check
  log, terminal outcomes) plus the final logical clock.

The span lines are the load-bearing part: re-feeding them into a fresh
:class:`~repro.telemetry.store.MetricStore` at their original logical
timestamps reproduces the exact store every check evaluation read, so a
replayed engine makes the same decisions at the same times — which is
what :func:`run_digest` equality certifies.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Iterable, Mapping

from repro.errors import ValidationError
from repro.obs.events import Event, event_from_dict, stream_truncation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bifrost.engine import StrategyExecution
    from repro.telemetry.store import MetricStore

FORMAT_VERSION = 1


@dataclass(frozen=True)
class RecordedSpan:
    """One observed span, reduced to the fields the monitor consumes."""

    service: str
    version: str
    start: float
    duration_ms: float
    error: bool

    def as_list(self) -> list:
        return [self.service, self.version, self.start, self.duration_ms, self.error]

    @classmethod
    def from_list(cls, doc: Iterable) -> "RecordedSpan":
        service, version, start, duration_ms, error = doc
        return cls(
            service=str(service),
            version=str(version),
            start=float(start),
            duration_ms=float(duration_ms),
            error=bool(error),
        )


@dataclass(frozen=True)
class RecordedRequest:
    """One executed request: arrival identity plus observed spans."""

    timestamp: float
    user_id: str
    group: str
    entry: str
    headers: Mapping[str, str] = field(default_factory=dict)
    spans: tuple[RecordedSpan, ...] = ()
    duration_ms: float = 0.0
    error: bool = False

    def as_dict(self) -> dict:
        return {
            "type": "request",
            "t": self.timestamp,
            "user": self.user_id,
            "group": self.group,
            "entry": self.entry,
            "headers": dict(self.headers),
            "spans": [span.as_list() for span in self.spans],
            "duration_ms": self.duration_ms,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "RecordedRequest":
        try:
            return cls(
                timestamp=float(doc["t"]),
                user_id=str(doc["user"]),
                group=str(doc["group"]),
                entry=str(doc["entry"]),
                headers=dict(doc.get("headers", {})),
                spans=tuple(
                    RecordedSpan.from_list(span) for span in doc.get("spans", ())
                ),
                duration_ms=float(doc.get("duration_ms", 0.0)),
                error=bool(doc.get("error", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed recorded request: {exc}") from exc


def run_digest(
    store: "MetricStore", executions: Iterable["StrategyExecution"]
) -> str:
    """Content digest of a run's decision-relevant state.

    Covers the full metric-store snapshot, every transition record,
    every check evaluation (minus wall-clock evaluation cost, which is
    explicitly non-semantic), and each strategy's terminal outcome.  Two
    runs with equal digests made the same decisions at the same logical
    times on the same observed data.
    """
    body = {
        "store": store.snapshot(),
        "strategies": [
            {
                "name": execution.strategy.name,
                "state": execution.state,
                "outcome": execution.outcome.value,
                "winner": execution.winner,
                "finished_at": execution.finished_at,
                "phase_entries": execution.phase_entries,
                "transitions": [
                    [r.time, r.source, r.target, r.trigger, r.action.value]
                    for r in execution.transitions
                ],
                "checks": [
                    [r.time, r.check.name, r.outcome.value, r.observed, r.reference]
                    for r in execution.check_log
                ],
            }
            for execution in sorted(
                executions, key=lambda e: e.strategy.name
            )
        ],
    }
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class Recording:
    """One recorded experiment run, replayable and diffable.

    ``strategy_dsl`` is the human-readable artifact; ``strategy_doc``
    (the lossless :func:`~repro.bifrost.model.strategy_to_dict` form) is
    what replays actually rebuild from, so strategies that exercise
    corners the DSL defaults away still re-run exactly.
    """

    strategy_dsl: str
    seed: int
    submit_at: float
    end_time: float
    events: list[Event] = field(default_factory=list)
    requests: list[RecordedRequest] = field(default_factory=list)
    digest: str = ""
    outcomes: dict[str, str] = field(default_factory=dict)
    mode: str = "sim"
    strategy_doc: dict | None = None

    @property
    def truncated(self) -> Event | None:
        """The truncation sentinel in the event stream, if any."""
        return stream_truncation(self.events)

    def provenance(self, *, allow_truncated: bool = False):
        """Reconstruct the run's decision-provenance graph.

        Folds the recorded event stream through
        :func:`repro.obs.provenance.build_provenance` — the exact fold
        the recording engine ran live, so the result is digest-equal to
        the engine-side graph (and to a faithful replay's).
        """
        from repro.obs.provenance import build_provenance

        return build_provenance(self.events, allow_truncated=allow_truncated)

    def jsonl_lines(self) -> Iterable[str]:
        """The recording as typed JSON lines (``meta`` first)."""

        def dump(doc: dict) -> str:
            return json.dumps(doc, sort_keys=True, separators=(",", ":"))

        meta = {
            "type": "meta",
            "format": FORMAT_VERSION,
            "mode": self.mode,
            "strategy_dsl": self.strategy_dsl,
            "seed": self.seed,
            "submit_at": self.submit_at,
            "end_time": self.end_time,
        }
        if self.strategy_doc is not None:
            meta["strategy"] = self.strategy_doc
        yield dump(meta)
        for event in self.events:
            yield dump({"type": "event", **event.as_dict()})
        for request in self.requests:
            yield dump(request.as_dict())
        yield dump(
            {"type": "digest", "value": self.digest, "outcomes": dict(self.outcomes)}
        )

    def save(self, target: str | IO[str]) -> int:
        """Write the recording as JSONL; returns the line count."""
        lines = list(self.jsonl_lines())
        text = "\n".join(lines) + "\n"
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
        else:
            target.write(text)
        return len(lines)

    @classmethod
    def from_jsonl(cls, lines: Iterable[str]) -> "Recording":
        """Rebuild a recording from its :meth:`jsonl_lines` form."""
        meta: dict | None = None
        events: list[Event] = []
        requests: list[RecordedRequest] = []
        digest = ""
        outcomes: dict[str, str] = {}
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(f"undecodable recording line: {exc}") from exc
            kind = doc.get("type")
            if kind == "meta":
                meta = doc
            elif kind == "event":
                events.append(event_from_dict(doc))
            elif kind == "request":
                requests.append(RecordedRequest.from_dict(doc))
            elif kind == "digest":
                digest = str(doc.get("value", ""))
                outcomes = {str(k): str(v) for k, v in doc.get("outcomes", {}).items()}
            else:
                raise ValidationError(f"unknown recording line type: {kind!r}")
        if meta is None:
            raise ValidationError("recording is missing its meta line")
        try:
            return cls(
                strategy_dsl=str(meta["strategy_dsl"]),
                seed=int(meta["seed"]),
                submit_at=float(meta["submit_at"]),
                end_time=float(meta["end_time"]),
                events=events,
                requests=requests,
                digest=digest,
                outcomes=outcomes,
                mode=str(meta.get("mode", "sim")),
                strategy_doc=meta.get("strategy"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed recording meta: {exc}") from exc

    @classmethod
    def load(cls, path: str) -> "Recording":
        """Read a recording file from disk."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_jsonl(handle)
        except OSError as exc:
            raise ValidationError(f"cannot read recording {path!r}: {exc}") from exc
