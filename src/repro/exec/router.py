"""The execution router: one strategy artifact, three substrates.

The paper's portability claim made executable: the *same* DSL strategy
file runs unmodified against

- **SIM** — the in-process simulator (:class:`~repro.exec.sim.SimBackend`,
  wrapping the full :class:`~repro.bifrost.middleware.Bifrost` facade),
- **REPLAY** — a recorded run re-driven and diffed
  (:class:`~repro.exec.replay.ReplayBackend` + :func:`~repro.exec.replay.diff_replay`),
- **LIVE** — real asyncio HTTP servers on loopback sockets
  (:class:`~repro.exec.live.LiveBackend`).

Mode selection is layered: an explicit ``mode=`` argument wins, then the
strategy's own ``mode sim|replay|live`` DSL declaration, then SIM.  The
router never mutates the strategy — backends receive it verbatim, which
is the whole point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.bifrost.dsl import parse_strategy
from repro.bifrost.model import Strategy, StrategyOutcome
from repro.errors import ConfigurationError
from repro.exec.live import LiveBackend, LiveOptions, LiveRunResult
from repro.exec.recording import Recording
from repro.exec.replay import (
    ReplayBackend,
    ReplayDiff,
    ReplayRunResult,
    diff_replay,
)
from repro.exec.sim import SimBackend, SimRunResult
from repro.microservices.application import Application
from repro.traffic.workload import Request


class ExecutionMode(enum.Enum):
    """The three substrates a strategy can run against."""

    SIM = "sim"
    REPLAY = "replay"
    LIVE = "live"

    @classmethod
    def coerce(cls, value: "ExecutionMode | str") -> "ExecutionMode":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            raise ConfigurationError(
                f"unknown execution mode {value!r} "
                f"(expected one of {[m.value for m in cls]})"
            ) from None


@dataclass
class ExecutionReport:
    """Uniform result of one routed execution, whatever the substrate."""

    mode: ExecutionMode
    strategy: str
    outcome: StrategyOutcome
    state: str
    winner: str | None = None
    stable_after: dict[str, str] = field(default_factory=dict)
    requests: int = 0
    errors: int = 0
    sim_seconds: float = 0.0
    wall_seconds: float | None = None
    recording: Recording | None = None
    replay: ReplayDiff | None = None
    details: object = None

    @property
    def promoted(self) -> bool:
        return self.outcome is StrategyOutcome.COMPLETED

    @property
    def rolled_back(self) -> bool:
        return self.outcome is StrategyOutcome.ROLLED_BACK

    def describe(self) -> str:
        line = (
            f"[{self.mode.value}] {self.strategy}: {self.outcome.value} "
            f"({self.requests} requests, {self.errors} errors, "
            f"t={self.sim_seconds:.1f}s logical"
        )
        if self.wall_seconds is not None:
            line += f", {self.wall_seconds:.2f}s wall"
        line += ")"
        if self.winner:
            line += f" winner={self.winner}"
        return line


class ExecutionRouter:
    """Routes a strategy to its execution backend.

    Args:
        application: the application under experiment — either an
            :class:`Application` *factory* (preferred: every run gets a
            fresh world, so promotes don't leak between runs) or a
            single instance (reused verbatim; fine for one-shot use).
        seed: substrate seed, shared by all backends.
        sim_kwargs: extra keyword arguments for the SIM middleware
            (``durable=``, ``resilience=``, ``observer=``, ...).
        live_options: socket/timing knobs of the LIVE testbed.
    """

    def __init__(
        self,
        application: Application | Callable[[], Application],
        seed: int = 42,
        sim_kwargs: dict | None = None,
        live_options: LiveOptions | None = None,
    ) -> None:
        if isinstance(application, Application):
            self._factory: Callable[[], Application] = lambda: application
        else:
            self._factory = application
        self.seed = seed
        self.sim = SimBackend(self._factory, seed=seed, middleware_kwargs=sim_kwargs)
        self.replay = ReplayBackend(self._factory)
        self.live = LiveBackend(self._factory, seed=seed, options=live_options)

    def resolve_mode(
        self,
        strategy: Strategy | None,
        mode: ExecutionMode | str | None,
        recording: Recording | None,
    ) -> ExecutionMode:
        """Explicit argument > strategy's DSL ``mode`` > recording > SIM."""
        if mode is not None:
            return ExecutionMode.coerce(mode)
        if strategy is not None and strategy.execution_mode != "sim":
            return ExecutionMode.coerce(strategy.execution_mode)
        if recording is not None:
            return ExecutionMode.REPLAY
        return ExecutionMode.SIM

    def run(
        self,
        strategy: Strategy | str | None = None,
        *,
        workload: Iterable[Request] | None = None,
        until: float | None = None,
        mode: ExecutionMode | str | None = None,
        submit_at: float = 0.0,
        record: bool = False,
        recording: Recording | None = None,
    ) -> ExecutionReport:
        """Execute *strategy* on the selected substrate.

        SIM and LIVE need a *workload*; REPLAY needs a *recording* (its
        strategy defaults to the recorded one — pass a strategy too for
        a what-if replay).  ``record=True`` on SIM attaches the lossless
        recording tap and returns the :class:`Recording` on the report.
        """
        if isinstance(strategy, str):
            strategy = parse_strategy(strategy)
        resolved = self.resolve_mode(strategy, mode, recording)
        if resolved is ExecutionMode.REPLAY:
            if recording is None:
                raise ConfigurationError("replay mode needs a recording")
            result = self.replay.execute(recording, strategy=strategy)
            return self._replay_report(recording, result)
        if strategy is None:
            raise ConfigurationError(f"{resolved.value} mode needs a strategy")
        if workload is None:
            raise ConfigurationError(f"{resolved.value} mode needs a workload")
        if resolved is ExecutionMode.SIM:
            sim_result = self.sim.execute(
                strategy, workload, until=until, submit_at=submit_at, record=record
            )
            return self._sim_report(strategy, sim_result)
        if record:
            raise ConfigurationError(
                "recording is currently a SIM-mode feature; run the "
                "strategy under mode='sim' with record=True"
            )
        live_result = self.live.execute(
            strategy, workload, until=until, submit_at=submit_at
        )
        return self._live_report(strategy, live_result)

    # -- report assembly ---------------------------------------------------

    def _execution_of(self, executions, strategy_name: str):
        for execution in executions:
            if execution.strategy.name == strategy_name:
                return execution
        raise ConfigurationError(
            f"no execution found for strategy {strategy_name!r}"
        )

    def _stable_after(self, application: Application, strategy: Strategy) -> dict:
        return {
            service: application.service(service).stable_version
            for service in sorted(strategy.services)
        }

    def _sim_report(
        self, strategy: Strategy, result: SimRunResult
    ) -> ExecutionReport:
        execution = self._execution_of(result.executions, strategy.name)
        return ExecutionReport(
            mode=ExecutionMode.SIM,
            strategy=strategy.name,
            outcome=execution.outcome,
            state=execution.state,
            winner=execution.winner,
            stable_after=self._stable_after(
                result.middleware.application, strategy
            ),
            requests=len(result.outcomes),
            errors=sum(1 for o in result.outcomes if o.error),
            sim_seconds=result.middleware.simulation.now,
            recording=result.recording,
            details=result,
        )

    def _replay_report(
        self, recording: Recording, result: ReplayRunResult
    ) -> ExecutionReport:
        execution = self._execution_of(result.executions, result.strategy.name)
        return ExecutionReport(
            mode=ExecutionMode.REPLAY,
            strategy=result.strategy.name,
            outcome=execution.outcome,
            state=execution.state,
            winner=execution.winner,
            stable_after=self._stable_after(
                result.engine.application, result.strategy
            ),
            requests=result.requests,
            errors=sum(1 for r in recording.requests if r.error),
            sim_seconds=result.engine.simulation.now,
            replay=diff_replay(recording, result),
            details=result,
        )

    def _live_report(
        self, strategy: Strategy, result: LiveRunResult
    ) -> ExecutionReport:
        execution = self._execution_of(result.executions, strategy.name)
        return ExecutionReport(
            mode=ExecutionMode.LIVE,
            strategy=strategy.name,
            outcome=execution.outcome,
            state=execution.state,
            winner=execution.winner,
            stable_after=self._stable_after(result.engine.application, strategy),
            requests=result.requests,
            errors=result.errors,
            sim_seconds=result.engine.simulation.now,
            wall_seconds=result.wall_seconds,
            details=result,
        )
