"""LIVE backend: a real asyncio/HTTP microservice testbed.

One stdlib ``asyncio`` HTTP server per deployed *service version*, bound
to a loopback ephemeral port — no aiohttp, no third-party dependency.
Each server parses raw HTTP/1.1, sleeps its endpoint's modeled latency
(scaled by ``time_scale`` so a 300-logical-second canary fits a CI
budget), injects seeded errors, and issues its downstream calls over
real sockets *through the shared client-side router* — the very same
:class:`~repro.routing.proxy.VersionRouter` the Bifrost engine installs
experiment routes into, so sticky assignments and canary splits steer
actual TCP connections.

The engine runs in the same event loop on a logical clock derived from
wall time: requests are paced to their logical timestamps, every handler
records its observed (real!) latency into the shared metric store at
logical time, and due engine decisions (check ticks, deadlines,
rollout steps) fire between requests.  Promote/rollback therefore
happen exactly as in SIM — except the latency being judged came off a
socket, not a sampler.
"""

from __future__ import annotations

import asyncio
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.bifrost.engine import BifrostEngine, StrategyExecution
from repro.bifrost.model import Strategy
from repro.errors import ExecutionError
from repro.microservices.application import Application
from repro.microservices.service import EndpointSpec
from repro.obs.observer import Observer
from repro.routing.proxy import VersionRouter
from repro.simulation.clock import SimulationClock
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import SeededRng
from repro.telemetry.store import MetricStore
from repro.traffic.workload import Request

_CRLF = b"\r\n"


@dataclass(frozen=True)
class LiveOptions:
    """Tuning knobs of the live testbed.

    Attributes:
        time_scale: wall seconds per logical second.  0.02 runs a
            300-logical-second canary in ~6 wall seconds while keeping
            modeled latencies (tens of ms logical) around a wall
            millisecond — large enough for real socket round-trips to
            stay well-ordered, small enough for CI.
        host: bind address; loopback only by design.
        request_timeout_s: wall-clock timeout per client call; a timed
            out call counts as an error.
        max_wall_s: hard budget for the whole run; exceeding it raises
            :class:`~repro.errors.ExecutionError` (the CI smoke's 60 s
            ceiling sits above this).
        max_inflight: cap on concurrently issued end-user requests.
    """

    time_scale: float = 0.02
    host: str = "127.0.0.1"
    request_timeout_s: float = 10.0
    max_wall_s: float = 55.0
    max_inflight: int = 64


@dataclass
class LiveRunResult:
    """What one live execution produced."""

    engine: BifrostEngine
    store: MetricStore
    observer: Observer
    requests: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    ports: dict = field(default_factory=dict)

    @property
    def executions(self) -> list[StrategyExecution]:
        return self.engine.executions

    @property
    def provenance(self):
        """The live engine's decision-provenance graph (None when the
        observer's provenance fold was disabled)."""
        tracker = self.observer.provenance
        return None if tracker is None else tracker.graph()


class _LiveServer:
    """One HTTP server: one (service, version) deployment."""

    def __init__(
        self,
        cluster: "LiveCluster",
        service: str,
        version: str,
        endpoints: dict[str, EndpointSpec],
        rng: SeededRng,
    ) -> None:
        self.cluster = cluster
        self.service = service
        self.version = version
        self.endpoints = endpoints
        self.rng = rng
        self.port = 0
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.cluster.options.host, 0
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (_CRLF, b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            parts = request_line.decode("latin-1").split()
            endpoint = parts[1].lstrip("/") if len(parts) >= 2 else ""
            status, body = await self._serve(endpoint, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            status, body = 0, b""
        except Exception:  # a crashing handler answers 500, like any server
            status, body = 500, b'{"error":"internal"}'
        if status:
            payload = (
                f"HTTP/1.1 {status} {'OK' if status == 200 else 'ERR'}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"X-Service: {self.service}\r\n"
                f"X-Version: {self.version}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1") + body
            try:
                writer.write(payload)
                await writer.drain()
            except ConnectionError:
                pass
        writer.close()

    async def _serve(self, endpoint: str, headers: dict[str, str]) -> tuple[int, bytes]:
        spec = self.endpoints.get(endpoint)
        if spec is None:
            return 404, b'{"error":"no such endpoint"}'
        started_logical = self.cluster.logical_now()
        t0 = _time.perf_counter()
        latency_ms = spec.latency.sample(self.rng, load=1.0)
        await asyncio.sleep(
            latency_ms / 1000.0 * self.cluster.options.time_scale
        )
        error = spec.error_rate > 0.0 and self.rng.random() < spec.error_rate
        user = headers.get("x-user", "")
        group = headers.get("x-group", "")
        calls = [
            call
            for call in spec.calls
            if call.probability >= 1.0 or self.rng.random() < call.probability
        ]
        if calls:
            if spec.parallel_calls:
                statuses = await asyncio.gather(
                    *(
                        self.cluster.client_call(c.service, c.endpoint, user, group)
                        for c in calls
                    )
                )
            else:
                statuses = [
                    await self.cluster.client_call(c.service, c.endpoint, user, group)
                    for c in calls
                ]
            if any(s != 200 for s in statuses):
                error = True
        # Observed latency in *logical* milliseconds: real wall time on
        # the socket/handler path, unscaled back onto the model clock.
        duration_ms = (
            (_time.perf_counter() - t0) / self.cluster.options.time_scale * 1000.0
        )
        self.cluster.observe(
            self.service, self.version, started_logical, duration_ms, error
        )
        if error:
            return 500, b'{"error":"injected"}'
        return 200, (
            '{"service":"%s","version":"%s"}' % (self.service, self.version)
        ).encode("latin-1")


class LiveCluster:
    """All deployed service versions as live HTTP servers, plus the client router.

    The *client-side router* is the experiment control point: every call
    (end-user entry or downstream hop) resolves its target version via
    the shared :class:`VersionRouter` — honoring installed experiment
    routes, audience filters, and :class:`StickyAssigner` assignments —
    and falls back to the application's stable version when the service
    is unrouted.  Shadow versions receive fire-and-forget duplicate
    traffic, as in a dark launch.
    """

    def __init__(
        self,
        application: Application,
        router: VersionRouter,
        store: MetricStore,
        options: LiveOptions,
        seed: int = 42,
    ) -> None:
        self.application = application
        self.router = router
        self.store = store
        self.options = options
        self.servers: dict[tuple[str, str], _LiveServer] = {}
        self._rng = SeededRng(seed)
        self._t0 = _time.perf_counter()
        self._shadow_tasks: set[asyncio.Task] = set()

    def logical_now(self) -> float:
        """Wall time since cluster start, on the logical clock."""
        return (_time.perf_counter() - self._t0) / self.options.time_scale

    def reset_clock(self) -> None:
        self._t0 = _time.perf_counter()

    async def start(self) -> None:
        for service_name in self.application.service_names:
            service = self.application.service(service_name)
            for version_name in service.versions:
                version = service.get(version_name)
                server = _LiveServer(
                    self,
                    service_name,
                    version_name,
                    dict(version.endpoints),
                    self._rng.fork(f"{service_name}@{version_name}"),
                )
                await server.start()
                self.servers[(service_name, version_name)] = server

    async def stop(self) -> None:
        for task in tuple(self._shadow_tasks):
            task.cancel()
        for server in self.servers.values():
            await server.stop()

    def observe(
        self, service: str, version: str, start: float, duration_ms: float, error: bool
    ) -> None:
        """Record one handler observation — Monitor.observe_span's triple."""
        self.store.record(service, version, "response_time", start, duration_ms)
        self.store.record(service, version, "error", start, 1.0 if error else 0.0)
        self.store.record(service, version, "throughput", start, 1.0)

    def resolve(self, service: str, user_id: str, group: str) -> tuple[str, tuple[str, ...]]:
        """Pick the target version for one call via the shared router."""
        probe = Request(
            request_id="live",
            timestamp=self.logical_now(),
            user_id=user_id,
            group=group,
            entry=service,
        )
        decision = self.router.route(probe, service)
        version = decision.version or self.application.service(service).stable_version
        return version, tuple(decision.shadow_versions)

    async def client_call(
        self, service: str, endpoint: str, user_id: str, group: str
    ) -> int:
        """One routed HTTP call; returns the response status (0 = failed)."""
        version, shadows = self.resolve(service, user_id, group)
        for shadow in shadows:
            if (service, shadow) in self.servers:
                task = asyncio.ensure_future(
                    self._http_get(service, shadow, endpoint, user_id, group)
                )
                self._shadow_tasks.add(task)
                task.add_done_callback(self._shadow_tasks.discard)
        return await self._http_get(service, version, endpoint, user_id, group)

    async def _http_get(
        self, service: str, version: str, endpoint: str, user_id: str, group: str
    ) -> int:
        server = self.servers.get((service, version))
        if server is None:
            return 0
        try:
            return await asyncio.wait_for(
                self._http_get_inner(server, endpoint, user_id, group),
                timeout=self.options.request_timeout_s,
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            return 0
        except asyncio.CancelledError:
            raise

    async def _http_get_inner(
        self, server: _LiveServer, endpoint: str, user_id: str, group: str
    ) -> int:
        reader, writer = await asyncio.open_connection(
            self.options.host, server.port
        )
        try:
            writer.write(
                (
                    f"GET /{endpoint} HTTP/1.1\r\n"
                    f"Host: {server.service}\r\n"
                    f"X-User: {user_id}\r\n"
                    f"X-Group: {group}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split()
            status = int(parts[1]) if len(parts) >= 2 and parts[1].isdigit() else 0
            await reader.read()
            return status
        finally:
            writer.close()


class LiveBackend:
    """Drives a strategy end-to-end over real sockets."""

    mode = "live"

    def __init__(
        self,
        application_factory: Callable[[], Application],
        seed: int = 42,
        options: LiveOptions | None = None,
    ) -> None:
        self.application_factory = application_factory
        self.seed = seed
        self.options = options or LiveOptions()

    def execute(
        self,
        strategy: Strategy,
        workload: Iterable[Request],
        until: float | None = None,
        submit_at: float = 0.0,
    ) -> LiveRunResult:
        """Run *strategy* against the live cluster under *workload*."""
        return asyncio.run(self._run(strategy, workload, until, submit_at))

    async def _run(
        self,
        strategy: Strategy,
        workload: Iterable[Request],
        until: float | None,
        submit_at: float,
    ) -> LiveRunResult:
        options = self.options
        application = self.application_factory()
        clock = SimulationClock()
        simulation = SimulationEngine(clock)
        router = VersionRouter()
        store = MetricStore()
        observer = Observer(enabled=True)
        engine = BifrostEngine(
            simulation=simulation,
            application=application,
            router=router,
            store=store,
            observer=observer,
        )
        cluster = LiveCluster(application, router, store, options, seed=self.seed)
        result = LiveRunResult(engine=engine, store=store, observer=observer)
        requests = sorted(workload, key=lambda r: r.timestamp)
        wall_start = _time.perf_counter()

        def wall_elapsed() -> float:
            return _time.perf_counter() - wall_start

        def check_budget() -> None:
            if wall_elapsed() > options.max_wall_s:
                raise ExecutionError(
                    f"live run exceeded its {options.max_wall_s}s wall budget"
                )

        await cluster.start()
        result.ports = {
            f"{svc}@{ver}": server.port
            for (svc, ver), server in cluster.servers.items()
        }
        try:
            engine.submit(strategy, at=submit_at)
            cluster.reset_clock()
            wall_start = _time.perf_counter()
            pending: set[asyncio.Task] = set()

            async def issue(request: Request) -> None:
                service, _, endpoint = request.entry.partition(".")
                status = await cluster.client_call(
                    service, endpoint, request.user_id, request.group
                )
                result.requests += 1
                if status != 200:
                    result.errors += 1

            for request in requests:
                check_budget()
                target_wall = request.timestamp * options.time_scale
                delay = target_wall - wall_elapsed()
                if delay > 0:
                    await asyncio.sleep(delay)
                # Engine decisions due up to this arrival fire first —
                # the same interleaving contract as Bifrost.run.
                simulation.run_until(max(request.timestamp, simulation.now))
                task = asyncio.ensure_future(issue(request))
                pending.add(task)
                task.add_done_callback(pending.discard)
                while len(pending) >= options.max_inflight:
                    check_budget()
                    await asyncio.wait(
                        tuple(pending), return_when=asyncio.FIRST_COMPLETED
                    )
            # Let inflight requests land while wall time still maps to
            # logical time (their observations carry logical stamps).
            while pending:
                check_budget()
                await asyncio.wait(
                    tuple(pending), timeout=0.05, return_when=asyncio.ALL_COMPLETED
                )
                simulation.run_until(max(cluster.logical_now(), simulation.now))
            # Traffic is over: no further observations can arrive, so
            # the remaining engine decisions are pure clock-driven work —
            # fast-forward them instead of burning wall time (SIM does
            # the same instantaneous jump).
            horizon = until
            while engine.running_count():
                check_budget()
                next_time = simulation.queue.peek_time()
                if next_time is None:
                    break
                if horizon is not None and next_time > horizon:
                    break
                simulation.run_until(next_time)
            if horizon is not None:
                simulation.run_until(max(horizon, simulation.now))
        finally:
            await cluster.stop()
        result.wall_seconds = wall_elapsed()
        return result
