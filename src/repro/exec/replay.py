"""REPLAY backend: re-drive a recorded experiment and diff the outcome.

The replay rebuilds a fresh engine stack (clock, simulation queue,
router, metric store, observer) and re-presents the recording's request
stream *as observations*: for each recorded request, the simulation
advances to the original arrival timestamp (firing any engine decisions
due first, exactly like the scalar run loop) and the recorded spans'
metrics are fed into the store in their original order.  Because every
check evaluation reads nothing but the store, the replayed engine sees
byte-identical inputs at identical logical times — so a faithful replay
is *digest-equal* to the recording (:func:`~repro.exec.recording.run_digest`),
and :func:`diff_replay` reports any divergence outcome-by-outcome via
:func:`~repro.obs.timeline.diff_timeline_execution`.

Replaying a *modified* strategy against the same recorded traffic is the
what-if workflow: the diff then localizes exactly which checks and
transitions the modification changed.

Replays refuse truncated event streams (a bounded ring that evicted its
prefix before export) — re-driving a suffix would silently fabricate a
different experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bifrost.dsl import parse_strategy
from repro.bifrost.engine import BifrostEngine, StrategyExecution
from repro.bifrost.model import Strategy, strategy_from_dict
from repro.errors import ReplayError
from repro.exec.recording import Recording, run_digest
from repro.microservices.application import Application
from repro.obs.observer import Observer
from repro.obs.timeline import diff_timeline_execution, reconstruct_timelines
from repro.routing.proxy import VersionRouter
from repro.simulation.clock import SimulationClock
from repro.simulation.engine import SimulationEngine
from repro.telemetry.store import MetricStore


@dataclass
class ReplayRunResult:
    """What one replay produced: a fresh engine run on recorded inputs."""

    engine: BifrostEngine
    store: MetricStore
    observer: Observer
    strategy: Strategy
    requests: int
    digest: str

    @property
    def executions(self) -> list[StrategyExecution]:
        return self.engine.executions

    @property
    def provenance(self):
        """The replayed engine's decision-provenance graph.

        For a faithful replay this is digest-equal to the recording's
        :meth:`~repro.exec.recording.Recording.provenance` — the same
        fold over the same event stream.
        """
        tracker = self.observer.provenance
        return None if tracker is None else tracker.graph()


@dataclass
class ReplayDiff:
    """Outcome-by-outcome comparison of a replay against its recording.

    ``strategy_diffs`` maps each strategy name to the field-level
    differences between the *recorded* timeline (reconstructed purely
    from the recording's event stream) and the *replayed* engine record;
    an empty list means that strategy re-ran identically.  ``digest``
    equality additionally covers the full metric store, so
    :attr:`identical` certifies the replay end to end.
    """

    recorded_digest: str
    replayed_digest: str
    outcomes_recorded: dict[str, str] = field(default_factory=dict)
    outcomes_replayed: dict[str, str] = field(default_factory=dict)
    strategy_diffs: dict[str, list[str]] = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)

    @property
    def digest_match(self) -> bool:
        return bool(self.recorded_digest) and (
            self.recorded_digest == self.replayed_digest
        )

    @property
    def identical(self) -> bool:
        return (
            self.digest_match
            and not self.problems
            and all(not diffs for diffs in self.strategy_diffs.values())
        )

    def describe(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            "replay diff: "
            + ("IDENTICAL" if self.identical else "DIVERGED"),
            f"  digest: recorded={self.recorded_digest[:12]}… "
            f"replayed={self.replayed_digest[:12]}… "
            + ("(match)" if self.digest_match else "(MISMATCH)"),
        ]
        for name in sorted(set(self.outcomes_recorded) | set(self.outcomes_replayed)):
            rec = self.outcomes_recorded.get(name, "?")
            rep = self.outcomes_replayed.get(name, "?")
            marker = "==" if rec == rep else "!="
            lines.append(f"  outcome[{name}]: {rec} {marker} {rep}")
            for diff in self.strategy_diffs.get(name, ()):
                lines.append(f"    - {diff}")
        for problem in self.problems:
            lines.append(f"  ! {problem}")
        return "\n".join(lines)


class ReplayBackend:
    """Re-drives recordings against a fresh engine stack."""

    mode = "replay"

    def __init__(
        self,
        application_factory: Callable[[], Application],
    ) -> None:
        self.application_factory = application_factory

    def execute(
        self,
        recording: Recording,
        strategy: Strategy | None = None,
    ) -> ReplayRunResult:
        """Replay *recording*; *strategy* overrides the recorded one.

        Raises :class:`ReplayError` when the recording's event stream is
        truncated or carries no strategy definition.
        """
        sentinel = recording.truncated
        if sentinel is not None:
            dropped = sentinel.data.get("dropped", "?")
            raise ReplayError(
                f"recording's event stream is truncated ({dropped} events "
                "evicted before export); re-driving the surviving suffix "
                "would fabricate a different experiment"
            )
        if strategy is None:
            if recording.strategy_doc is not None:
                strategy = strategy_from_dict(recording.strategy_doc)
            elif recording.strategy_dsl.strip():
                strategy = parse_strategy(recording.strategy_dsl)
            else:
                raise ReplayError("recording carries no strategy definition")
        clock = SimulationClock()
        simulation = SimulationEngine(clock)
        router = VersionRouter()
        store = MetricStore()
        observer = Observer(enabled=True)
        engine = BifrostEngine(
            simulation=simulation,
            application=self.application_factory(),
            router=router,
            store=store,
            observer=observer,
        )
        engine.submit(strategy, at=recording.submit_at)
        for request in recording.requests:
            simulation.run_until(max(request.timestamp, simulation.now))
            for span in request.spans:
                # Mirror Monitor.observe_span exactly: three samples per
                # span, in span order, at the span's start time.
                store.record(
                    span.service,
                    span.version,
                    "response_time",
                    span.start,
                    span.duration_ms,
                )
                store.record(
                    span.service,
                    span.version,
                    "error",
                    span.start,
                    1.0 if span.error else 0.0,
                )
                store.record(
                    span.service, span.version, "throughput", span.start, 1.0
                )
        simulation.run_until(max(recording.end_time, simulation.now))
        return ReplayRunResult(
            engine=engine,
            store=store,
            observer=observer,
            strategy=strategy,
            requests=len(recording.requests),
            digest=run_digest(store, engine.executions),
        )


def diff_replay(recording: Recording, result: ReplayRunResult) -> ReplayDiff:
    """Compare a replay against its recording, outcome by outcome.

    Reconstructs the recorded timelines from the recording's event
    stream (refusing a truncated one), diffs each replayed execution
    against its recorded timeline field by field, and compares the run
    digests — full store contents, transitions, check log, terminals.
    """
    sentinel = recording.truncated
    if sentinel is not None:
        raise ReplayError(
            "cannot diff against a truncated recording "
            f"({sentinel.data.get('dropped', '?')} events evicted)"
        )
    timelines = reconstruct_timelines(recording.events)
    diff = ReplayDiff(
        recorded_digest=recording.digest,
        replayed_digest=result.digest,
        outcomes_recorded=dict(recording.outcomes),
        outcomes_replayed={
            e.strategy.name: e.outcome.value for e in result.executions
        },
    )
    replayed_by_name = {e.strategy.name: e for e in result.executions}
    for name, timeline in sorted(timelines.items()):
        execution = replayed_by_name.get(name)
        if execution is None:
            diff.problems.append(f"recorded strategy {name!r} was not replayed")
            continue
        diff.strategy_diffs[name] = diff_timeline_execution(timeline, execution)
    for name in sorted(replayed_by_name):
        if name not in timelines:
            diff.problems.append(
                f"replayed strategy {name!r} is absent from the recording"
            )
    if not recording.digest:
        diff.problems.append("recording carries no digest")
    return diff

