"""SIM backend: the in-process simulator behind the execution router.

Thin composition over the :class:`~repro.bifrost.middleware.Bifrost`
facade (so everything the simulator supports — fault campaigns,
durability, the PR-8 batch kernel — stays available) plus the recording
tap: when asked to record, a lossless event subscription and per-request
span extraction produce a :class:`~repro.exec.recording.Recording` the
REPLAY backend can re-drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.bifrost.middleware import Bifrost
from repro.bifrost.model import Strategy
from repro.exec.recording import (
    RecordedRequest,
    RecordedSpan,
    Recording,
    run_digest,
)
from repro.microservices.application import Application
from repro.microservices.runtime import RequestOutcome
from repro.obs.events import Event
from repro.obs.observer import Observer
from repro.traffic.workload import Request


@dataclass
class SimRunResult:
    """What one SIM execution produced."""

    middleware: Bifrost
    outcomes: list[RequestOutcome]
    recording: Recording | None = None

    @property
    def executions(self):
        return self.middleware.engine.executions

    @property
    def store(self):
        return self.middleware.store

    @property
    def provenance(self):
        """The engine-side decision-provenance graph (None when the run
        was dark or the observer's provenance fold was disabled)."""
        tracker = self.middleware.observer.provenance
        return None if tracker is None else tracker.graph()


def _record_outcome(outcome: RequestOutcome) -> RecordedRequest:
    request = outcome.request
    return RecordedRequest(
        timestamp=request.timestamp,
        user_id=request.user_id,
        group=request.group,
        entry=request.entry,
        headers=dict(request.headers),
        spans=tuple(
            RecordedSpan(
                service=span.service,
                version=span.version,
                start=span.start,
                duration_ms=span.duration_ms,
                error=span.error,
            )
            for span in outcome.trace.spans
        ),
        duration_ms=outcome.duration_ms,
        error=outcome.error,
    )


class SimBackend:
    """Runs a strategy against a fresh simulated application."""

    mode = "sim"

    def __init__(
        self,
        application_factory: Callable[[], Application],
        seed: int = 42,
        middleware_kwargs: dict | None = None,
    ) -> None:
        self.application_factory = application_factory
        self.seed = seed
        self.middleware_kwargs = dict(middleware_kwargs or {})

    def execute(
        self,
        strategy: Strategy,
        workload: Iterable[Request],
        until: float | None = None,
        submit_at: float = 0.0,
        record: bool = False,
    ) -> SimRunResult:
        """Submit *strategy*, replay *workload*, optionally record.

        Recording attaches a lossless subscriber to the observer's event
        ring *before* anything runs, so the recording's event stream is
        complete even when the bounded ring later evicts its prefix.
        """
        kwargs = dict(self.middleware_kwargs)
        captured: list[Event] = []
        observer = kwargs.pop("observer", None)
        if record and observer is None:
            observer = Observer(enabled=True)
        middleware = Bifrost(
            self.application_factory(),
            seed=self.seed,
            observer=observer,
            **kwargs,
        )
        if record:
            middleware.observer.events.subscribe(captured.append)
        # Submit through the engine, not the facade: the router resolved
        # the mode deliberately (an explicit mode= argument overrides the
        # strategy's DSL pin), so the facade's mode guard must not veto.
        middleware.engine.submit(strategy, at=submit_at)
        outcomes = middleware.run(workload, until=until)
        recording: Recording | None = None
        if record:
            from repro.bifrost.dsl import strategy_to_dsl
            from repro.bifrost.model import strategy_to_dict

            recording = Recording(
                strategy_doc=strategy_to_dict(strategy),
                strategy_dsl=strategy_to_dsl(strategy),
                seed=self.seed,
                submit_at=submit_at,
                end_time=middleware.simulation.now,
                events=captured,
                requests=[_record_outcome(outcome) for outcome in outcomes],
                digest=run_digest(middleware.store, middleware.engine.executions),
                outcomes={
                    e.strategy.name: e.outcome.value
                    for e in middleware.engine.executions
                },
                mode=self.mode,
            )
        return SimRunResult(
            middleware=middleware, outcomes=outcomes, recording=recording
        )
