"""Glass-box observability for the experimentation machinery itself.

:mod:`repro.telemetry` watches the *system under experiment*;
:mod:`repro.obs` watches the *experimenter*: a structured
:class:`EventLog` of typed events with monotonic sequence numbers and
logical timestamps, a labeled :class:`MetricRegistry`, exporters
(Prometheus-style exposition, streaming JSONL), timelines reconstructed
purely from events, and an ASCII self-observability dashboard.  The
whole layer collapses to near-zero cost behind :data:`NULL_OBSERVER`
when disabled.  See ``docs/OBSERVABILITY.md`` for the event taxonomy.
"""

from repro.obs.events import (
    ENGINE_CHECK,
    ENGINE_FINALIZED,
    ENGINE_PHASE_ENTERED,
    ENGINE_ROLLOUT,
    ENGINE_ROUTE,
    ENGINE_SUBMITTED,
    ENGINE_TRANSITION,
    ENGINE_WINNER,
    FENRIR_GENERATION,
    FENRIR_SCHEDULE,
    FENRIR_SEARCH_COMPLETED,
    JOURNAL_APPEND,
    JOURNAL_COMPACT,
    JOURNAL_SNAPSHOT,
    OBS_TRUNCATED,
    RECOVERY_CRASH,
    RECOVERY_REFUSED,
    RECOVERY_REPLAYED,
    RECOVERY_RESTART,
    TIMELINE_KINDS,
    TOPOLOGY_HEALTH,
    Event,
    EventLog,
    TruncatedStreamWarning,
    event_from_dict,
    is_truncation,
    load_jsonl,
    stream_truncation,
)
from repro.obs.registry import (
    HISTOGRAM_QUANTILES,
    MetricRegistry,
    MetricSample,
    NoopInstrument,
    NOOP_INSTRUMENT,
    labels_key,
)
from repro.obs.observer import NULL_OBSERVER, NULL_TIMER, NullTimer, Observer, Timer
from repro.obs.exporters import (
    JsonlEventSink,
    format_sample,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.timeline import (
    CheckPoint,
    ExperimentTimeline,
    PhaseSpan,
    diff_timeline_execution,
    reconstruct_timelines,
    render_ascii,
    render_dot,
    timeline_matches_execution,
)
from repro.obs.dashboard import glass_box_panel

__all__ = [
    "ENGINE_CHECK",
    "ENGINE_FINALIZED",
    "ENGINE_PHASE_ENTERED",
    "ENGINE_ROLLOUT",
    "ENGINE_ROUTE",
    "ENGINE_SUBMITTED",
    "ENGINE_TRANSITION",
    "ENGINE_WINNER",
    "FENRIR_GENERATION",
    "FENRIR_SCHEDULE",
    "FENRIR_SEARCH_COMPLETED",
    "JOURNAL_APPEND",
    "JOURNAL_COMPACT",
    "JOURNAL_SNAPSHOT",
    "OBS_TRUNCATED",
    "RECOVERY_CRASH",
    "RECOVERY_REFUSED",
    "RECOVERY_REPLAYED",
    "RECOVERY_RESTART",
    "TIMELINE_KINDS",
    "TOPOLOGY_HEALTH",
    "Event",
    "EventLog",
    "TruncatedStreamWarning",
    "event_from_dict",
    "is_truncation",
    "load_jsonl",
    "stream_truncation",
    "HISTOGRAM_QUANTILES",
    "MetricRegistry",
    "MetricSample",
    "NoopInstrument",
    "NOOP_INSTRUMENT",
    "labels_key",
    "NULL_OBSERVER",
    "NULL_TIMER",
    "NullTimer",
    "Observer",
    "Timer",
    "JsonlEventSink",
    "format_sample",
    "render_prometheus",
    "sanitize_metric_name",
    "CheckPoint",
    "ExperimentTimeline",
    "PhaseSpan",
    "diff_timeline_execution",
    "reconstruct_timelines",
    "render_ascii",
    "render_dot",
    "timeline_matches_execution",
    "glass_box_panel",
]
