"""Decision provenance: every engine verdict explains itself.

A Bifrost outcome (promote / rollback / inconclusive) used to be a bare
enum; the evidence behind it — which metric windows, how many samples,
which check evaluations, which faults and alerts were active — was
scattered across the event log.  This module turns that log into a
causal DAG:

* every :data:`~repro.obs.events.ENGINE_CHECK` evaluation becomes an
  :class:`Evidence` record (metric family, window bounds, sample count,
  aggregate value, reference, margin, outcome);
* every state transition becomes a :class:`Decision` node linking the
  evidence records of the current phase stay, the alerts and transient
  faults active at decision time, and the triggering transition event's
  sequence number;
* :data:`~repro.obs.events.ALERT_FIRED` / ``alert.resolved`` pairs
  become :class:`AlertSpan` intervals.

The same fold runs in two places.  The engine feeds each event it emits
into its observer's :class:`ProvenanceTracker` the moment it is emitted,
so the engine-side graph is always live; :func:`build_provenance` runs
an identical fresh fold over nothing but an exported event stream.  The
two graphs are equal *by construction* — the property suite pins the
remaining risk, export → JSONL → load fidelity, across randomized
topologies and across REPLAY of a SIM recording.

:func:`render_decision_report` answers "why did this canary roll back?"
in one call: the terminal decision, each linked evidence record with its
observed-vs-reference comparison and margin, and the alerts/faults that
were live — as ASCII, graphviz dot, or JSONL.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ValidationError
from repro.obs.events import (
    ALERT_FIRED,
    ALERT_RESOLVED,
    DECISION_RECORDED,
    ENGINE_CHECK,
    ENGINE_FINALIZED,
    ENGINE_PHASE_ENTERED,
    ENGINE_SUBMITTED,
    ENGINE_WINNER,
    Event,
    is_truncation,
)


def evidence_margin(
    operator: str, observed: float | None, reference: float | None
) -> float | None:
    """Signed headroom of one comparison: positive means passing.

    For ``<`` / ``<=`` checks the margin is ``reference - observed``
    (how far below the bound the observation sits); for ``>`` / ``>=``
    it is ``observed - reference``.  None when either side is missing
    (inconclusive evaluations carry no margin).
    """
    if observed is None or reference is None:
        return None
    if operator in ("<", "<="):
        return reference - observed
    return observed - reference


@dataclass(frozen=True)
class Evidence:
    """One check evaluation, self-describing enough to audit alone.

    ``seq`` is the underlying :data:`ENGINE_CHECK` event's sequence
    number — the stable identity :class:`Decision` nodes link to.
    """

    seq: int
    time: float
    strategy: str
    phase: str
    check: str
    service: str
    version: str
    metric: str
    aggregation: str
    operator: str
    window_start: float
    window_end: float
    samples: int | None
    observed: float | None
    reference: float | None
    margin: float | None
    outcome: str

    @property
    def failing(self) -> bool:
        """Whether this evaluation failed its comparison."""
        return self.outcome == "fail"

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "time": self.time,
            "strategy": self.strategy,
            "phase": self.phase,
            "check": self.check,
            "service": self.service,
            "version": self.version,
            "metric": self.metric,
            "aggregation": self.aggregation,
            "operator": self.operator,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "samples": self.samples,
            "observed": self.observed,
            "reference": self.reference,
            "margin": self.margin,
            "outcome": self.outcome,
        }

    def describe(self) -> str:
        """One audit line: what was measured against what, and how close."""
        observed = "n/a" if self.observed is None else f"{self.observed:.4g}"
        reference = "n/a" if self.reference is None else f"{self.reference:.4g}"
        margin = "" if self.margin is None else f" margin={self.margin:+.4g}"
        samples = "?" if self.samples is None else str(self.samples)
        return (
            f"[e{self.seq}] {self.check}: {self.outcome} — "
            f"{self.aggregation}({self.service}@{self.version}/{self.metric}) "
            f"over [{self.window_start:.1f}, {self.window_end:.1f})s "
            f"n={samples} = {observed} {self.operator} {reference}{margin}"
        )


@dataclass(frozen=True)
class Decision:
    """One state transition plus everything that caused it.

    ``evidence`` holds the seqs of the :class:`Evidence` records the
    deciding phase stay produced (latest evaluation per check);
    ``alerts`` / ``faults`` name the burn-rate rules firing and the
    transient faults whose windows covered the decision time.
    ``transition_seq`` is the :data:`~repro.obs.events.ENGINE_TRANSITION`
    event this decision annotates; ``seq`` is the decision event's own.
    """

    seq: int
    time: float
    strategy: str
    source: str
    target: str
    trigger: str
    action: str
    transition_seq: int | None
    evidence: tuple[int, ...] = ()
    alerts: tuple[str, ...] = ()
    faults: tuple[str, ...] = ()
    terminal: bool = False

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "time": self.time,
            "strategy": self.strategy,
            "source": self.source,
            "target": self.target,
            "trigger": self.trigger,
            "action": self.action,
            "transition_seq": self.transition_seq,
            "evidence": list(self.evidence),
            "alerts": list(self.alerts),
            "faults": list(self.faults),
            "terminal": self.terminal,
        }


@dataclass
class AlertSpan:
    """One firing interval of one burn-rate rule."""

    rule: str
    fired_at: float
    fired_seq: int
    burn: float | None = None
    resolved_at: float | None = None
    resolved_seq: int | None = None

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "fired_at": self.fired_at,
            "fired_seq": self.fired_seq,
            "burn": self.burn,
            "resolved_at": self.resolved_at,
            "resolved_seq": self.resolved_seq,
        }


@dataclass
class StrategyProvenance:
    """The causal record of one strategy execution."""

    strategy: str
    submitted_at: float | None = None
    evidence: dict[int, Evidence] = field(default_factory=dict)
    decisions: list[Decision] = field(default_factory=list)
    winner: str | None = None
    terminal: str | None = None
    outcome: str | None = None
    promoted: str | None = None
    finished_at: float | None = None

    def terminal_decision(self) -> Decision | None:
        """The decision that ended the execution (None while running)."""
        for decision in reversed(self.decisions):
            if decision.terminal:
                return decision
        return None

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "submitted_at": self.submitted_at,
            "evidence": [
                self.evidence[seq].as_dict() for seq in sorted(self.evidence)
            ],
            "decisions": [decision.as_dict() for decision in self.decisions],
            "winner": self.winner,
            "terminal": self.terminal,
            "outcome": self.outcome,
            "promoted": self.promoted,
            "finished_at": self.finished_at,
        }


@dataclass
class ProvenanceGraph:
    """Every strategy's causal record plus the alert timeline."""

    strategies: dict[str, StrategyProvenance] = field(default_factory=dict)
    alerts: list[AlertSpan] = field(default_factory=list)

    def strategy(self, name: str) -> StrategyProvenance:
        """Look up one strategy's provenance (KeyError when unknown)."""
        return self.strategies[name]

    def evidence_for(self, decision: Decision) -> list[Evidence]:
        """Resolve a decision's evidence links to the records themselves.

        Links whose evidence record is unknown (e.g. folded from a
        truncated stream) are silently skipped — the decision still
        carries the seq for manual archaeology.
        """
        pool = self.strategies.get(decision.strategy)
        if pool is None:
            return []
        return [
            pool.evidence[seq]
            for seq in decision.evidence
            if seq in pool.evidence
        ]

    def as_dict(self) -> dict:
        return {
            "strategies": [
                self.strategies[name].as_dict()
                for name in sorted(self.strategies)
            ],
            "alerts": [span.as_dict() for span in self.alerts],
        }

    def digest(self) -> str:
        """Content digest of the canonical JSON form."""
        canonical = json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def evidence_from_event(event: Event) -> Evidence:
    """Build one :class:`Evidence` record from an ENGINE_CHECK event."""
    data = event.data
    samples = data.get("samples")
    return Evidence(
        seq=event.seq,
        time=event.time,
        strategy=str(data.get("strategy", "")),
        phase=str(data.get("phase", "")),
        check=str(data.get("check", "")),
        service=str(data.get("service", "")),
        version=str(data.get("version", "")),
        metric=str(data.get("metric", "")),
        aggregation=str(data.get("aggregation", "")),
        operator=str(data.get("operator", "")),
        window_start=float(data.get("window_start", event.time)),
        window_end=event.time,
        samples=None if samples is None else int(samples),
        observed=data.get("observed"),
        reference=data.get("reference"),
        margin=data.get("margin"),
        outcome=str(data.get("outcome", "")),
    )


def decision_from_event(event: Event) -> Decision:
    """Build one :class:`Decision` node from a DECISION_RECORDED event."""
    data = event.data
    transition_seq = data.get("transition_seq")
    return Decision(
        seq=event.seq,
        time=event.time,
        strategy=str(data.get("strategy", "")),
        source=str(data.get("source", "")),
        target=str(data.get("target", "")),
        trigger=str(data.get("trigger", "")),
        action=str(data.get("action", "")),
        transition_seq=None if transition_seq is None else int(transition_seq),
        evidence=tuple(int(seq) for seq in data.get("evidence", ())),
        alerts=tuple(str(name) for name in data.get("alerts", ())),
        faults=tuple(str(name) for name in data.get("faults", ())),
        terminal=bool(data.get("terminal", False)),
    )


class ProvenanceTracker:
    """Folds events into a :class:`ProvenanceGraph`, one at a time.

    The engine holds one per observer and feeds every event it emits;
    :func:`build_provenance` runs the identical fold over an exported
    stream.  Besides the graph, the tracker maintains the *current phase
    stay* index — the latest evidence seq per check since the last phase
    entry — which is what the engine consults (via
    :meth:`stay_evidence`) to link a decision to its evidence.
    """

    def __init__(self) -> None:
        self._strategies: dict[str, StrategyProvenance] = {}
        self._alerts: list[AlertSpan] = []
        self._open_alerts: dict[str, AlertSpan] = {}
        self._stay: dict[str, dict[str, int]] = {}

    def _strategy(self, name: str) -> StrategyProvenance:
        record = self._strategies.get(name)
        if record is None:
            record = StrategyProvenance(strategy=name)
            self._strategies[name] = record
        return record

    def record(self, event: Event) -> None:
        """Fold one event into the graph (non-provenance kinds ignored)."""
        kind = event.kind
        data = event.data
        if kind == ENGINE_CHECK:
            evidence = evidence_from_event(event)
            record = self._strategy(evidence.strategy)
            record.evidence[evidence.seq] = evidence
            self._stay.setdefault(evidence.strategy, {})[
                evidence.check
            ] = evidence.seq
        elif kind == DECISION_RECORDED:
            decision = decision_from_event(event)
            self._strategy(decision.strategy).decisions.append(decision)
        elif kind == ENGINE_PHASE_ENTERED:
            name = str(data.get("strategy", ""))
            self._strategy(name)
            self._stay[name] = {}
        elif kind == ENGINE_SUBMITTED:
            record = self._strategy(str(data.get("strategy", "")))
            record.submitted_at = float(data.get("start", event.time))
        elif kind == ENGINE_WINNER:
            record = self._strategy(str(data.get("strategy", "")))
            record.winner = str(data.get("version"))
        elif kind == ENGINE_FINALIZED:
            record = self._strategy(str(data.get("strategy", "")))
            record.terminal = str(data.get("terminal", ""))
            record.outcome = str(data.get("outcome", ""))
            record.promoted = data.get("promoted")
            record.finished_at = event.time
        elif kind == ALERT_FIRED:
            rule = str(data.get("rule", ""))
            span = AlertSpan(
                rule=rule,
                fired_at=event.time,
                fired_seq=event.seq,
                burn=data.get("burn"),
            )
            self._alerts.append(span)
            self._open_alerts[rule] = span
        elif kind == ALERT_RESOLVED:
            rule = str(data.get("rule", ""))
            span = self._open_alerts.pop(rule, None)
            if span is not None:
                span.resolved_at = event.time
                span.resolved_seq = event.seq

    def stay_evidence(self, strategy: str) -> tuple[int, ...]:
        """Evidence seqs of the current phase stay (latest per check)."""
        return tuple(sorted(self._stay.get(strategy, {}).values()))

    def graph(self) -> ProvenanceGraph:
        """The graph folded so far (a live view, not a copy)."""
        return ProvenanceGraph(
            strategies=self._strategies, alerts=self._alerts
        )


def build_provenance(
    events: Iterable[Event], *, allow_truncated: bool = False
) -> ProvenanceGraph:
    """Reconstruct the provenance graph from an event stream alone.

    Runs the same fold the engine runs live, so for a lossless export
    the result equals the engine-side graph exactly (digest-equal).  A
    stream carrying an :data:`~repro.obs.events.OBS_TRUNCATED` sentinel
    is refused — a DAG folded from a suffix would silently drop evidence
    decisions still link to — unless ``allow_truncated=True``.
    """
    tracker = ProvenanceTracker()
    for event in events:
        if is_truncation(event):
            if not allow_truncated:
                dropped = event.data.get("dropped", "?")
                raise ValidationError(
                    f"refusing to build provenance from a truncated event "
                    f"stream ({dropped} events evicted before export); pass "
                    "allow_truncated=True to fold the surviving tail anyway"
                )
            continue
        tracker.record(event)
    return tracker.graph()


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

REPORT_FORMATS = ("ascii", "dot", "jsonl")


def render_decision_report(
    graph: ProvenanceGraph, strategy: str, fmt: str = "ascii"
) -> str:
    """Answer "why did this strategy end the way it did?" in one call.

    *fmt* selects ``ascii`` (terminal audit trail), ``dot`` (graphviz
    DAG of evidence → decision edges), or ``jsonl`` (one machine-
    readable line per node, for pipelines like
    :func:`repro.fenrir.reevaluation.build_reevaluation_from_decisions`).
    """
    if fmt not in REPORT_FORMATS:
        raise ValidationError(
            f"unknown report format {fmt!r}; expected one of {REPORT_FORMATS}"
        )
    record = graph.strategies.get(strategy)
    if record is None:
        raise ValidationError(f"no provenance recorded for strategy {strategy!r}")
    if fmt == "jsonl":
        return _render_jsonl(graph, record)
    if fmt == "dot":
        return _render_dot(graph, record)
    return _render_ascii(graph, record)


def _render_ascii(graph: ProvenanceGraph, record: StrategyProvenance) -> str:
    verdict = record.outcome or "running"
    lines = [f"strategy {record.strategy} — {verdict}"]
    if record.finished_at is not None:
        lines[0] += f" at {record.finished_at:.1f}s"
    if record.winner is not None:
        lines.append(f"  winner: {record.winner}")
    if record.promoted:
        lines.append(f"  promoted: {record.promoted}")
    for decision in record.decisions:
        marker = "decision*" if decision.terminal else "decision"
        lines.append(
            f"  [d{decision.seq}] {marker} @ {decision.time:.1f}s: "
            f"{decision.source} --{decision.trigger}--> {decision.target} "
            f"({decision.action})"
        )
        evidence = graph.evidence_for(decision)
        for item in evidence:
            flag = "  !! " if item.failing else "     "
            lines.append(flag + item.describe())
        missing = len(decision.evidence) - len(evidence)
        if missing:
            lines.append(f"     ({missing} evidence records not retained)")
        if decision.alerts:
            lines.append(f"     alerts firing: {', '.join(decision.alerts)}")
        if decision.faults:
            lines.append(f"     faults active: {', '.join(decision.faults)}")
    return "\n".join(lines)


def _render_dot(graph: ProvenanceGraph, record: StrategyProvenance) -> str:
    lines = [
        f'digraph "{record.strategy}-provenance" {{',
        "  rankdir=LR;",
    ]
    for decision in record.decisions:
        shape = "doubleoctagon" if decision.terminal else "octagon"
        lines.append(
            f'  "d{decision.seq}" [shape={shape}, '
            f'label="{decision.source} -> {decision.target}\\n'
            f'{decision.trigger}/{decision.action}\\n@{decision.time:.1f}s"];'
        )
        for item in graph.evidence_for(decision):
            color = "red" if item.failing else "black"
            lines.append(
                f'  "e{item.seq}" [shape=box, color={color}, '
                f'label="{item.check}\\n{item.outcome}"];'
            )
            lines.append(f'  "e{item.seq}" -> "d{decision.seq}";')
        for rule in decision.alerts:
            lines.append(f'  "alert:{rule}" [shape=diamond];')
            lines.append(f'  "alert:{rule}" -> "d{decision.seq}";')
        for fault in decision.faults:
            lines.append(f'  "fault:{fault}" [shape=trapezium];')
            lines.append(f'  "fault:{fault}" -> "d{decision.seq}";')
    lines.append("}")
    return "\n".join(lines)


def _render_jsonl(graph: ProvenanceGraph, record: StrategyProvenance) -> str:
    def dump(doc: dict) -> str:
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    lines = [
        dump(
            {
                "type": "strategy",
                "strategy": record.strategy,
                "outcome": record.outcome,
                "terminal": record.terminal,
                "winner": record.winner,
                "promoted": record.promoted,
                "finished_at": record.finished_at,
            }
        )
    ]
    for seq in sorted(record.evidence):
        lines.append(dump({"type": "evidence", **record.evidence[seq].as_dict()}))
    for decision in record.decisions:
        lines.append(dump({"type": "decision", **decision.as_dict()}))
    return "\n".join(lines)


__all__ = [
    "AlertSpan",
    "Decision",
    "Evidence",
    "ProvenanceGraph",
    "ProvenanceTracker",
    "REPORT_FORMATS",
    "StrategyProvenance",
    "build_provenance",
    "decision_from_event",
    "evidence_from_event",
    "evidence_margin",
    "render_decision_report",
]
