"""Self-observability dashboard: the experimenter watching itself.

:func:`glass_box_panel` renders one ASCII panel summarizing everything
the :class:`~repro.obs.observer.Observer` has captured — event volume by
kind, ring pressure, the hottest registry metrics, the most recent
events, and a one-liner per reconstructed experiment timeline.  It is
the "dashboard about the dashboard-maker": the same machinery that
judges service health reporting on its own behavior.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.registry import COUNTER, GAUGE, HISTOGRAM
from repro.obs.timeline import ExperimentTimeline, reconstruct_timelines

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observer
    from repro.telemetry.store import MetricStore


def _rule(title: str, width: int) -> str:
    body = f"== {title} "
    return body + "=" * max(0, width - len(body))


def _timeline_line(timeline: ExperimentTimeline) -> str:
    state = timeline.outcome or ("running" if timeline.phases else "submitted")
    checks = len(timeline.check_points)
    parts = [
        f"{timeline.strategy:<24s} {state:<10s}",
        f"phases={len(timeline.phases)}",
        f"checks={checks}",
    ]
    if timeline.winner is not None:
        parts.append(f"winner={timeline.winner}")
    if timeline.finished_at is not None:
        parts.append(f"t={timeline.finished_at:.1f}s")
    return "  " + " ".join(parts)


def glass_box_panel(
    observer: "Observer",
    store: "MetricStore | None" = None,
    width: int = 72,
    tail: int = 5,
) -> str:
    """Render the observer's state as one multi-section ASCII panel.

    Sections: event totals and per-kind counts, registry metric families
    (counters/gauges with values, histogram families with child counts),
    optionally the application :class:`~repro.telemetry.store.MetricStore`
    series count, the last *tail* events, and per-strategy timeline
    summaries reconstructed from the retained event window.
    """
    log = observer.events
    lines = [_rule("glass box", width)]
    if not observer.enabled:
        lines.append("  observability disabled (null observer)")
        return "\n".join(lines)

    lines.append(
        f"  events: {log.appended} appended, {len(log)} retained, "
        f"{log.dropped} dropped (capacity {log.capacity})"
    )
    counts = log.counts_by_kind()
    for kind in sorted(counts):
        lines.append(f"    {kind:<28s} {counts[kind]}")

    lines.append(_rule("metrics", width))
    samples = observer.metrics.collect()
    scalar = [s for s in samples if s.kind in (COUNTER, GAUGE)]
    for sample in scalar:
        labels = ",".join(f"{k}={v}" for k, v in sample.labels)
        label_part = f"{{{labels}}}" if labels else ""
        lines.append(f"    {sample.name}{label_part} = {sample.value:g}")
    histogram_counts = [
        s for s in samples if s.kind == HISTOGRAM and s.name.endswith("_count")
    ]
    for sample in histogram_counts:
        labels = ",".join(f"{k}={v}" for k, v in sample.labels)
        label_part = f"{{{labels}}}" if labels else ""
        lines.append(
            f"    {sample.name}{label_part} = {sample.value:g} observations"
        )
    if not samples:
        lines.append("    (no metrics recorded)")
    if store is not None:
        lines.append(f"    application store: {len(store.keys())} series")

    recent = log.tail(tail)
    if recent:
        lines.append(_rule("recent events", width))
        for event in recent:
            lines.append("  " + event.describe())

    # A ring that evicted events holds only a suffix of the run; fold
    # the export-shaped stream (sentinel first) so the panel says so
    # instead of passing a partial history off as the whole story.
    stream = list(log)
    if log.dropped:
        stream.insert(0, log.truncation_sentinel())
    timelines = reconstruct_timelines(stream, allow_truncated=True)
    if timelines:
        lines.append(_rule("experiments", width))
        dropped = max(t.truncated_dropped for t in timelines.values())
        if dropped:
            lines.append(f"  [TRUNCATED: {dropped} events dropped]")
        for name in sorted(timelines):
            lines.append(_timeline_line(timelines[name]))
    lines.append("=" * width)
    return "\n".join(lines)
