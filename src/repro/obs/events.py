"""The structured event log at the heart of the glass-box layer.

Every instrumented subsystem appends typed :class:`Event` records to one
shared :class:`EventLog`: Bifrost's state-machine transitions and check
evaluations, journal appends and recovery replays, Fenrir's
per-generation search progress, and the streaming topology pipeline's
health publications.  Events carry a *monotonic sequence number* (total
order of emission, never reused) and a *logical timestamp* whose unit is
domain-specific — simulated seconds for Bifrost and topology events,
fitness evaluations consumed for Fenrir events — so replaying the log
reconstructs each subsystem's history on its own clock.

Retention is a bounded ring: the log keeps the most recent *capacity*
events and counts what it sheds (:attr:`EventLog.dropped`), so an
always-on observer never grows without bound.  Consumers either
:meth:`~EventLog.replay` the retained window, :meth:`~EventLog.subscribe`
to the live tail, or export everything as JSONL for offline analysis
(:meth:`~EventLog.export_jsonl`, or the streaming
:class:`~repro.obs.exporters.JsonlEventSink`).
"""

from __future__ import annotations

import json
import warnings
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import IO, Callable, Iterable, Iterator, Mapping

from repro.errors import ValidationError


class TruncatedStreamWarning(UserWarning):
    """An exported event stream carries a truncation sentinel.

    Raised as a warning by :func:`load_jsonl` (default policy) when the
    stream it decodes starts with an :data:`OBS_TRUNCATED` record: the
    bounded ring evicted an unknown prefix before the export, so any
    analysis that assumes a complete history is suspect.
    """

# ---------------------------------------------------------------------------
# Event taxonomy
# ---------------------------------------------------------------------------
# Kind constants of the events the built-in instrumentation emits.  The
# dotted prefix names the emitting subsystem; docs/OBSERVABILITY.md lists
# every kind with its payload fields.

ENGINE_SUBMITTED = "engine.submitted"
ENGINE_PHASE_ENTERED = "engine.phase_entered"
ENGINE_CHECK = "engine.check"
ENGINE_TRANSITION = "engine.transition"
ENGINE_ROLLOUT = "engine.rollout"
ENGINE_WINNER = "engine.winner"
ENGINE_ROUTE = "engine.route"
ENGINE_FINALIZED = "engine.finalized"

JOURNAL_APPEND = "journal.append"
JOURNAL_COMPACT = "journal.compact"
JOURNAL_SNAPSHOT = "journal.snapshot"

RECOVERY_CRASH = "recovery.crash"
RECOVERY_RESTART = "recovery.restart"
RECOVERY_RESTART_FAILED = "recovery.restart_failed"
RECOVERY_REFUSED = "recovery.refused"
RECOVERY_REPLAYED = "recovery.replayed"

FLEET_PLANNED = "fleet.planned"
FLEET_SLOT_STARTED = "fleet.slot_started"
FLEET_ADMITTED = "fleet.admitted"
FLEET_QUEUED = "fleet.queued"
FLEET_SHED = "fleet.shed"
FLEET_PAUSED = "fleet.paused"
FLEET_EXPERIMENT_CRASHED = "fleet.experiment_crashed"
FLEET_EXPERIMENT_RESTARTED = "fleet.experiment_restarted"
FLEET_EXPERIMENT_OUTCOME = "fleet.experiment_outcome"
FLEET_SLOT_COMMITTED = "fleet.slot_committed"
FLEET_RECOVERED = "fleet.recovered"
FLEET_FINISHED = "fleet.finished"

FENRIR_GENERATION = "fenrir.generation"
FENRIR_SEARCH_COMPLETED = "fenrir.search_completed"
FENRIR_SCHEDULE = "fenrir.schedule"

TOPOLOGY_HEALTH = "topology.health_published"

#: Burn-rate alerting (:mod:`repro.obs.alerts`): edge-triggered firing
#: and resolution of multi-window error-budget rules.
ALERT_FIRED = "alert.fired"
ALERT_RESOLVED = "alert.resolved"

#: Decision provenance (:mod:`repro.obs.provenance`): one node per
#: engine state transition, linking the evidence records (check-event
#: seqs), active alerts, and active faults that caused it.
DECISION_RECORDED = "decision.recorded"

#: Sentinel record kind marking that a bounded ring evicted events before
#: an export, so the exported stream is missing an unknown-length prefix.
OBS_TRUNCATED = "obs.truncated"

#: The engine-lifecycle kinds the timeline reconstruction consumes.
TIMELINE_KINDS = frozenset(
    {
        ENGINE_SUBMITTED,
        ENGINE_PHASE_ENTERED,
        ENGINE_CHECK,
        ENGINE_TRANSITION,
        ENGINE_WINNER,
        ENGINE_FINALIZED,
    }
)


@dataclass(frozen=True)
class Event:
    """One structured occurrence in the experimentation machinery.

    Attributes:
        seq: monotonic sequence number, unique per :class:`EventLog`.
        time: logical timestamp in the emitter's own unit (simulated
            seconds for Bifrost/topology, evaluations used for Fenrir).
        kind: dotted event kind (see the module-level taxonomy).
        data: kind-specific JSON-compatible payload.
    """

    seq: int
    time: float
    kind: str
    data: Mapping = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-compatible dict form (the JSONL line layout)."""
        return {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "data": dict(self.data),
        }

    def describe(self) -> str:
        """Human-readable one-liner for dashboards and debugging."""
        payload = ", ".join(f"{k}={v}" for k, v in self.data.items())
        return f"#{self.seq} [{self.time:10.3f}] {self.kind} {payload}"


def event_from_dict(doc: Mapping) -> Event:
    """Rebuild one event from its :meth:`Event.as_dict` form.

    Raises :class:`ValidationError` on a malformed document, so corrupt
    JSONL exports surface at load time rather than mid-analysis.
    """
    try:
        return Event(
            seq=int(doc["seq"]),
            time=float(doc["time"]),
            kind=str(doc["kind"]),
            data=dict(doc["data"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed event document: {exc}") from exc


def is_truncation(event: Event) -> bool:
    """Whether *event* is a ring-eviction truncation sentinel."""
    return event.kind == OBS_TRUNCATED


def stream_truncation(events: Iterable[Event]) -> Event | None:
    """The truncation sentinel carried by *events*, if any."""
    for event in events:
        if is_truncation(event):
            return event
    return None


def load_jsonl(lines: Iterable[str], *, on_truncated: str = "warn") -> list[Event]:
    """Decode an iterable of JSONL lines back into events.

    *on_truncated* selects the policy applied when the stream carries an
    :data:`OBS_TRUNCATED` sentinel (the ring evicted a prefix before the
    export): ``"warn"`` (default) issues a :class:`TruncatedStreamWarning`
    and keeps the sentinel in the returned list so downstream consumers
    can make their own call; ``"error"`` raises :class:`ValidationError`;
    ``"ignore"`` passes the sentinel through silently.
    """
    if on_truncated not in {"warn", "error", "ignore"}:
        raise ValidationError(
            f"on_truncated must be 'warn', 'error', or 'ignore', "
            f"got {on_truncated!r}"
        )
    events = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"undecodable event line: {exc}") from exc
        event = event_from_dict(doc)
        if is_truncation(event):
            dropped = event.data.get("dropped", "?")
            if on_truncated == "error":
                raise ValidationError(
                    f"event stream is truncated: {dropped} events were "
                    "evicted from the bounded ring before the export"
                )
            if on_truncated == "warn":
                warnings.warn(
                    f"event stream is truncated ({dropped} events evicted "
                    "before export); timelines reconstructed from it would "
                    "be missing their prefix",
                    TruncatedStreamWarning,
                    stacklevel=2,
                )
        events.append(event)
    return events


class EventLog:
    """A bounded, subscribable ring of :class:`Event` records.

    Appends assign strictly increasing sequence numbers; the ring keeps
    the most recent *capacity* events and counts evictions.  Subscribers
    receive every event at append time (before any eviction), so a sink
    attached from the start sees the complete stream even when the ring
    only retains a suffix.
    """

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity <= 0:
            raise ValidationError("event log capacity must be positive")
        self.capacity = capacity
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._next_seq = 1
        self._appended = 0
        self._counts: Counter[str] = Counter()
        self._subscribers: list[Callable[[Event], None]] = []

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[Event]:
        return iter(tuple(self._ring))

    @property
    def appended(self) -> int:
        """Total events ever appended (retained + dropped)."""
        return self._appended

    @property
    def dropped(self) -> int:
        """Events the ring has shed to stay within capacity."""
        return self._appended - len(self._ring)

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent event (0 when empty)."""
        return self._next_seq - 1

    @property
    def first_retained_seq(self) -> int:
        """Sequence number of the oldest retained event (0 when empty)."""
        return self._ring[0].seq if self._ring else 0

    def append(self, kind: str, time: float, data: Mapping | None = None) -> Event:
        """Record one event and fan it out to subscribers."""
        event = Event(self._next_seq, float(time), kind, dict(data or {}))
        self._next_seq += 1
        self._appended += 1
        self._counts[kind] += 1
        self._ring.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Call *callback* for every subsequently appended event."""
        self._subscribers.append(callback)

    def counts_by_kind(self) -> dict[str, int]:
        """Lifetime append counts per event kind (evictions included)."""
        return dict(self._counts)

    def replay(
        self,
        kinds: Iterable[str] | None = None,
        since_seq: int = 0,
    ) -> Iterator[Event]:
        """Iterate retained events in sequence order, optionally filtered.

        *kinds* restricts to the given event kinds; *since_seq* skips
        events with ``seq <= since_seq`` — the idiom for incremental
        consumers that remember where they stopped.
        """
        wanted = frozenset(kinds) if kinds is not None else None
        for event in tuple(self._ring):
            if event.seq <= since_seq:
                continue
            if wanted is not None and event.kind not in wanted:
                continue
            yield event

    def events(
        self, kinds: Iterable[str] | None = None, since_seq: int = 0
    ) -> list[Event]:
        """List form of :meth:`replay`."""
        return list(self.replay(kinds, since_seq))

    def tail(self, n: int = 10) -> list[Event]:
        """The *n* most recent retained events."""
        if n <= 0:
            return []
        ring = tuple(self._ring)
        return list(ring[-n:])

    def truncation_sentinel(self) -> Event | None:
        """Sentinel describing evicted events, or None when lossless.

        When the ring has shed events, exports are missing an
        unknown-length prefix; the sentinel records how many events were
        dropped and where the retained window starts, so consumers can
        refuse (or warn) instead of silently reconstructing a wrong
        history.  The sentinel's ``seq`` is the last evicted sequence
        number — one below :attr:`first_retained_seq` — so a sorted
        export keeps it first.
        """
        if self.dropped == 0:
            return None
        first = self.first_retained_seq
        return Event(
            seq=first - 1,
            time=self._ring[0].time if self._ring else 0.0,
            kind=OBS_TRUNCATED,
            data={"dropped": self.dropped, "first_retained_seq": first},
        )

    def jsonl_lines(self) -> Iterator[str]:
        """Retained events as compact JSON lines.

        When the ring has evicted events, the first line is an
        :data:`OBS_TRUNCATED` sentinel (see :meth:`truncation_sentinel`)
        so the export is self-describing about its missing prefix.
        """
        sentinel = self.truncation_sentinel()
        if sentinel is not None:
            yield json.dumps(
                sentinel.as_dict(), separators=(",", ":"), sort_keys=True
            )
        for event in tuple(self._ring):
            yield json.dumps(event.as_dict(), separators=(",", ":"), sort_keys=True)

    def export_jsonl(self, target: str | IO[str]) -> int:
        """Write the retained events to *target* (path or text handle).

        Returns the number of lines written.  Exports only the retained
        window; when events were evicted the export starts with an
        :data:`OBS_TRUNCATED` sentinel line (counted in the return
        value).  Attach a :class:`~repro.obs.exporters.JsonlEventSink`
        from the start for a lossless stream.
        """
        lines = list(self.jsonl_lines())
        text = "\n".join(lines) + ("\n" if lines else "")
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
        else:
            target.write(text)
        return len(lines)

    def clear(self) -> None:
        """Drop retained events (sequence numbers keep increasing)."""
        self._ring.clear()
