"""Exporters: Prometheus-style exposition and a streaming JSONL sink.

Two ways out of the glass box:

* :func:`render_prometheus` — the text exposition format scrape
  endpoints speak, covering both the machinery's
  :class:`~repro.obs.registry.MetricRegistry` and (optionally) the
  application-level :class:`~repro.telemetry.store.MetricStore`, so one
  page shows the experiment *and* the experimenter.
* :class:`JsonlEventSink` — subscribes to an
  :class:`~repro.obs.events.EventLog` and writes every event as one
  JSON line the moment it is emitted.  Unlike
  :meth:`~repro.obs.events.EventLog.export_jsonl` (which only sees the
  retained ring), a sink attached from the start captures the lossless
  stream.
"""

from __future__ import annotations

import json
from typing import IO, TYPE_CHECKING

from repro.obs.events import Event, EventLog
from repro.obs.registry import LabelSet, MetricRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.store import MetricStore


def sanitize_metric_name(name: str) -> str:
    """Coerce *name* into the Prometheus metric-name alphabet.

    Characters outside ``[a-zA-Z0-9_:]`` become underscores and a
    leading digit is prefixed — ``health.score`` → ``health_score``.
    """
    cleaned = "".join(
        ch if ch.isascii() and (ch.isalnum() or ch in "_:") else "_" for ch in name
    )
    if not cleaned:
        return "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_sample(name: str, labels: LabelSet, value: float) -> str:
    """One exposition line: ``name{label="value",...} value``."""
    rendered = ",".join(
        f'{sanitize_metric_name(k)}="{_escape_label_value(str(v))}"'
        for k, v in labels
    )
    body = f"{{{rendered}}}" if rendered else ""
    return f"{sanitize_metric_name(name)}{body} {value:g}"


def render_prometheus(
    registry: MetricRegistry | None = None,
    store: "MetricStore | None" = None,
    prefix: str = "repro",
) -> str:
    """Render registry and/or metric-store contents as exposition text.

    Registry families come out under ``<prefix>_<family>`` with their
    ``# TYPE`` headers.  A histogram family renders as one Prometheus
    *summary*: a single ``# TYPE <prefix>_<family> summary`` header
    covering its quantile samples plus the conformant ``_count``/``_sum``
    pair.  Metric-store series are summarized as
    ``<prefix>_store_samples`` (sample count) and ``<prefix>_store_last``
    (most recent value) per (service, version, metric) — the windowed
    semantics stay in the store; exposition shows the live edge.
    """
    lines: list[str] = []
    if registry is not None and registry.enabled:
        last_family = None
        for sample in registry.collect():
            if sample.kind == "histogram":
                # _count/_sum/quantile samples all belong to one summary
                # family named after the base metric.
                base = sample.name
                for suffix in ("_count", "_sum"):
                    if base.endswith(suffix):
                        base = base[: -len(suffix)]
                        break
                family = (base, sample.kind)
                header = f"# TYPE {sanitize_metric_name(f'{prefix}_{base}')} summary"
            else:
                family = (sample.name, sample.kind)
                header = (
                    f"# TYPE {sanitize_metric_name(f'{prefix}_{sample.name}')} "
                    f"{sample.kind}"
                )
            if family != last_family:
                lines.append(header)
                last_family = family
            lines.append(
                format_sample(f"{prefix}_{sample.name}", sample.labels, sample.value)
            )
    if store is not None:
        count_lines: list[str] = []
        last_lines: list[str] = []
        for key in store.keys():
            series = store.series(key.service, key.version, key.metric)
            labels: LabelSet = (
                ("metric", key.metric),
                ("service", key.service),
                ("version", key.version),
            )
            count_lines.append(
                format_sample(f"{prefix}_store_samples", labels, float(len(series)))
            )
            last_lines.append(
                format_sample(f"{prefix}_store_last", labels, series.values[-1])
            )
        if count_lines:
            lines.append(f"# TYPE {prefix}_store_samples counter")
            lines.extend(count_lines)
            lines.append(f"# TYPE {prefix}_store_last gauge")
            lines.extend(last_lines)
    return "\n".join(lines) + ("\n" if lines else "")


class JsonlEventSink:
    """Streams events to a JSONL file (or text handle) as they happen.

    Attach with :meth:`attach` (optionally replaying the log's retained
    backlog first); every subsequent event is written and flushed as one
    compact JSON line.  Use as a context manager to close the file on
    exit; handles passed in by the caller are flushed but not closed.
    """

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.written = 0
        self._closed = False

    def attach(self, log: EventLog, replay: bool = True) -> "JsonlEventSink":
        """Subscribe to *log*; with *replay*, write its backlog first."""
        if replay:
            for event in log:
                self.write(event)
        log.subscribe(self.write)
        return self

    def write(self, event: Event) -> None:
        """Write one event line (no-op once closed)."""
        if self._closed:
            return
        self._handle.write(
            json.dumps(event.as_dict(), separators=(",", ":"), sort_keys=True) + "\n"
        )
        self._handle.flush()
        self.written += 1

    def close(self) -> None:
        """Stop writing; close the file if this sink opened it."""
        if self._closed:
            return
        self._closed = True
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
