"""Experiment timelines reconstructed purely from the event stream.

The engine keeps its own execution record (:class:`StrategyExecution`
transitions and check logs).  This module rebuilds the same history from
nothing but the :class:`~repro.obs.events.EventLog` — the proof that the
glass-box layer captures enough to debug a run after the fact — and
renders it as ASCII (for terminals) or dot (for graphviz).

:func:`diff_timeline_execution` verifies the reconstruction against the
engine's record field by field; the e2e suite asserts it returns no
differences for full canary/A-B/recovery runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import ValidationError
from repro.obs.events import (
    ENGINE_CHECK,
    ENGINE_FINALIZED,
    ENGINE_PHASE_ENTERED,
    ENGINE_SUBMITTED,
    ENGINE_TRANSITION,
    ENGINE_WINNER,
    TIMELINE_KINDS,
    Event,
    is_truncation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bifrost.engine import StrategyExecution


@dataclass(frozen=True)
class CheckPoint:
    """One check evaluation as the event stream recorded it."""

    time: float
    check: str
    outcome: str
    observed: float | None
    reference: float | None


@dataclass
class PhaseSpan:
    """One stay in one phase: entry, checks, and the exit transition."""

    name: str
    entered_at: float
    exited_at: float | None = None
    trigger: str | None = None
    target: str | None = None
    action: str | None = None
    checks: list[CheckPoint] = field(default_factory=list)

    def outcome_counts(self) -> dict[str, int]:
        """Check outcomes observed during this stay, by outcome value."""
        counts: dict[str, int] = {}
        for point in self.checks:
            counts[point.outcome] = counts.get(point.outcome, 0) + 1
        return counts


@dataclass
class ExperimentTimeline:
    """The reconstructed history of one strategy execution."""

    strategy: str
    submitted_at: float | None = None
    phases: list[PhaseSpan] = field(default_factory=list)
    transitions: list[tuple[float, str, str, str, str]] = field(default_factory=list)
    winner: str | None = None
    terminal: str | None = None
    outcome: str | None = None
    promoted: str | None = None
    finished_at: float | None = None
    #: Events evicted before the stream this timeline was folded from —
    #: nonzero means the history below is a *suffix*, not the full run.
    truncated_dropped: int = 0

    @property
    def check_points(self) -> list[CheckPoint]:
        """Every check evaluation across all phase stays, in order."""
        return [point for span in self.phases for point in span.checks]

    @property
    def open_phase(self) -> PhaseSpan | None:
        """The phase currently being executed (None once finished)."""
        if self.phases and self.phases[-1].exited_at is None:
            return self.phases[-1]
        return None


def reconstruct_timelines(
    events: Iterable[Event], *, allow_truncated: bool = False
) -> dict[str, ExperimentTimeline]:
    """Fold engine-lifecycle events into per-strategy timelines.

    Events must arrive in sequence order (any :meth:`EventLog.replay`
    does this); kinds outside :data:`~repro.obs.events.TIMELINE_KINDS`
    are ignored, so the full mixed log can be passed verbatim.

    A stream carrying an :data:`~repro.obs.events.OBS_TRUNCATED`
    sentinel (the bounded ring evicted a prefix before export) is
    refused with :class:`ValidationError` — a timeline folded from a
    suffix would silently misreport phase entries and checks.  Pass
    ``allow_truncated=True`` to fold the surviving tail anyway.
    """
    timelines: dict[str, ExperimentTimeline] = {}
    dropped_total = 0
    for event in events:
        if is_truncation(event):
            if not allow_truncated:
                dropped = event.data.get("dropped", "?")
                raise ValidationError(
                    f"refusing to reconstruct timelines from a truncated "
                    f"event stream ({dropped} events evicted before "
                    "export); pass allow_truncated=True to fold the "
                    "surviving tail anyway"
                )
            dropped_total += int(event.data.get("dropped", 0) or 0)
            continue
        if event.kind not in TIMELINE_KINDS:
            continue
        data = event.data
        name = str(data.get("strategy", ""))
        timeline = timelines.get(name)
        if timeline is None:
            timeline = ExperimentTimeline(strategy=name)
            timelines[name] = timeline
        if event.kind == ENGINE_SUBMITTED:
            timeline.submitted_at = float(data["start"])
        elif event.kind == ENGINE_PHASE_ENTERED:
            timeline.phases.append(
                PhaseSpan(name=str(data["phase"]), entered_at=event.time)
            )
        elif event.kind == ENGINE_CHECK:
            span = timeline.open_phase
            point = CheckPoint(
                time=event.time,
                check=str(data["check"]),
                outcome=str(data["outcome"]),
                observed=data.get("observed"),
                reference=data.get("reference"),
            )
            if span is None:
                # Defensive: a check without an open phase still shows up.
                span = PhaseSpan(name=str(data.get("phase", "?")), entered_at=event.time)
                timeline.phases.append(span)
            span.checks.append(point)
        elif event.kind == ENGINE_TRANSITION:
            record = (
                event.time,
                str(data["source"]),
                str(data["target"]),
                str(data["trigger"]),
                str(data["action"]),
            )
            timeline.transitions.append(record)
            span = timeline.open_phase
            if span is not None and span.name == data["source"]:
                span.exited_at = event.time
                span.trigger = str(data["trigger"])
                span.target = str(data["target"])
                span.action = str(data["action"])
        elif event.kind == ENGINE_WINNER:
            timeline.winner = str(data["version"])
        elif event.kind == ENGINE_FINALIZED:
            timeline.terminal = str(data["terminal"])
            timeline.outcome = str(data["outcome"])
            timeline.promoted = data.get("promoted")
            timeline.finished_at = event.time
    if dropped_total:
        for timeline in timelines.values():
            timeline.truncated_dropped = dropped_total
    return timelines


# ---------------------------------------------------------------------------
# verification against the engine's own record
# ---------------------------------------------------------------------------


def diff_timeline_execution(
    timeline: ExperimentTimeline, execution: "StrategyExecution"
) -> list[str]:
    """Field-by-field differences between reconstruction and engine record.

    Empty list == the timeline rebuilt from the event log alone matches
    the engine's phase/check history exactly: same phase entry sequence,
    same check evaluations (time, name, outcome, observed, reference),
    same transitions, same terminal outcome and winner.
    """
    from repro.bifrost.model import TERMINAL_STATES

    problems: list[str] = []
    if timeline.strategy != execution.strategy.name:
        problems.append(
            f"strategy name: {timeline.strategy!r} != {execution.strategy.name!r}"
        )
    expected_phases: list[str] = []
    if execution.phase_entries > 0:
        expected_phases.append(execution.strategy.entry.name)
        expected_phases.extend(
            record.target
            for record in execution.transitions
            if record.target not in TERMINAL_STATES
        )
    got_phases = [span.name for span in timeline.phases]
    if got_phases != expected_phases:
        problems.append(f"phase sequence: {got_phases} != {expected_phases}")
    if len(timeline.phases) != execution.phase_entries:
        problems.append(
            f"phase entries: {len(timeline.phases)} != {execution.phase_entries}"
        )
    got_checks = [
        (p.time, p.check, p.outcome, p.observed, p.reference)
        for p in timeline.check_points
    ]
    expected_checks = [
        (r.time, r.check.name, r.outcome.value, r.observed, r.reference)
        for r in execution.check_log
    ]
    if got_checks != expected_checks:
        problems.append(
            f"checks: {len(got_checks)} reconstructed vs "
            f"{len(expected_checks)} recorded (or payloads differ)"
        )
    got_transitions = timeline.transitions
    expected_transitions = [
        (r.time, r.source, r.target, r.trigger, r.action.value)
        for r in execution.transitions
    ]
    if got_transitions != expected_transitions:
        problems.append(
            f"transitions: {got_transitions} != {expected_transitions}"
        )
    if timeline.winner != execution.winner:
        problems.append(f"winner: {timeline.winner!r} != {execution.winner!r}")
    finished = execution.finished_at is not None
    if finished:
        if timeline.terminal != execution.state:
            problems.append(
                f"terminal: {timeline.terminal!r} != {execution.state!r}"
            )
        if timeline.outcome != execution.outcome.value:
            problems.append(
                f"outcome: {timeline.outcome!r} != {execution.outcome.value!r}"
            )
        if timeline.finished_at != execution.finished_at:
            problems.append(
                f"finished_at: {timeline.finished_at} != {execution.finished_at}"
            )
    elif timeline.terminal is not None:
        problems.append(
            f"timeline finalized ({timeline.terminal}) but execution still "
            f"in {execution.state!r}"
        )
    return problems


def timeline_matches_execution(
    timeline: ExperimentTimeline, execution: "StrategyExecution"
) -> bool:
    """Whether the reconstruction equals the engine's record exactly."""
    return not diff_timeline_execution(timeline, execution)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def render_ascii(timeline: ExperimentTimeline) -> str:
    """Terminal rendering: one line per phase stay plus the verdict."""
    header = f"strategy {timeline.strategy}"
    if timeline.outcome is not None:
        header += f" — {timeline.outcome}"
        if timeline.finished_at is not None:
            header += f" at {timeline.finished_at:.1f}s"
    elif timeline.phases:
        header += " — running"
    lines = []
    if timeline.truncated_dropped:
        lines.append(f"[TRUNCATED: {timeline.truncated_dropped} events dropped]")
    lines.append(header)
    for span in timeline.phases:
        end = f"{span.exited_at:8.1f}" if span.exited_at is not None else "     ..."
        counts = span.outcome_counts()
        checks = " ".join(
            f"{outcome}={counts[outcome]}" for outcome in sorted(counts)
        )
        exit_note = ""
        if span.trigger is not None:
            exit_note = f"  --{span.trigger}--> {span.target}"
        lines.append(
            f"  [{span.entered_at:8.1f} ->{end}] {span.name:<16s} "
            f"checks: {checks or '(none)'}{exit_note}"
        )
    if timeline.winner is not None:
        lines.append(f"  winner: {timeline.winner}")
    if timeline.promoted:
        lines.append(f"  promoted: {timeline.promoted}")
    return "\n".join(lines)


def render_dot(timeline: ExperimentTimeline) -> str:
    """Graphviz rendering of the *traversed* part of the state machine.

    Nodes are the phases actually entered (plus the terminal, when
    reached); edges are the transitions actually taken, labeled with
    their trigger and annotated with the time they fired.
    """
    lines = [f'digraph "{timeline.strategy}-timeline" {{', "  rankdir=LR;"]
    seen: set[str] = set()
    for span in timeline.phases:
        if span.name not in seen:
            seen.add(span.name)
            lines.append(f'  "{span.name}" [shape=box];')
    if timeline.terminal is not None and timeline.terminal not in seen:
        seen.add(timeline.terminal)
        lines.append(f'  "{timeline.terminal}" [shape=doublecircle];')
    for time, source, target, trigger, _action in timeline.transitions:
        if target not in seen:
            seen.add(target)
            lines.append(f'  "{target}" [shape=box];')
        lines.append(
            f'  "{source}" -> "{target}" '
            f'[label="{trigger}\\n@{time:.1f}s"];'
        )
    lines.append("}")
    return "\n".join(lines)
