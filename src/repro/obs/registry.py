"""A labeled metric registry for the experimentation machinery itself.

:mod:`repro.telemetry` stores the *application's* metrics (response
times, error rates per service version) — what checks read.  This
registry holds the *machinery's* metrics: how many checks Bifrost
evaluated and how long they took, Fenrir's cache hit-rate, the streaming
pipeline's fold/diff/rank timings.  Instruments follow the Prometheus
vocabulary — :class:`~repro.telemetry.metrics.Counter`,
:class:`~repro.telemetry.metrics.Gauge`, and
:class:`~repro.telemetry.metrics.Histogram` — extended with *label
sets*: ``registry.counter("bifrost_checks_total", outcome="pass")``
addresses one child of the ``bifrost_checks_total`` family.

A disabled registry hands out one shared no-op instrument and collects
nothing, so instrumented code pays only an attribute check and an empty
method call when observability is off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.telemetry.metrics import Counter, Gauge, Histogram

#: Instrument kind tags used in :class:`MetricSample`.
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Quantiles a histogram family exposes in :meth:`MetricRegistry.collect`.
HISTOGRAM_QUANTILES = (50.0, 90.0, 99.0)

LabelSet = tuple[tuple[str, str], ...]


def labels_key(labels: dict[str, str]) -> LabelSet:
    """Canonical (sorted, stringified) form of a label mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class MetricSample:
    """One exported sample of one instrument child.

    Attributes:
        name: family name, possibly suffixed (``_count`` / ``_sum`` and a
            ``quantile`` label for histograms).
        kind: instrument kind of the family the sample came from.
        labels: canonical label set of the child.
        value: the sampled value.
    """

    name: str
    kind: str
    labels: LabelSet
    value: float


class NoopInstrument:
    """Accepts every instrument method and does nothing.

    One shared instance stands in for counters, gauges, and histograms
    when the registry is disabled, so call sites never branch.
    """

    __slots__ = ()

    def increment(self, amount: float = 1.0) -> None:
        """No-op counter increment."""

    def set(self, value: float) -> None:
        """No-op gauge set."""

    def add(self, delta: float) -> None:
        """No-op gauge adjustment."""

    def observe(self, value: float) -> None:
        """No-op histogram observation."""


#: The shared disabled-path instrument.
NOOP_INSTRUMENT = NoopInstrument()


class _Family:
    """All children (label set → instrument) of one metric name."""

    __slots__ = ("name", "kind", "children")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.children: dict[LabelSet, object] = {}


class MetricRegistry:
    """Labeled counter/gauge/histogram families with a no-op path.

    Families are created on first use; requesting an existing name with
    a different instrument kind raises — one name, one kind, as in every
    Prometheus-style registry.
    """

    def __init__(self, enabled: bool = True, histogram_capacity: int = 4096) -> None:
        self.enabled = enabled
        self.histogram_capacity = histogram_capacity
        self._families: dict[str, _Family] = {}

    def __len__(self) -> int:
        return len(self._families)

    # -- instrument accessors ----------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter | NoopInstrument:
        """The counter child of family *name* with the given labels."""
        if not self.enabled:
            return NOOP_INSTRUMENT
        return self._child(name, COUNTER, labels)

    def gauge(self, name: str, **labels: str) -> Gauge | NoopInstrument:
        """The gauge child of family *name* with the given labels."""
        if not self.enabled:
            return NOOP_INSTRUMENT
        return self._child(name, GAUGE, labels)

    def histogram(self, name: str, **labels: str) -> Histogram | NoopInstrument:
        """The histogram child of family *name* with the given labels."""
        if not self.enabled:
            return NOOP_INSTRUMENT
        return self._child(name, HISTOGRAM, labels)

    def _child(self, name: str, kind: str, labels: dict[str, str]):
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind)
            self._families[name] = family
        elif family.kind != kind:
            raise ValidationError(
                f"metric family {name!r} is a {family.kind}, requested {kind}"
            )
        key = labels_key(labels)
        child = family.children.get(key)
        if child is None:
            if kind == COUNTER:
                child = Counter(name)
            elif kind == GAUGE:
                child = Gauge(name)
            else:
                child = Histogram(name, capacity=self.histogram_capacity)
            family.children[key] = child
        return child

    # -- export -------------------------------------------------------------

    def families(self) -> list[tuple[str, str]]:
        """Registered ``(name, kind)`` pairs, sorted by name."""
        return sorted((f.name, f.kind) for f in self._families.values())

    def collect(self) -> list[MetricSample]:
        """Flatten every child into exported samples, deterministically.

        Counters and gauges yield one sample each.  Histograms yield a
        ``_count`` and ``_sum`` sample plus one sample per quantile in
        :data:`HISTOGRAM_QUANTILES` (labeled ``quantile="p50"`` …),
        computed over the retained sliding window.
        """
        samples: list[MetricSample] = []
        for name in sorted(self._families):
            family = self._families[name]
            for key in sorted(family.children):
                child = family.children[key]
                if family.kind in (COUNTER, GAUGE):
                    samples.append(
                        MetricSample(name, family.kind, key, child.value)
                    )
                    continue
                values = child.values()
                samples.append(
                    MetricSample(
                        f"{name}_count", HISTOGRAM, key, float(len(values))
                    )
                )
                samples.append(
                    MetricSample(f"{name}_sum", HISTOGRAM, key, float(sum(values)))
                )
                for q in HISTOGRAM_QUANTILES:
                    if not values:
                        continue
                    labeled = key + (("quantile", f"p{q:g}"),)
                    samples.append(
                        MetricSample(name, HISTOGRAM, labeled, child.percentile(q))
                    )
        return samples

    def value(self, name: str, **labels: str) -> float | None:
        """Current value of one counter/gauge child (None when absent)."""
        family = self._families.get(name)
        if family is None or family.kind == HISTOGRAM:
            return None
        child = family.children.get(labels_key(labels))
        return None if child is None else child.value
