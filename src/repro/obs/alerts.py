"""Multi-window burn-rate alerting over :class:`MetricStore` streams.

An :class:`AlertRule` states an error-budget SLO: *objective* names the
target success ratio (0.999 → a 0.1% error budget) for one
``(service, version, metric)`` stream.  The *burn rate* over a window is
the window's mean error rate divided by the budget — burn 1.0 consumes
exactly the budget, burn 10 consumes it ten times too fast.  Following
the multi-window discipline, a rule watches a *fast* and a *slow*
window pair and fires only when **both** exceed the threshold: the slow
window proves the problem is sustained, the fast window proves it is
still happening (and lets the alert resolve promptly once it is not).

The :class:`AlertEngine` evaluates rules on the shared *logical* clock —
:meth:`AlertEngine.evaluate` is a pure function of ``(store, now)``, so
a crash-recovered fleet whose store was rebuilt by re-feeding reaches
identical verdicts.  Each evaluation publishes the gate value (the
minimum of the two burn rates) into the store under the ``alerts``
pseudo-version, which is where the Bifrost DSL's ``kind slo`` checks
read it; firing edges emit :data:`~repro.obs.events.ALERT_FIRED` /
:data:`~repro.obs.events.ALERT_RESOLVED` events into the glass box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigurationError
from repro.obs.events import ALERT_FIRED, ALERT_RESOLVED
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.stats.descriptive import mean

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.engine import SimulationEngine
    from repro.telemetry.store import MetricStore

#: Pseudo-version the alert engine publishes burn-rate gates under; the
#: ``slo`` check kind normalizes its version to this address, mirroring
#: how health checks normalize to the topology pipeline's ``live``.
ALERTS_VERSION = "alerts"


def alert_metric(rule_name: str) -> str:
    """Store metric name carrying *rule_name*'s burn-rate gate value."""
    return f"burn:{rule_name}"


@dataclass(frozen=True)
class AlertRule:
    """One multi-window burn-rate rule over an error-ratio stream.

    Attributes:
        name: rule identifier (unique per engine).
        service: service whose stream is watched.
        version: version whose stream is watched.
        objective: SLO target success ratio in (0, 1); the error budget
            is ``1 - objective``.
        metric: the 0/1 error-ratio stream to read (``error`` is what
            the runtime's monitor records per request).
        fast_window: short trailing window (seconds, logical clock).
        slow_window: long trailing window; must be >= fast_window.
        burn_threshold: fire when both windows burn at or above this.
    """

    name: str
    service: str
    version: str
    objective: float = 0.999
    metric: str = "error"
    fast_window: float = 60.0
    slow_window: float = 600.0
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("alert rule name must be non-empty")
        if not 0.0 < self.objective < 1.0:
            raise ConfigurationError(
                f"rule {self.name!r}: objective must be in (0, 1)"
            )
        if self.fast_window <= 0 or self.slow_window <= 0:
            raise ConfigurationError(
                f"rule {self.name!r}: windows must be positive"
            )
        if self.slow_window < self.fast_window:
            raise ConfigurationError(
                f"rule {self.name!r}: slow_window must be >= fast_window"
            )
        if self.burn_threshold <= 0:
            raise ConfigurationError(
                f"rule {self.name!r}: burn_threshold must be positive"
            )

    @property
    def error_budget(self) -> float:
        """The error-rate budget the objective leaves (``1 - objective``)."""
        return 1.0 - self.objective


@dataclass(frozen=True)
class AlertEvaluation:
    """One rule's verdict at one evaluation time."""

    rule: str
    time: float
    fast_burn: float | None
    slow_burn: float | None
    burn: float | None
    firing: bool


class AlertEngine:
    """Evaluates burn-rate rules on the logical clock.

    ``evaluate(now)`` is deterministic in ``(store, now)``; the engine
    keeps only edge state (which rules are currently firing) so it can
    emit :data:`ALERT_FIRED` / :data:`ALERT_RESOLVED` exactly once per
    edge.  With ``publish=True`` (the default) every evaluation also
    records each rule's gate value into the store under
    ``(service, ALERTS_VERSION, burn:<rule>)`` — the stream ``kind slo``
    checks aggregate over.  Fleet bulkheads run with ``publish=False``
    so a store rebuilt by re-feeding traffic stays byte-identical.
    """

    def __init__(
        self,
        store: "MetricStore",
        rules: Iterable[AlertRule],
        observer: Observer | None = None,
        interval: float = 5.0,
        publish: bool = True,
    ) -> None:
        self.store = store
        self.rules = tuple(rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate alert rule names: {names}")
        if interval <= 0:
            raise ConfigurationError("alert evaluation interval must be positive")
        self.obs = observer or NULL_OBSERVER
        self.interval = interval
        self.publish = publish
        self._firing: dict[str, bool] = {rule.name: False for rule in self.rules}
        self.evaluations = 0

    def _burn(self, rule: AlertRule, start: float, end: float) -> float | None:
        values = self.store.values_in_window(
            rule.service, rule.version, rule.metric, start, end
        )
        if not values:
            return None
        return mean(values) / rule.error_budget

    def evaluate(self, now: float) -> list[AlertEvaluation]:
        """Evaluate every rule at logical time *now* (pure in store+now).

        A rule whose *fast* window is empty is skipped (no verdict, no
        publication): with no recent samples there is nothing to burn
        and nothing meaningful to resolve on.  An empty *slow* window
        falls back to the fast burn — early in a stream the slow window
        simply has not filled yet, and a sustained early burn should
        still fire.
        """
        results: list[AlertEvaluation] = []
        for rule in self.rules:
            fast = self._burn(rule, now - rule.fast_window, now)
            if fast is None:
                results.append(
                    AlertEvaluation(rule.name, now, None, None, None, False)
                )
                continue
            slow = self._burn(rule, now - rule.slow_window, now)
            if slow is None:
                slow = fast
            burn = min(fast, slow)
            firing = burn >= rule.burn_threshold
            if self.publish:
                self.store.record(
                    rule.service, ALERTS_VERSION, alert_metric(rule.name), now, burn
                )
            was_firing = self._firing[rule.name]
            if firing != was_firing:
                self._firing[rule.name] = firing
                kind = ALERT_FIRED if firing else ALERT_RESOLVED
                event = self.obs.emit(
                    kind,
                    now,
                    rule=rule.name,
                    service=rule.service,
                    version=rule.version,
                    metric=rule.metric,
                    burn=burn,
                    fast_burn=fast,
                    slow_burn=slow,
                    threshold=rule.burn_threshold,
                    objective=rule.objective,
                )
                tracker = getattr(self.obs, "provenance", None)
                if event is not None and tracker is not None:
                    tracker.record(event)
                self.obs.metrics.counter(
                    "alert_transitions_total",
                    rule=rule.name,
                    state="firing" if firing else "resolved",
                ).increment()
            results.append(
                AlertEvaluation(rule.name, now, fast, slow, burn, firing)
            )
        self.evaluations += 1
        return results

    def active(self) -> tuple[str, ...]:
        """Names of the rules currently firing, sorted."""
        return tuple(sorted(name for name, on in self._firing.items() if on))

    def firing(self, rule_name: str) -> bool:
        """Whether one rule is currently firing."""
        return self._firing.get(rule_name, False)

    def attach(self, simulation: "SimulationEngine") -> "AlertEngine":
        """Self-schedule evaluation every :attr:`interval` logical seconds."""

        def tick() -> None:
            self.evaluate(simulation.now)
            simulation.schedule_at(
                simulation.now + self.interval, tick, label="alert-eval"
            )

        simulation.schedule_at(
            simulation.now + self.interval, tick, label="alert-eval"
        )
        return self


__all__ = [
    "ALERTS_VERSION",
    "AlertEngine",
    "AlertEvaluation",
    "AlertRule",
    "alert_metric",
]
