"""The observer hub: one object bundling events, metrics, and timings.

Instrumented subsystems hold an :class:`Observer` and call three things:

* :meth:`Observer.emit` — append a typed event to the shared
  :class:`~repro.obs.events.EventLog`;
* :attr:`Observer.metrics` — labeled counters/gauges/histograms in the
  shared :class:`~repro.obs.registry.MetricRegistry`;
* :meth:`Observer.timed` — a reusable profiling context manager that
  records a block's wall-clock duration into a registry histogram (the
  instrument behind the streaming pipeline's fold/diff/rank timings).

The disabled path is near-zero cost: :data:`NULL_OBSERVER` short-circuits
``emit`` before any payload is consumed, hands out no-op instruments, and
``timed`` returns a shared timer that never reads the clock.  Hot loops
that would otherwise build payload dicts guard on
:attr:`Observer.enabled` first.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING

from repro.obs.events import Event, EventLog
from repro.obs.provenance import ProvenanceTracker
from repro.obs.registry import MetricRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.metrics import Histogram


class Timer:
    """Context manager timing one block into a registry histogram.

    Exposes the measured duration as :attr:`elapsed_s` after exit, so
    callers can also attach it to an event payload.
    """

    __slots__ = ("_histogram", "elapsed_s", "_t0")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self.elapsed_s = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_s = perf_counter() - self._t0
        self._histogram.observe(self.elapsed_s)


class NullTimer:
    """The disabled-path timer: never reads the clock."""

    __slots__ = ()

    elapsed_s = 0.0

    def __enter__(self) -> "NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


#: Shared disabled-path timer instance.
NULL_TIMER = NullTimer()


class Observer:
    """Bundles an event log and a metric registry behind one switch.

    Construct one per run (or per middleware) and thread it through the
    subsystems to instrument; pass nothing — every instrumented
    constructor defaults to :data:`NULL_OBSERVER` — to run dark.
    """

    def __init__(
        self,
        enabled: bool = True,
        event_capacity: int = 65_536,
        histogram_capacity: int = 4096,
        provenance: bool = True,
    ) -> None:
        self.enabled = enabled
        self.events = EventLog(event_capacity if enabled else 1)
        self.metrics = MetricRegistry(
            enabled=enabled, histogram_capacity=histogram_capacity
        )
        #: Live decision-provenance fold, fed by the engine and the alert
        #: engine with every event they emit; None when disabled.  Unlike
        #: the ring-buffered event log this never evicts, so the graph
        #: stays complete even after the log truncates.
        self.provenance: ProvenanceTracker | None = (
            ProvenanceTracker() if (enabled and provenance) else None
        )

    def emit(self, kind: str, time: float, **data: object) -> Event | None:
        """Append one event (None and no work when disabled)."""
        if not self.enabled:
            return None
        return self.events.append(kind, time, data)

    def timed(self, name: str, **labels: str) -> "Timer | NullTimer":
        """A context manager recording the block's duration into the
        ``name`` histogram family (seconds).  Returns the shared no-op
        timer when disabled."""
        if not self.enabled:
            return NULL_TIMER
        return Timer(self.metrics.histogram(name, **labels))


#: The shared disabled observer every instrumented constructor defaults
#: to.  Emitting through it is a single attribute check and return.
NULL_OBSERVER = Observer(enabled=False, event_capacity=1)
