"""The interview-study participants (Table 2.1).

The dissertation publishes the full participant table for both interview
rounds: 20 participants (P1–P20) in the exploratory round and 11 (D1–D11)
in the deep-dive round, across 27 distinct companies.  This module
transcribes the table verbatim and provides the aggregate queries whose
results the chapter quotes (Fig 2.3's interview demographics, average
experience per round).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class InterviewParticipant:
    """One row of Table 2.1.

    Attributes:
        participant_id: P1–P20 (round 1) or D1–D11 (round 2).
        company_type: "startup", "sme", or "corp".
        country: ISO-ish country code from the table.
        app_type: the application model the participant works on.
        domain: the company's application domain.
        role: the participant's role.
        experience_total: total years of relevant experience.
        experience_company: years in the current company.
        team_size: (min, max) of the reported team size range.
        company_key: identifier shared by participants of one company.
    """

    participant_id: str
    company_type: str
    country: str
    app_type: str
    domain: str
    role: str
    experience_total: int
    experience_company: int
    team_size: tuple[int, int]
    company_key: str

    @property
    def interview_round(self) -> int:
        """1 for P-participants, 2 for D-participants."""
        return 1 if self.participant_id.startswith("P") else 2


def _p(pid, ctype, country, app, domain, role, exp, exp_c, lo, hi, company=None):
    return InterviewParticipant(
        participant_id=pid,
        company_type=ctype,
        country=country,
        app_type=app,
        domain=domain,
        role=role,
        experience_total=exp,
        experience_company=exp_c,
        team_size=(lo, hi),
        company_key=company or pid,
    )


#: Table 2.1, transcribed. Participants sharing a company share a
#: company_key (P9/P10/P11; D4/D5; D6/D11 — as stated in Section 2.4).
PARTICIPANTS: tuple[InterviewParticipant, ...] = (
    _p("P1", "sme", "AT", "web", "Sports News & Streaming", "DevOps Engineer", 3, 3, 3, 6),
    _p("P2", "sme", "AT", "enterprise", "Document Composition", "Software Engineer", 4, 4, 3, 5),
    _p("P3", "sme", "CH", "web", "Employee Management", "Software Engineer", 10, 5, 1, 3),
    _p("P4", "sme", "CH", "web", "Telecommunication", "Software Engineer", 15, 4, 3, 7),
    _p("P5", "sme", "AT", "web", "Online Retail", "Software Architect", 5, 5, 15, 20),
    _p("P6", "sme", "AT", "desktop", "SharePoint", "Software Engineer", 4, 4, 2, 7),
    _p("P7", "corp", "UA", "web", "Employee Management", "Software Engineer", 5, 5, 4, 6),
    _p("P8", "sme", "AT", "enterprise", "Insurance", "Software Engineer", 12, 12, 5, 8),
    _p("P9", "sme", "CH", "enterprise", "E-Government", "Solution Architect", 13, 13, 4, 6, company="swiss-pay"),
    _p("P10", "sme", "CH", "web", "Mobile Payment", "Solution Architect", 16, 6, 60, 70, company="swiss-pay"),
    _p("P11", "sme", "CH", "web", "Mobile Payment", "Solution Architect", 11, 4, 15, 20, company="swiss-pay"),
    _p("P12", "corp", "DE", "web", "Cloud Provider", "DevOps Engineer", 1, 1, 9, 11),
    _p("P13", "startup", "AT", "web", "Online Code Quality Analysis", "DevOps Engineer", 16, 1, 1, 1),
    _p("P14", "corp", "IE", "web", "Network Monitoring", "Public Cloud Architect", 10, 1, 6, 8),
    _p("P15", "corp", "US", "web", "Cloud Provider", "Program Manager", 15, 3, 8, 10),
    _p("P16", "sme", "AT", "enterprise", "E-Government", "Project Lead", 15, 9, 3, 7),
    _p("P17", "startup", "US", "web", "Babysitter Platform", "Software Engineer", 4, 2, 6, 8),
    _p("P18", "startup", "US", "web", "Event Management", "Director of Engineering", 5, 1, 5, 7),
    _p("P19", "sme", "US", "web", "E-Commerce Platform", "Software Engineer", 5, 3, 3, 7),
    _p("P20", "sme", "AT", "embedded", "Automotive Software", "Software Engineer", 3, 3, 3, 5),
    _p("D1", "sme", "US", "web", "CMS Provider", "DevOps Engineer", 10, 1, 3, 5),
    _p("D2", "sme", "DE", "web", "Q&A Platform", "Head of Development", 10, 3, 4, 7),
    _p("D3", "startup", "CH", "web", "HR Software", "Head of Development", 10, 7, 4, 5),
    _p("D4", "sme", "DE", "web", "Travel Reviews & Booking", "Software Engineer", 7, 2, 5, 7, company="travel-co"),
    _p("D5", "sme", "DE", "web", "Travel Reviews & Booking", "Software Engineer", 8, 2, 4, 6, company="travel-co"),
    _p("D6", "corp", "CH", "web", "Telecommunication", "Team Lead", 5, 4, 7, 9, company="swiss-telco"),
    _p("D7", "corp", "UK", "web", "Scientific Publisher", "Director of Engineering", 9, 3, 3, 12),
    _p("D8", "sme", "CH", "web", "Network Services", "Team Lead", 30, 3, 5, 8),
    _p("D9", "corp", "US", "web", "Video Streaming", "Head Release Engineering", 19, 3, 5, 9),
    _p("D10", "sme", "CH", "web", "Sustainability Solutions", "DevOps Engineer", 10, 8, 1, 4),
    _p("D11", "corp", "CH", "web", "Telecommunication", "Software Engineer", 10, 2, 5, 10, company="swiss-telco"),
)


def participants(interview_round: int | None = None) -> list[InterviewParticipant]:
    """All participants, optionally filtered by interview round."""
    if interview_round is not None and interview_round not in (1, 2):
        raise ConfigurationError(f"interview rounds are 1 and 2, got {interview_round}")
    return [
        p
        for p in PARTICIPANTS
        if interview_round is None or p.interview_round == interview_round
    ]


def distinct_companies() -> set[str]:
    """Keys of the distinct companies interviewed (27 per the chapter)."""
    return {p.company_key for p in PARTICIPANTS}


def companies_by_type() -> dict[str, int]:
    """Fig 2.3's interview demographics: companies per size class."""
    per_company: dict[str, str] = {}
    for participant in PARTICIPANTS:
        per_company[participant.company_key] = participant.company_type
    out: dict[str, int] = {}
    for company_type in per_company.values():
        out[company_type] = out.get(company_type, 0) + 1
    return out


def participants_by_app_type() -> dict[str, int]:
    """Fig 2.3's interview application models."""
    out: dict[str, int] = {}
    for participant in PARTICIPANTS:
        out[participant.app_type] = out.get(participant.app_type, 0) + 1
    return out


def mean_experience(interview_round: int) -> float:
    """Average total experience of a round (chapter: ~9 and ~12 years)."""
    pool = participants(interview_round)
    return sum(p.experience_total for p in pool) / len(pool)
