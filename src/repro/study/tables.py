"""Recomputing the study tables from the synthetic micro-data."""

from __future__ import annotations

from repro.study.data import COLUMNS, SurveyTable
from repro.study.respondents import Respondent


def _in_column(respondent: Respondent, column: str) -> bool:
    if column == "all":
        return True
    if column in ("web", "other"):
        return respondent.app_type == column
    return respondent.company_size == column


def recompute_table(
    table: SurveyTable, participants: list[Respondent]
) -> dict[str, dict[str, float]]:
    """Recompute per-column percentages from *participants*.

    Returns ``{option: {column: percentage}}`` in the published layout.
    """
    out: dict[str, dict[str, float]] = {}
    for option in table.rows:
        out[option] = {}
        for column in COLUMNS:
            members = [r for r in participants if _in_column(r, column)]
            if not members:
                out[option][column] = 0.0
                continue
            hits = sum(1 for r in members if r.answered(table.table_id, option))
            out[option][column] = 100.0 * hits / len(members)
    return out


def table_deviation(
    table: SurveyTable,
    recomputed: dict[str, dict[str, float]],
    columns: tuple[str, ...] = ("web", "other"),
) -> float:
    """Largest |recomputed - published| over the enforced *columns*.

    Quotas are enforced on the web/other breakdown; the ``all`` column is
    derived and matches wherever the published table is internally
    consistent (Table 2.7's "other" row is not: its ``all`` cell cannot
    follow from its web/other cells — an artifact in the source), and the
    company-size columns' joint distribution is unpublished.
    """
    worst = 0.0
    for option in table.rows:
        for column in columns:
            published = table.percentage(option, column)
            worst = max(worst, abs(recomputed[option][column] - published))
    return worst


def format_table(
    table: SurveyTable, recomputed: dict[str, dict[str, float]]
) -> str:
    """Side-by-side published vs recomputed rendering for the benches."""
    lines = [f"Table {table.table_id}: {table.title}"]
    header = f"{'option':22s}" + "".join(
        f"{column:>12s}" for column in COLUMNS
    )
    lines.append(header)
    for option in table.rows:
        published = " ".join(
            f"{table.percentage(option, c):3d}/{recomputed[option][c]:5.1f}"
            for c in COLUMNS
        )
        lines.append(f"{option:22s}  {published}")
    lines.append("(cells: published% / recomputed%)")
    return "\n".join(lines)
