"""Table 2.5: regression-driven vs business-driven experiments.

The chapter's central qualitative artifact: a dimension-by-dimension
comparison of the two experiment flavors.  Encoded as structured data so
tooling (and tests) can keep the core model consistent with the study's
findings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import ExperimentClass


@dataclass(frozen=True)
class ComparisonDimension:
    """One row of Table 2.5."""

    dimension: str
    regression_driven: str
    business_driven: str


TABLE_2_5: tuple[ComparisonDimension, ...] = (
    ComparisonDimension(
        "main_goals",
        "Mitigation of technical problems (bugs, performance regressions), "
        "health checks, testing scalability on production workload",
        "Evaluation of new features or implementation decisions from a "
        "business perspective",
    ),
    ComparisonDimension(
        "common_practices",
        "Canary releases, dark launches, gradual rollouts",
        "A/B testing",
    ),
    ComparisonDimension(
        "used_metrics",
        "Multiple application and infrastructure level metrics (e.g. "
        "response time), sometimes simple business metrics",
        "Primarily business metrics, sometimes combined with a small "
        "selection of application metrics",
    ),
    ComparisonDimension(
        "data_interpretation",
        "Often intuitive and experience-based, less process driven",
        "More statistically rigorous hypothesis testing on carefully "
        "selected metrics",
    ),
    ComparisonDimension(
        "experiment_duration",
        "Minutes to multiple days",
        "Often in the order of weeks",
    ),
    ComparisonDimension(
        "target_users",
        "Small scoped (small percentages, user groups, regions), sometimes "
        "gradually increased until full rollout",
        "Two or more groups of same, constant size during the experiment",
    ),
    ComparisonDimension(
        "responsibility",
        "Siloization: single team or developers",
        "Multiple teams and services involved; requires coordination and "
        "awareness across team borders",
    ),
)


def comparison_for(experiment_class: ExperimentClass) -> dict[str, str]:
    """Table 2.5's column for one experiment class, keyed by dimension."""
    out: dict[str, str] = {}
    for row in TABLE_2_5:
        out[row.dimension] = (
            row.regression_driven
            if experiment_class is ExperimentClass.REGRESSION_DRIVEN
            else row.business_driven
        )
    return out
