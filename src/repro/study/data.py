"""Published survey results of the Chapter 2 empirical study.

Every table is transcribed from the dissertation.  Columns are the
respondent subgroups the paper breaks results down by: ``all``, ``web``
vs ``other`` application models, and ``startup`` / ``sme`` / ``corp``
company sizes.  Values are percentages of the column's subgroup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Column order used throughout the chapter's tables.
COLUMNS = ("all", "web", "other", "startup", "sme", "corp")

#: Fig 2.3 survey demographics: subgroup sizes of the 187 respondents.
DEMOGRAPHICS = {
    "total": 187,
    "web": 105,
    "other": 82,
    "startup": 35,
    "sme": 99,
    "corp": 53,
    "experience": {"0-2": 16, "3-5": 46, "6-10": 62, ">10": 62},
}


@dataclass(frozen=True)
class SurveyTable:
    """One published table: per-subgroup percentages per answer option.

    Attributes:
        table_id: the dissertation's table number, e.g. ``"2.2"``.
        title: the table caption.
        multiple_choice: whether respondents could pick several options.
        sample_sizes: number of respondents per column subgroup.
        rows: option -> tuple of percentages in :data:`COLUMNS` order.
    """

    table_id: str
    title: str
    multiple_choice: bool
    sample_sizes: dict[str, int]
    rows: dict[str, tuple[int, ...]]

    def __post_init__(self) -> None:
        for option, values in self.rows.items():
            if len(values) != len(COLUMNS):
                raise ConfigurationError(
                    f"table {self.table_id} row {option!r} needs "
                    f"{len(COLUMNS)} values"
                )
        missing = set(COLUMNS) - set(self.sample_sizes)
        if missing:
            raise ConfigurationError(
                f"table {self.table_id} misses sample sizes for {missing}"
            )

    def percentage(self, option: str, column: str) -> int:
        """Published percentage of *option* in *column*."""
        return self.rows[option][COLUMNS.index(column)]


PUBLISHED_TABLES: dict[str, SurveyTable] = {
    "2.2": SurveyTable(
        table_id="2.2",
        title="Implementation techniques in use for continuous experimentation",
        multiple_choice=True,
        sample_sizes={"all": 70, "web": 38, "other": 32, "startup": 8, "sme": 43, "corp": 19},
        rows={
            "other": (6, 8, 3, 12, 5, 5),
            "permissions": (17, 18, 16, 38, 16, 11),
            "dont_know": (20, 13, 28, 12, 21, 21),
            "binaries": (29, 13, 47, 12, 33, 26),
            "traffic_routing": (30, 45, 12, 38, 23, 42),
            "feature_toggles": (36, 45, 25, 50, 35, 32),
        },
    ),
    "2.3": SurveyTable(
        table_id="2.3",
        title="How issues are usually detected",
        multiple_choice=True,
        sample_sizes={"all": 187, "web": 105, "other": 82, "startup": 35, "sme": 99, "corp": 53},
        rows={
            "dont_know_other": (4, 2, 6, 3, 5, 2),
            "monitoring": (76, 83, 67, 89, 72, 75),
            "customer_feedback": (85, 81, 90, 80, 88, 83),
        },
    ),
    "2.4": SurveyTable(
        table_id="2.4",
        title="Phase in the release process after which developers hand off responsibility",
        multiple_choice=False,
        sample_sizes={"all": 187, "web": 105, "other": 82, "startup": 35, "sme": 99, "corp": 53},
        rows={
            "dont_know_other": (4, 2, 5, 3, 1, 8),
            "preproduction": (9, 10, 9, 9, 8, 11),
            "staging": (12, 15, 9, 11, 12, 13),
            "development": (19, 12, 28, 3, 23, 23),
            "never": (56, 61, 50, 74, 56, 45),
        },
    ),
    "2.6": SurveyTable(
        table_id="2.6",
        title="Usage of regression-driven experimentation",
        multiple_choice=False,
        sample_sizes={"all": 187, "web": 105, "other": 82, "startup": 35, "sme": 99, "corp": 53},
        rows={
            "for_all_features": (18, 15, 22, 6, 22, 19),
            "for_some_features": (19, 21, 17, 17, 21, 17),
            "no_experimentation": (63, 64, 61, 77, 57, 64),
        },
    ),
    "2.7": SurveyTable(
        table_id="2.7",
        title="Reasons against conducting regression-driven experiments",
        multiple_choice=True,
        sample_sizes={"all": 117, "web": 67, "other": 50, "startup": 27, "sme": 56, "corp": 34},
        rows={
            "other": (18, 1, 10, 7, 4, 6),
            "lack_of_expertise": (26, 27, 24, 15, 34, 21),
            "no_business_sense": (39, 39, 40, 41, 36, 44),
            "number_customers": (39, 46, 30, 56, 38, 29),
            "architecture": (57, 64, 48, 44, 66, 53),
        },
    ),
    "2.8": SurveyTable(
        table_id="2.8",
        title="Reasons against conducting business-driven experiments",
        multiple_choice=True,
        sample_sizes={"all": 144, "web": 78, "other": 66, "startup": 25, "sme": 74, "corp": 45},
        rows={
            "other": (6, 4, 8, 4, 1, 13),
            "dont_know": (6, 5, 6, 4, 7, 4),
            "lack_of_knowledge": (15, 19, 11, 12, 15, 18),
            "policy_domain": (21, 14, 29, 12, 22, 24),
            "number_of_users": (28, 32, 23, 44, 27, 20),
            "investments": (33, 35, 30, 44, 31, 29),
            "architecture": (50, 53, 47, 40, 59, 40),
        },
    ),
}

#: Headline adoption numbers quoted in the chapter's prose.
ADOPTION = {
    "regression_driven": 37,   # % using canaries / dark launches / rollouts
    "business_driven": 23,     # % using A/B testing
    "feature_toggles": 36,     # % of experimenters using toggles
    "traffic_routing": 30,     # % using runtime traffic routing
    "ab_on_ui": 88,            # % of A/B users testing UI changes
    "ab_on_backend": 44,       # % of A/B users testing backend features
}


def published_table(table_id: str) -> SurveyTable:
    """Look up a published table by its dissertation number."""
    try:
        return PUBLISHED_TABLES[table_id]
    except KeyError:
        raise ConfigurationError(
            f"no published table {table_id!r}; available: "
            f"{sorted(PUBLISHED_TABLES)}"
        ) from None
