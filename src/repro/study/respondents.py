"""Synthetic survey respondents matched to the published marginals.

Raw study data is unavailable; what the tables publish are subgroup
percentages.  We synthesize 187 respondents via *deterministic quota
assignment*: within each column subgroup, exactly
``round(percentage * subgroup_size)`` respondents receive an answer
option.  Quotas are filled against the web/other subgroup split (the
chapter's primary breakdown); company-size columns then land close to
the published values but are not separately enforced — matching the
information actually available.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.rng import SeededRng
from repro.study.data import DEMOGRAPHICS, SurveyTable


@dataclass
class Respondent:
    """One synthetic survey participant."""

    respondent_id: int
    app_type: str          # "web" | "other"
    company_size: str      # "startup" | "sme" | "corp"
    experience: str        # "0-2" | "3-5" | "6-10" | ">10"
    answers: dict[str, set[str]] = field(default_factory=dict)

    def answered(self, table_id: str, option: str) -> bool:
        """Whether the respondent picked *option* in *table_id*."""
        return option in self.answers.get(table_id, set())


def generate_respondents(seed: int = 2016) -> list[Respondent]:
    """Build the 187-respondent synthetic dataset."""
    rng = SeededRng(seed)
    respondents: list[Respondent] = []
    sizes = (
        ["startup"] * DEMOGRAPHICS["startup"]
        + ["sme"] * DEMOGRAPHICS["sme"]
        + ["corp"] * DEMOGRAPHICS["corp"]
    )
    rng.shuffle(sizes)
    experience_pool: list[str] = []
    for band, count in DEMOGRAPHICS["experience"].items():
        experience_pool.extend([band] * count)
    while len(experience_pool) < DEMOGRAPHICS["total"]:
        experience_pool.append("6-10")
    rng.shuffle(experience_pool)
    for index in range(DEMOGRAPHICS["total"]):
        app_type = "web" if index < DEMOGRAPHICS["web"] else "other"
        respondents.append(
            Respondent(
                respondent_id=index,
                app_type=app_type,
                company_size=sizes[index],
                experience=experience_pool[index],
            )
        )
    return respondents


def assign_table(
    respondents: list[Respondent],
    table: SurveyTable,
    seed: int = 7,
) -> list[Respondent]:
    """Fill quota answers for *table* into a subset of *respondents*.

    Returns the participating subset (tables 2.2/2.7/2.8 were follow-up
    questions only a branch of the survey reached).  For single-choice
    tables each participant receives exactly one option; for
    multiple-choice tables options are assigned independently per quota.
    """
    rng = SeededRng(seed + hash(table.table_id) % 1000)
    participants: list[Respondent] = []
    for app_type in ("web", "other"):
        pool = [r for r in respondents if r.app_type == app_type]
        quota = table.sample_sizes[app_type]
        rng.shuffle(pool)
        participants.extend(pool[:quota])

    for app_type in ("web", "other"):
        subgroup = [r for r in participants if r.app_type == app_type]
        rng.shuffle(subgroup)
        if table.multiple_choice:
            for option in table.rows:
                share = table.percentage(option, app_type) / 100.0
                count = round(share * len(subgroup))
                rng.shuffle(subgroup)
                for respondent in subgroup[:count]:
                    respondent.answers.setdefault(table.table_id, set()).add(option)
        else:
            cursor = 0
            options = list(table.rows)
            for option_index, option in enumerate(options):
                share = table.percentage(option, app_type) / 100.0
                count = round(share * len(subgroup))
                if option_index == len(options) - 1:
                    count = len(subgroup) - cursor  # absorb rounding drift
                for respondent in subgroup[cursor:cursor + count]:
                    respondent.answers[table.table_id] = {option}
                cursor += count
    return participants
