"""The empirical study on continuous experimentation (Chapter 2).

The chapter's artifacts are survey tables (Tables 2.2–2.9, Fig 2.3), not
a system.  The raw study data is not public, so this package bundles the
*published* aggregate numbers, generates a synthetic respondent dataset
whose marginals match them (deterministic quota assignment), and
recomputes every table from that micro-data — the closest faithful
reproduction available offline.
"""

from repro.study.data import (
    PUBLISHED_TABLES,
    SurveyTable,
    published_table,
)
from repro.study.respondents import Respondent, generate_respondents
from repro.study.tables import recompute_table, table_deviation
from repro.study.interviews import InterviewParticipant, participants

__all__ = [
    "PUBLISHED_TABLES",
    "SurveyTable",
    "published_table",
    "Respondent",
    "generate_respondents",
    "recompute_table",
    "table_deviation",
    "InterviewParticipant",
    "participants",
]
