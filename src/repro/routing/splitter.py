"""Builders for the standard experiment traffic splits.

One helper per experimentation practice from Section 2.2.1, returning the
variant tuples an :class:`~repro.routing.rules.ExperimentRoute` consumes.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.routing.rules import Variant


def canary_split(
    stable_version: str, canary_version: str, canary_fraction: float
) -> tuple[Variant, ...]:
    """A canary release: a small fraction to the new version.

    Fig 2.1's left panel — e.g. 5% to the canary, 95% stay on stable.
    """
    if not 0.0 < canary_fraction < 1.0:
        raise ConfigurationError(
            f"canary fraction must be in (0, 1), got {canary_fraction}"
        )
    return (
        Variant(stable_version, 1.0 - canary_fraction),
        Variant(canary_version, canary_fraction),
    )


def ab_split(
    version_a: str, version_b: str, fraction_a: float = 0.5
) -> tuple[Variant, ...]:
    """An A/B test: the eligible audience is split between two variants."""
    if not 0.0 < fraction_a < 1.0:
        raise ConfigurationError(
            f"fraction_a must be in (0, 1), got {fraction_a}"
        )
    return (Variant(version_a, fraction_a), Variant(version_b, 1.0 - fraction_a))


def dark_launch_split(stable_version: str) -> tuple[Variant, ...]:
    """A dark launch: everyone stays on stable; duplication is configured
    through the route's ``shadow_versions``."""
    return (Variant(stable_version, 1.0),)


def rollout_split(
    stable_version: str, new_version: str, rollout_fraction: float
) -> tuple[Variant, ...]:
    """One step of a gradual rollout: *rollout_fraction* on the new version.

    At fraction 1.0 the split degenerates to the new version only (the
    rollout completed); at 0.0 to stable only (rolled back).
    """
    if not 0.0 <= rollout_fraction <= 1.0:
        raise ConfigurationError(
            f"rollout fraction must be in [0, 1], got {rollout_fraction}"
        )
    if rollout_fraction == 0.0:
        return (Variant(stable_version, 1.0),)
    if rollout_fraction == 1.0:
        return (Variant(new_version, 1.0),)
    return (
        Variant(stable_version, 1.0 - rollout_fraction),
        Variant(new_version, rollout_fraction),
    )
