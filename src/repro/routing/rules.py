"""Routing rules: audience filters and variant splits.

An :class:`ExperimentRoute` captures one experiment's routing
configuration for one service: *who* is eligible (audience filter on user
group or request headers), *how* eligible traffic is split across
versions (sticky, hash-based), and which versions receive duplicated
shadow traffic (dark launches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.traffic.workload import Request


@dataclass(frozen=True)
class AudienceFilter:
    """Selects the requests an experiment may touch.

    Empty filters match everything.  *groups* matches the request's user
    group; *headers* requires every listed header to have the listed
    value (cookie/device filtering in the paper's terminology).
    """

    groups: frozenset[str] = frozenset()
    headers: Mapping[str, str] = field(default_factory=dict)

    def matches(self, request: Request) -> bool:
        """Whether *request* belongs to the experiment's audience."""
        if self.groups and request.group not in self.groups:
            return False
        for key, value in self.headers.items():
            if request.headers.get(key) != value:
                return False
        return True


@dataclass(frozen=True)
class Variant:
    """One arm of a traffic split."""

    version: str
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError(
                f"variant fraction must be in [0, 1], got {self.fraction}"
            )


@dataclass(frozen=True)
class ExperimentRoute:
    """Routing configuration of one experiment on one service.

    Attributes:
        experiment: experiment name; doubles as the bucketing salt, so
            distinct experiments produce independent user assignments.
        service: the service whose calls the route intercepts.
        variants: the traffic split; fractions must sum to 1.
        audience: which requests are eligible (others go to stable).
        shadow_versions: versions receiving duplicated traffic.
    """

    experiment: str
    service: str
    variants: tuple[Variant, ...]
    audience: AudienceFilter = AudienceFilter()
    shadow_versions: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.experiment or not self.service:
            raise ConfigurationError("experiment and service must be non-empty")
        if not self.variants and not self.shadow_versions:
            raise ConfigurationError(
                "route needs at least one variant or shadow version"
            )
        if self.variants:
            total = sum(v.fraction for v in self.variants)
            if abs(total - 1.0) > 1e-9:
                raise ConfigurationError(
                    f"variant fractions must sum to 1.0, got {total:.6f}"
                )

    def with_variants(self, variants: Sequence[Variant]) -> "ExperimentRoute":
        """Copy of the route with a new split (gradual-rollout steps)."""
        return ExperimentRoute(
            self.experiment,
            self.service,
            tuple(variants),
            self.audience,
            self.shadow_versions,
        )
