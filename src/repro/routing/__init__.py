"""Runtime traffic routing.

The study (Chapter 2) identified runtime traffic routing as the
implementation technique that escapes feature-toggle technical debt:
experimentation logic moves from source code to the network level, and
services stay black boxes.  Bifrost builds on exactly this mechanism.

This package provides the routing rules (audience filters + sticky
variant splits + shadow duplication) and :class:`VersionRouter`, the
router the simulated runtime consults on every service call.
"""

from repro.routing.assignment import StickyAssigner
from repro.routing.rules import AudienceFilter, ExperimentRoute, Variant
from repro.routing.proxy import VersionRouter
from repro.routing.splitter import (
    ab_split,
    canary_split,
    dark_launch_split,
    rollout_split,
)

__all__ = [
    "StickyAssigner",
    "AudienceFilter",
    "ExperimentRoute",
    "Variant",
    "VersionRouter",
    "ab_split",
    "canary_split",
    "dark_launch_split",
    "rollout_split",
]
