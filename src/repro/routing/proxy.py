"""The version router: the simulated proxy/sidecar layer.

Plays the role of Bifrost's "lightweight proxies placed in front of
service instances" (the same approach Istio later productized, Section
1.4.2).  Each service can have at most one active
:class:`~repro.routing.rules.ExperimentRoute`; calls to routed services
traverse the proxy (costing one hop of overhead), calls to unrouted
services go straight to the stable version at zero overhead.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.microservices.runtime import RoutingDecision
from repro.routing.assignment import StickyAssigner
from repro.routing.rules import ExperimentRoute
from repro.traffic.workload import Request


class VersionRouter:
    """Routes service calls according to installed experiment routes."""

    def __init__(self) -> None:
        self._routes: dict[str, ExperimentRoute] = {}
        self._assigners: dict[str, StickyAssigner] = {}

    @property
    def routed_services(self) -> list[str]:
        """Services currently under an experiment route."""
        return list(self._routes)

    def install(self, route: ExperimentRoute) -> None:
        """Install or replace the route for the route's service.

        Replacing is how gradual rollouts advance: the engine installs a
        new split for the same experiment.  Installing a route of a
        *different* experiment over an active one is rejected — that is
        the overlap Fenrir's scheduling exists to prevent.
        """
        existing = self._routes.get(route.service)
        if existing is not None and existing.experiment != route.experiment:
            raise RoutingError(
                f"service {route.service!r} is already routed by experiment "
                f"{existing.experiment!r}; {route.experiment!r} would overlap"
            )
        self._routes[route.service] = route
        if route.experiment not in self._assigners:
            self._assigners[route.experiment] = StickyAssigner(route.experiment)

    def uninstall(self, service: str) -> None:
        """Remove the route of *service*; calls fall back to stable."""
        self._routes.pop(service, None)

    def active_route(self, service: str) -> ExperimentRoute | None:
        """The installed route of *service*, if any."""
        return self._routes.get(service)

    def assigner(self, experiment: str) -> StickyAssigner:
        """The sticky assigner of *experiment* (sample-size tracking)."""
        try:
            return self._assigners[experiment]
        except KeyError:
            raise RoutingError(f"no assigner for experiment {experiment!r}") from None

    def route(self, request: Request, service: str) -> RoutingDecision:
        """Resolve one call — the :class:`~repro.microservices.runtime.Router`
        protocol implementation the runtime invokes per hop."""
        route = self._routes.get(service)
        if route is None:
            return RoutingDecision()
        if not route.audience.matches(request):
            # Ineligible traffic still traverses the proxy but is pinned
            # to the stable version.
            return RoutingDecision(version=None, proxy_hops=1)
        version: str | None = None
        if route.variants:
            assigner = self._assigners[route.experiment]
            version = assigner.assign(request.user_id, route.variants)
        return RoutingDecision(
            version=version,
            shadow_versions=route.shadow_versions,
            proxy_hops=1,
        )
