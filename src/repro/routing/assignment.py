"""Sticky user-to-variant assignment.

Assignment is derived from a salted hash of the user id, so it is
deterministic (the same user always sees the same variant within one
experiment), stateless (no synchronization point — cf. the "single points
of failure" discussion in Section 1.5.2), and independent across
experiments with different names.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.errors import ConfigurationError
from repro.routing.rules import Variant
from repro.traffic.users import bucket_user

_BUCKETS = 10_000


class StickyAssigner:
    """Maps users to variants by salted hash bucketing.

    Also counts how many distinct assignments each variant received,
    which experiment analysis uses to track collected sample sizes.
    """

    def __init__(self, salt: str) -> None:
        if not salt:
            raise ConfigurationError("assigner salt must be non-empty")
        self.salt = salt
        self._counts: Counter[str] = Counter()
        self._seen: set[str] = set()

    def assign(self, user_id: str, variants: Sequence[Variant]) -> str:
        """Return the version of the variant *user_id* falls into."""
        if not variants:
            raise ConfigurationError("cannot assign across zero variants")
        bucket = bucket_user(user_id, self.salt, _BUCKETS)
        cumulative = 0.0
        chosen = variants[-1].version
        for variant in variants:
            cumulative += variant.fraction
            if bucket < cumulative * _BUCKETS:
                chosen = variant.version
                break
        if user_id not in self._seen:
            self._seen.add(user_id)
            self._counts[chosen] += 1
        return chosen

    def distinct_users(self, version: str) -> int:
        """How many distinct users have been assigned to *version*."""
        return self._counts[version]

    def total_distinct_users(self) -> int:
        """Distinct users assigned across all variants."""
        return len(self._seen)
