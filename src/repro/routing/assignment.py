"""Sticky user-to-variant assignment.

Assignment is derived from a salted hash of the user id, so it is
deterministic (the same user always sees the same variant within one
experiment), stateless (no synchronization point — cf. the "single points
of failure" discussion in Section 1.5.2), and independent across
experiments with different names.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.routing.rules import Variant
from repro.traffic.users import bucket_user, bucket_users

_BUCKETS = 10_000


class StickyAssigner:
    """Maps users to variants by salted hash bucketing.

    Also counts how many distinct assignments each variant received,
    which experiment analysis uses to track collected sample sizes.
    """

    def __init__(self, salt: str) -> None:
        if not salt:
            raise ConfigurationError("assigner salt must be non-empty")
        self.salt = salt
        self._counts: Counter[str] = Counter()
        self._seen: set[str] = set()

    def assign(self, user_id: str, variants: Sequence[Variant]) -> str:
        """Return the version of the variant *user_id* falls into."""
        if not variants:
            raise ConfigurationError("cannot assign across zero variants")
        bucket = bucket_user(user_id, self.salt, _BUCKETS)
        cumulative = 0.0
        chosen = variants[-1].version
        for variant in variants:
            cumulative += variant.fraction
            if bucket < cumulative * _BUCKETS:
                chosen = variant.version
                break
        if user_id not in self._seen:
            self._seen.add(user_id)
            self._counts[chosen] += 1
        return chosen

    def assign_many(
        self, user_ids: Sequence[str], variants: Sequence[Variant]
    ) -> list[str]:
        """Assign many users at once; element *i* equals
        ``assign(user_ids[i], variants)`` exactly, including the
        distinct-user bookkeeping.

        Buckets the whole array with one memoized salt midstate, then
        picks variants via a vectorized threshold search.  The thresholds
        are accumulated with the same left-to-right float additions as the
        scalar loop, and the comparison (``bucket < cumulative * buckets``)
        is exact in float64 for bucket counts this small — so the split is
        bit-identical, not merely statistically equivalent.
        """
        if not variants:
            raise ConfigurationError("cannot assign across zero variants")
        buckets = np.asarray(
            bucket_users(user_ids, self.salt, _BUCKETS), dtype=np.float64
        )
        thresholds = []
        cumulative = 0.0
        for variant in variants:
            cumulative += variant.fraction
            thresholds.append(cumulative * _BUCKETS)
        # side="right" yields the first threshold strictly above the
        # bucket — the scalar loop's `bucket < cumulative * _BUCKETS`;
        # buckets past every threshold fall to the last variant, like the
        # scalar loop's default.
        indices = np.searchsorted(
            np.asarray(thresholds), buckets, side="right"
        )
        last = len(variants) - 1
        versions = [v.version for v in variants]
        chosen = [versions[min(i, last)] for i in indices.tolist()]
        seen = self._seen
        counts = self._counts
        for user_id, version in zip(user_ids, chosen):
            if user_id not in seen:
                seen.add(user_id)
                counts[version] += 1
        return chosen

    def distinct_users(self, version: str) -> int:
        """How many distinct users have been assigned to *version*."""
        return self._counts[version]

    def total_distinct_users(self) -> int:
        """Distinct users assigned across all variants."""
        return len(self._seen)
