"""The batch execution kernel: million-request replay on the scalar semantics.

:func:`run_batches` replays columnar :class:`~repro.traffic.batch.RequestBatch`
chunks against a :class:`~repro.microservices.runtime.Runtime`, interleaved
with simulation-engine events exactly like the scalar
``Bifrost.run`` loop — but between events it executes whole *slices* of
requests through a compiled fast path instead of materializing one
``Request``/``Span``/``RequestOutcome`` object chain per arrival.

Equivalence contract (property-tested in
``tests/property/test_batch_equivalence.py``):

- The scalar path is the source of truth.  The kernel consumes the
  runtime's RNG stream in exactly the scalar draw order per hop
  (latency sample, error draw, per-probabilistic-call draw), maintains
  the same load-tracker deques, performs the same float arithmetic in
  the same association order, and feeds the same (timestamp, value)
  sequences into the metric store — so routing decisions, metric
  aggregates, and therefore every promotion/abort decision an engine
  makes on top of them are bit-identical, not statistically close.
- Anything the fast path cannot reproduce exactly — resilience
  policies, open-ended network gates, active fault campaigns, shadow
  routes, header audiences, trace subscribers — is detected *per
  slice* and that slice falls back to the scalar path wholesale
  (:class:`BatchRunResult` counts slices and reasons).  Event
  boundaries delimit slices, and all of those conditions only change
  at events, so a condition can never flip mid-slice.

Memory behaviour: the kernel buffers per-(service, version) metric
columns in plain lists and flushes them with
:meth:`~repro.telemetry.store.MetricStore.extend` at slice ends (the
store keeps samples in ``array('d')`` columns), and recent request
durations go into a fixed-size :class:`FloatRing` — so a ten-million
request replay holds O(slice) transient state, not O(run).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, ExecutionError
from repro.simulation.latency import (
    ConstantLatency,
    LoadSensitiveLatency,
    LogNormalLatency,
    ParetoLatency,
)
from repro.tracing.span import Span, next_span_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.microservices.faults import FaultCampaign
    from repro.microservices.runtime import Runtime
    from repro.simulation.engine import SimulationEngine
    from repro.traffic.batch import RequestBatch

#: Mirrors ``repro.microservices.runtime._MAX_CALL_DEPTH`` (not imported
#: at module level to keep package initialization acyclic).
_MAX_CALL_DEPTH = 32

#: Default capacity of the recent-durations ring on :class:`BatchRunResult`.
DEFAULT_RING_CAPACITY = 65_536


class FloatRing:
    """Fixed-capacity float ring buffer with vectorized bulk pushes.

    Backed by one preallocated float64 array; pushes past the capacity
    overwrite the oldest samples.  ``push_many`` writes a whole chunk
    with at most two slice assignments (wraparound), which is what lets
    the batch kernel keep "recent durations" for a million-request run
    without ever growing a list.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError("ring capacity must be positive")
        self.capacity = capacity
        self._buffer = np.zeros(capacity, dtype=np.float64)
        self._pushed = 0

    def push(self, value: float) -> None:
        """Append one sample, evicting the oldest when full."""
        self._buffer[self._pushed % self.capacity] = value
        self._pushed += 1

    def push_many(self, values: Sequence[float] | np.ndarray) -> None:
        """Append a chunk of samples in one or two slice writes."""
        chunk = np.asarray(values, dtype=np.float64)
        n = len(chunk)
        if n == 0:
            return
        capacity = self.capacity
        if n >= capacity:
            # Everything currently retained is evicted; store the chunk's
            # tail rotated so the oldest sample sits where the post-push
            # counter says it should.
            self._pushed += n
            start = self._pushed % capacity
            tail = chunk[-capacity:]
            self._buffer[start:] = tail[: capacity - start]
            self._buffer[:start] = tail[capacity - start :]
            return
        start = self._pushed % capacity
        end = start + n
        if end <= capacity:
            self._buffer[start:end] = chunk
        else:
            split = capacity - start
            self._buffer[start:] = chunk[:split]
            self._buffer[: end - capacity] = chunk[split:]
        self._pushed += n

    def __len__(self) -> int:
        return min(self._pushed, self.capacity)

    @property
    def total_pushed(self) -> int:
        """How many samples were ever pushed (including evicted ones)."""
        return self._pushed

    def values(self) -> np.ndarray:
        """Retained samples, oldest first (a copy)."""
        if self._pushed <= self.capacity:
            return self._buffer[: self._pushed].copy()
        start = self._pushed % self.capacity
        return np.concatenate((self._buffer[start:], self._buffer[:start]))


@dataclass(frozen=True)
class BatchOptions:
    """Tuning knobs of :func:`run_batches`.

    Attributes:
        record_traces: when True, the fast path materializes real spans
            and feeds the trace collector per request (slower, but the
            traces are bit-identical to the scalar path's); when False
            (default), traces are skipped entirely and only metrics are
            recorded — trace ids are still consumed so later scalar
            requests keep their scalar-run ids.
        ring_capacity: size of the recent-durations ring on the result.
    """

    record_traces: bool = False
    ring_capacity: int = DEFAULT_RING_CAPACITY


@dataclass
class BatchRunResult:
    """Aggregate outcome of one :func:`run_batches` replay."""

    requests: int = 0
    errors: int = 0
    duration_sum_ms: float = 0.0
    fast_requests: int = 0
    fallback_requests: int = 0
    fast_slices: int = 0
    fallback_slices: int = 0
    fallback_reasons: Counter = field(default_factory=Counter)
    recent_durations: FloatRing = field(
        default_factory=lambda: FloatRing(DEFAULT_RING_CAPACITY)
    )

    @property
    def mean_duration_ms(self) -> float:
        """Mean end-user duration across every executed request."""
        return self.duration_sum_ms / self.requests if self.requests else 0.0

    @property
    def error_rate(self) -> float:
        """Fraction of executed requests that failed."""
        return self.errors / self.requests if self.requests else 0.0

    def _add_fast(self, durations: list, error_count: int) -> None:
        n = len(durations)
        self.requests += n
        self.fast_requests += n
        self.errors += error_count
        self.duration_sum_ms += math.fsum(durations)
        self.recent_durations.push_many(durations)

    def _add_scalar(self, duration_ms: float, error: bool) -> None:
        self.requests += 1
        self.fallback_requests += 1
        if error:
            self.errors += 1
        self.duration_sum_ms += duration_ms
        self.recent_durations.push(duration_ms)


def _compile_sampler(model, kernel):
    """Specialize one latency model into ``(sample(load) -> ms, needs_load)``.

    Known model types bind their parameters and the raw RNG method
    directly (skipping attribute lookups and the :class:`SeededRng`
    delegation layer); unknown subclasses fall back to generic
    ``model.sample(rng, load)`` dispatch, conservatively marked
    load-dependent.  Either way the *draws* are the scalar path's.
    """
    kind = type(model)
    if kind is ConstantLatency:
        value = model.value_ms
        return (lambda load, _v=value: _v), False
    if kind is LogNormalLatency:
        if model.sigma == 0:
            value = model.median_ms
            return (lambda load, _v=value: _v), False
        draw = kernel.raw.lognormvariate
        return (
            lambda load, _d=draw, _mu=model._mu, _s=model.sigma: _d(_mu, _s)
        ), False
    if kind is ParetoLatency:
        draw = kernel.raw.paretovariate
        return (
            lambda load, _d=draw, _sc=model.scale_ms, _a=model.alpha: _sc * _d(_a)
        ), False
    if kind is LoadSensitiveLatency:
        # Flatten the common base models into a single closure — the
        # per-hop call chain (wrapper -> base -> SeededRng -> Random) is
        # measurable at millions of samples.  Float semantics match the
        # scalar path: base sample first, then multiply by the inflation.
        base = model.base
        base_kind = type(base)
        pressure = model.pressure
        if base_kind is LogNormalLatency and base.sigma != 0:
            draw = kernel.raw.lognormvariate

            def sample(load, _d=draw, _mu=base._mu, _s=base.sigma, _p=pressure):
                return _d(_mu, _s) * (1.0 + _p * max(0.0, load - 1.0))

            return sample, True
        if base_kind is ConstantLatency or base_kind is LogNormalLatency:
            value = (
                base.value_ms if base_kind is ConstantLatency else base.median_ms
            )

            def sample(load, _v=value, _p=pressure):
                return _v * (1.0 + _p * max(0.0, load - 1.0))

            return sample, True
        if base_kind is ParetoLatency:
            draw = kernel.raw.paretovariate

            def sample(
                load, _d=draw, _sc=base.scale_ms, _a=base.alpha, _p=pressure
            ):
                return _sc * _d(_a) * (1.0 + _p * max(0.0, load - 1.0))

            return sample, True
        inner, _ = _compile_sampler(base, kernel)

        def sample(load, _inner=inner, _p=pressure):
            return _inner(load) * (1.0 + _p * max(0.0, load - 1.0))

        return sample, True
    seeded = kernel.seeded
    return (lambda load, _m=model, _rng=seeded: _m.sample(_rng, load)), True


# Node record layout (plain list: index access beats attribute access in
# the per-hop loop).  One node per (service, endpoint, version).
_N_SAMPLE = 0  # compiled latency sampler: load -> ms
_N_ERROR_RATE = 1  # endpoint error probability
_N_CHILDREN = 2  # tuple of (probability, service, endpoint) descriptors
_N_PARALLEL = 3  # fan-out vs sequential children
_N_ARRIVALS = 4  # the runtime LoadTracker's deque for this version
_N_CAPACITY = 5  # deployed capacity in rps
_N_TS_BUF = 6  # buffered span start times
_N_DUR_BUF = 7  # buffered span durations
_N_ERR_BUF = 8  # buffered span error flags
_N_NEEDS_LOAD = 9  # whether the sampler reads the load value
_N_PROXY_MS = 10  # per-hop proxy overhead (routed services only)
_N_SERVICE = 11
_N_VERSION = 12
_N_ENDPOINT = 13


class _SliceKernel:
    """Compiled execution state for one event-free slice of requests.

    Built fresh per slice: routes, endpoint specs, and fault state only
    change at engine events (= slice boundaries), so everything resolved
    here — samplers, error rates, children, variant thresholds — is
    constant for the slice's lifetime.  Children are resolved *lazily*
    during execution (descriptors, not node references) so probabilistic
    call cycles behave exactly like the scalar path: the depth guard
    trips only when a request actually recurses past the limit.
    """

    def __init__(self, runtime: "Runtime", router, population) -> None:
        self._runtime = runtime
        self._router = router
        self._app = runtime.application
        self._proxy_ms = runtime.proxy_overhead_ms
        self._window = runtime.load.window_seconds
        self.seeded = runtime.rng
        self.raw = runtime.rng.raw
        self._random = self.raw.random
        self._population = population
        self._group_codes = population.group_codes()
        self._nodes: dict = {}
        self._edges: dict = {}
        self._route_recs: dict = {}
        self._buffers: dict = {}

    # -- compilation -------------------------------------------------------

    def entry_edge(self, entry: str):
        service, _, endpoint = entry.partition(".")
        if not endpoint:
            raise ExecutionError(
                f"request entry must be 'service.endpoint', got {entry!r}"
            )
        return self._edge(service, endpoint)

    def _edge(self, service: str, endpoint: str):
        """An edge is ``(route_record | None, node | {version: node})``."""
        key = (service, endpoint)
        edge = self._edges.get(key)
        if edge is not None:
            return edge
        router = self._router
        route = router.active_route(service) if router is not None else None
        if route is None:
            edge = (None, self._node(service, endpoint, None, 0.0))
        else:
            rec = self._route_rec(service, route)
            nodes = {}
            for variant in route.variants:
                nodes[variant.version] = self._node(
                    service, endpoint, variant.version, self._proxy_ms
                )
            stable = rec[4]
            if stable not in nodes:
                nodes[stable] = self._node(
                    service, endpoint, stable, self._proxy_ms
                )
            edge = (rec, nodes)
        self._edges[key] = edge
        return edge

    def _route_rec(self, service: str, route):
        """Per-service routing record: [memo, assigner, variants, eligible
        group codes (None = all), stable version]."""
        rec = self._route_recs.get(service)
        if rec is None:
            eligible = None
            if route.audience.groups:
                eligible = {
                    code
                    for code, name in enumerate(self._population.group_names)
                    if name in route.audience.groups
                }
            assigner = (
                self._router.assigner(route.experiment) if route.variants else None
            )
            stable = self._app.service(service).stable_version
            rec = [{}, assigner, route.variants, eligible, stable]
            self._route_recs[service] = rec
        return rec

    def _node(self, service: str, endpoint: str, version_name: str | None, proxy_ms: float):
        if version_name is None:
            version_name = self._app.service(service).stable_version
        key = (service, endpoint, version_name)
        node = self._nodes.get(key)
        if node is not None:
            return node
        version = self._app.service(service).get(version_name)
        spec = version.endpoint(endpoint)
        sample, needs_load = _compile_sampler(spec.latency, self)
        buffers = self._buffers.setdefault((service, version_name), ([], [], []))
        node = [
            sample,
            spec.error_rate,
            tuple((c.probability, c.service, c.endpoint) for c in spec.calls),
            bool(spec.parallel_calls),
            self._runtime.load.arrivals_for(service, version_name),
            version.total_capacity_rps,
            buffers[0],
            buffers[1],
            buffers[2],
            needs_load,
            proxy_ms,
            service,
            version_name,
            endpoint,
        ]
        self._nodes[key] = node
        return node

    # -- variant assignment ------------------------------------------------

    def _assign(self, rec, user_index: int, group_code: int) -> str:
        eligible = rec[3]
        if eligible is not None and group_code not in eligible:
            version = rec[4]
        elif rec[2]:
            version = rec[1].assign(
                self._population.user_at(user_index), rec[2]
            )
        else:
            version = rec[4]
        rec[0][user_index] = version
        return version

    def prefill_assignments(self, batch: "RequestBatch", lo: int, hi: int) -> None:
        """Vectorize variant assignment for certainly-reached services.

        For every routed service that *every* request in the slice is
        guaranteed to traverse (reachable from each present entry point
        through probability-1.0 calls only, across all servable
        versions), bucket the slice's distinct users in one
        :meth:`~repro.routing.assignment.StickyAssigner.assign_many`
        call.  Probabilistically-reached services keep the lazy per-user
        path so the assigner's distinct-user bookkeeping only ever sees
        users the scalar path would have assigned.
        """
        router = self._router
        if router is None:
            return
        routed = router.routed_services
        if not routed:
            return
        if len(batch.entries) == 1:
            present = [batch.entries[0]]
        else:
            present = [
                batch.entries[code]
                for code in np.unique(batch.entry_codes[lo:hi]).tolist()
            ]
        certain: set[str] | None = None
        for entry in present:
            services = self._certain_services(entry)
            certain = services if certain is None else certain & services
            if not certain:
                return
        population = self._population
        group_codes = self._group_codes
        distinct = np.unique(batch.user_indices[lo:hi]).tolist()
        for service in routed:
            if certain is None or service not in certain:
                continue
            route = router.active_route(service)
            if not route.variants:
                continue
            rec = self._route_rec(service, route)
            memo, assigner, variants, eligible, stable = rec
            if eligible is None:
                user_ids = [population.user_at(i) for i in distinct]
                for index, version in zip(
                    distinct, assigner.assign_many(user_ids, variants)
                ):
                    memo[index] = version
            else:
                kept_indices: list[int] = []
                kept_ids: list[str] = []
                for index in distinct:
                    if group_codes[index] in eligible:
                        kept_indices.append(index)
                        kept_ids.append(population.user_at(index))
                    else:
                        memo[index] = stable
                if kept_ids:
                    for index, version in zip(
                        kept_indices, assigner.assign_many(kept_ids, variants)
                    ):
                        memo[index] = version

    def _certain_services(self, entry: str) -> set[str]:
        """Services every request entering at *entry* traverses for sure.

        Follows only calls with probability >= 1 that appear in *every*
        version a service might serve with (stable plus any routed
        variants) — the conservative closure under which vectorized
        assignment is safe.
        """
        service, _, endpoint = entry.partition(".")
        if not endpoint:
            raise ExecutionError(
                f"request entry must be 'service.endpoint', got {entry!r}"
            )
        router = self._router
        seen: set[tuple[str, str]] = set()
        stack = [(service, endpoint)]
        services: set[str] = set()
        while stack:
            svc_name, ep = stack.pop()
            if (svc_name, ep) in seen:
                continue
            seen.add((svc_name, ep))
            services.add(svc_name)
            svc = self._app.service(svc_name)
            version_names = {svc.stable_version}
            route = router.active_route(svc_name) if router is not None else None
            if route is not None:
                version_names.update(v.version for v in route.variants)
            shared: set[tuple[str, str]] | None = None
            for version_name in version_names:
                try:
                    spec = svc.get(version_name).endpoint(ep)
                except Exception:
                    shared = set()
                    break
                calls = {
                    (c.service, c.endpoint)
                    for c in spec.calls
                    if c.probability >= 1.0
                }
                shared = calls if shared is None else shared & calls
            for child in shared or ():
                stack.append(child)
        return services

    # -- execution ---------------------------------------------------------

    def run_slice(
        self, batch: "RequestBatch", lo: int, hi: int, now: float
    ) -> tuple[float, list, int]:
        """Execute rows [lo, hi) without traces; returns (clock, durations,
        error count)."""
        timestamps = batch.timestamps[lo:hi].tolist()
        user_indices = batch.user_indices[lo:hi].tolist()
        group_codes = self._group_codes
        if len(batch.entries) == 1:
            single = self.entry_edge(batch.entries[0])
            entry_codes = None
            table = None
        else:
            table = [self.entry_edge(entry) for entry in batch.entries]
            entry_codes = batch.entry_codes[lo:hi].tolist()
            single = None
        execute = self._execute
        durations: list = []
        append = durations.append
        errors = 0
        for row in range(len(timestamps)):
            ts = timestamps[row]
            if ts > now:
                now = ts
            user = user_indices[row]
            edge = single if entry_codes is None else table[entry_codes[row]]
            duration, error = execute(edge, now, user, group_codes[user], 0)
            append(duration)
            if error:
                errors += 1
        return now, durations, errors

    def run_slice_recording(
        self, batch: "RequestBatch", lo: int, hi: int, now: float
    ) -> tuple[float, list, int]:
        """Like :meth:`run_slice` but materializes real spans and feeds the
        trace collector per request, with scalar-identical trace ids."""
        runtime = self._runtime
        collector = runtime.collector
        timestamps = batch.timestamps[lo:hi].tolist()
        user_indices = batch.user_indices[lo:hi].tolist()
        group_codes = self._group_codes
        population = self._population
        group_names = population.group_names
        if len(batch.entries) == 1:
            single = self.entry_edge(batch.entries[0])
            entry_codes = None
            table = None
        else:
            table = [self.entry_edge(entry) for entry in batch.entries]
            entry_codes = batch.entry_codes[lo:hi].tolist()
            single = None
        execute = self._execute_recording
        durations: list = []
        append = durations.append
        errors = 0
        for row in range(len(timestamps)):
            ts = timestamps[row]
            if ts > now:
                now = ts
            user = user_indices[row]
            edge = single if entry_codes is None else table[entry_codes[row]]
            trace_id = runtime.next_trace_id()
            spans: list[Span] = []
            group_code = group_codes[user]
            duration, error = execute(
                edge,
                now,
                user,
                group_code,
                0,
                trace_id,
                None,
                spans,
                group_names[group_code],
                population.user_at(user),
            )
            collector.record_trace(trace_id, spans)
            runtime.requests_executed += 1
            append(duration)
            if error:
                errors += 1
        return now, durations, errors

    def _execute(self, edge, start: float, user: int, group_code: int, depth: int):
        """One hop (plus children), scalar ``Runtime._call`` draw-for-draw."""
        if depth > _MAX_CALL_DEPTH:
            raise ExecutionError(
                f"call depth exceeded {_MAX_CALL_DEPTH}; cyclic topology?"
            )
        rec = edge[0]
        if rec is None:
            node = edge[1]
        else:
            version = rec[0].get(user)
            if version is None:
                version = self._assign(rec, user, group_code)
            node = edge[1][version]
        arrivals = node[_N_ARRIVALS]
        arrivals.append(start)
        cutoff = start - self._window
        while arrivals[0] < cutoff:
            arrivals.popleft()
        if node[_N_NEEDS_LOAD]:
            capacity = node[_N_CAPACITY]
            load = (
                (len(arrivals) / self._window) / capacity if capacity > 0 else 0.0
            )
        else:
            load = 0.0
        own_latency = node[_N_SAMPLE](load)
        error = self._random() < node[_N_ERROR_RATE]
        children = node[_N_CHILDREN]
        if children:
            child_start = start + 0.3 * own_latency / 1000.0
            children_duration = 0.0
            slowest_child = 0.0
            parallel = node[_N_PARALLEL]
            random = self._random
            edges = self._edges
            for probability, child_service, child_endpoint in children:
                if probability < 1.0 and random() >= probability:
                    continue
                child_edge = edges.get((child_service, child_endpoint))
                if child_edge is None:
                    child_edge = self._edge(child_service, child_endpoint)
                offset = 0.0 if parallel else children_duration / 1000.0
                child_duration, failed = self._execute(
                    child_edge, child_start + offset, user, group_code, depth + 1
                )
                children_duration += child_duration
                if child_duration > slowest_child:
                    slowest_child = child_duration
                if failed:
                    error = True
            waited = slowest_child if parallel else children_duration
            duration = own_latency + node[_N_PROXY_MS] + waited
        else:
            duration = own_latency + node[_N_PROXY_MS]
        node[_N_TS_BUF].append(start)
        node[_N_DUR_BUF].append(duration)
        node[_N_ERR_BUF].append(error)
        return duration, error

    def _execute_recording(
        self,
        edge,
        start: float,
        user: int,
        group_code: int,
        depth: int,
        trace_id: str,
        parent_id: str | None,
        spans: list,
        group: str,
        user_id: str,
    ):
        if depth > _MAX_CALL_DEPTH:
            raise ExecutionError(
                f"call depth exceeded {_MAX_CALL_DEPTH}; cyclic topology?"
            )
        rec = edge[0]
        if rec is None:
            node = edge[1]
        else:
            version = rec[0].get(user)
            if version is None:
                version = self._assign(rec, user, group_code)
            node = edge[1][version]
        arrivals = node[_N_ARRIVALS]
        arrivals.append(start)
        cutoff = start - self._window
        while arrivals[0] < cutoff:
            arrivals.popleft()
        if node[_N_NEEDS_LOAD]:
            capacity = node[_N_CAPACITY]
            load = (
                (len(arrivals) / self._window) / capacity if capacity > 0 else 0.0
            )
        else:
            load = 0.0
        own_latency = node[_N_SAMPLE](load)
        error = self._random() < node[_N_ERROR_RATE]
        # Span ids are allocated pre-order (before children), span objects
        # appended post-order — the scalar path's exact interleaving.
        span_id = next_span_id()
        children = node[_N_CHILDREN]
        if children:
            child_start = start + 0.3 * own_latency / 1000.0
            children_duration = 0.0
            slowest_child = 0.0
            parallel = node[_N_PARALLEL]
            random = self._random
            edges = self._edges
            for probability, child_service, child_endpoint in children:
                if probability < 1.0 and random() >= probability:
                    continue
                child_edge = edges.get((child_service, child_endpoint))
                if child_edge is None:
                    child_edge = self._edge(child_service, child_endpoint)
                offset = 0.0 if parallel else children_duration / 1000.0
                child_duration, failed = self._execute_recording(
                    child_edge,
                    child_start + offset,
                    user,
                    group_code,
                    depth + 1,
                    trace_id,
                    span_id,
                    spans,
                    group,
                    user_id,
                )
                children_duration += child_duration
                if child_duration > slowest_child:
                    slowest_child = child_duration
                if failed:
                    error = True
            waited = slowest_child if parallel else children_duration
            duration = own_latency + node[_N_PROXY_MS] + waited
        else:
            duration = own_latency + node[_N_PROXY_MS]
        spans.append(
            Span(
                span_id=span_id,
                trace_id=trace_id,
                parent_id=parent_id,
                service=node[_N_SERVICE],
                version=node[_N_VERSION],
                endpoint=node[_N_ENDPOINT],
                start=start,
                duration_ms=duration,
                error=error,
                tags={"group": group, "user": user_id},
            )
        )
        node[_N_TS_BUF].append(start)
        node[_N_DUR_BUF].append(duration)
        node[_N_ERR_BUF].append(error)
        return duration, error

    def flush(self) -> None:
        """Drain the metric buffers into the store in bulk.

        Emission order within each (service, version, metric) key equals
        the scalar path's record order, and ``MetricStore.extend`` is
        order-equivalent to repeated ``record`` calls — so windowed
        aggregates (and every check decision derived from them) match.
        """
        store = self._runtime.monitor.store
        for (service, version), (ts_buf, dur_buf, err_buf) in self._buffers.items():
            if not ts_buf:
                continue
            times = np.asarray(ts_buf, dtype=np.float64)
            store.extend_columns(
                service,
                version,
                "response_time",
                times,
                np.asarray(dur_buf, dtype=np.float64),
            )
            store.extend_columns(
                service,
                version,
                "error",
                times,
                np.asarray(err_buf, dtype=np.float64),
            )
            store.extend_columns(
                service, version, "throughput", times, np.ones(len(times))
            )
            ts_buf.clear()
            dur_buf.clear()
            err_buf.clear()


def slice_blockers(
    runtime: "Runtime",
    campaigns: Iterable["FaultCampaign"],
    at: float,
    record_traces: bool,
) -> list[str]:
    """Why the slice starting at *at* cannot take the fast path ([] = it can).

    Every condition here either only changes at engine events (fault
    activation/revert, route installs, breaker state) or is static for
    the run (policies, subscribers) — so checking once per slice is
    sound.
    """
    from repro.microservices.runtime import StaticRouter
    from repro.routing.proxy import VersionRouter

    reasons = runtime.fast_path_blockers()
    for campaign in campaigns:
        if campaign.active_at(at):
            reasons.append("fault-campaign")
            break
    router = runtime.router
    if isinstance(router, VersionRouter):
        for service in router.routed_services:
            route = router.active_route(service)
            if route.shadow_versions:
                reasons.append(f"shadow-route:{service}")
            if route.audience.headers:
                reasons.append(f"header-audience:{service}")
    elif not isinstance(router, StaticRouter):
        reasons.append("custom-router")
    if not record_traces and runtime.collector.has_subscribers:
        reasons.append("collector-subscribers")
    return reasons


def run_batches(
    simulation: "SimulationEngine",
    runtime: "Runtime",
    batches: Iterable["RequestBatch"],
    *,
    until: float | None = None,
    campaigns: Sequence["FaultCampaign"] = (),
    options: BatchOptions | None = None,
) -> BatchRunResult:
    """Replay columnar request batches interleaved with engine events.

    The event-interleaving contract is the scalar ``Bifrost.run`` loop's:
    every event with time <= a request's timestamp runs before that
    request.  Between events, requests execute as one fast slice (or, if
    a blocker is present, through the scalar path request by request —
    behaviour is identical either way, only speed differs).
    """
    options = options or BatchOptions()
    result = BatchRunResult(
        recent_durations=FloatRing(options.ring_capacity)
    )
    campaigns = tuple(campaigns)
    record = options.record_traces

    from repro.routing.proxy import VersionRouter

    router = runtime.router if isinstance(runtime.router, VersionRouter) else None

    # A logical fallback slice is delimited by engine events (or a fast
    # slice), not by chunk boundaries: a blocked stretch that happens to
    # span several input chunks is still one slice and its reasons count
    # once per stretch, not once per chunk.
    in_fallback_stretch = False
    stretch_reasons: set[str] = set()

    for batch in batches:
        timestamps = batch.timestamps
        size = len(batch)
        lo = 0
        while lo < size:
            next_event = simulation.queue.peek_time()
            if next_event is None:
                hi = size
            else:
                hi = int(np.searchsorted(timestamps, next_event, side="left"))
                if hi <= lo:
                    # Events due at or before the next request: run them
                    # all, exactly like the scalar loop's run_until.
                    simulation.run_until(
                        max(float(timestamps[lo]), simulation.now)
                    )
                    in_fallback_stretch = False
                    stretch_reasons.clear()
                    continue
            blockers = slice_blockers(
                runtime, campaigns, float(timestamps[lo]), record
            )
            if blockers:
                if not in_fallback_stretch:
                    result.fallback_slices += 1
                    in_fallback_stretch = True
                fresh = [r for r in blockers if r not in stretch_reasons]
                if fresh:
                    result.fallback_reasons.update(fresh)
                    stretch_reasons.update(fresh)
                for row in range(lo, hi):
                    request = batch.request(row)
                    simulation.run_until(
                        max(request.timestamp, simulation.now)
                    )
                    outcome = runtime.execute(request)
                    result._add_scalar(outcome.duration_ms, outcome.error)
            else:
                in_fallback_stretch = False
                stretch_reasons.clear()
                kernel = _SliceKernel(runtime, router, batch.population)
                kernel.prefill_assignments(batch, lo, hi)
                if record:
                    now, durations, errors = kernel.run_slice_recording(
                        batch, lo, hi, simulation.now
                    )
                else:
                    now, durations, errors = kernel.run_slice(
                        batch, lo, hi, simulation.now
                    )
                    runtime.advance_trace_ids(len(durations))
                    runtime.requests_executed += len(durations)
                kernel.flush()
                runtime.clock.advance_to(now)
                result.fast_slices += 1
                result._add_fast(durations, errors)
            lo = hi
    if until is not None:
        simulation.run_until(until)
    return result
