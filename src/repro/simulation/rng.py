"""Seeded randomness helpers.

Every stochastic component in the library draws from a :class:`SeededRng`
that is explicitly passed in, never from the global :mod:`random` state.
This keeps benches and tests reproducible and lets independent subsystems
fork uncorrelated child streams from one root seed.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A :class:`random.Random` wrapper with stream forking.

    ``fork(label)`` derives a child RNG whose seed depends on both the
    parent seed and the label, so two subsystems forked with different
    labels see uncorrelated streams, and re-running with the same root
    seed reproduces both.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def fork(self, label: str) -> "SeededRng":
        """Derive an independent child stream identified by *label*.

        The derivation hashes with CRC32 rather than :func:`hash` —
        string hashing is salted per process, which would make forked
        streams (and anything replayed from a stored seed, like the
        scenario regression corpus) differ from one run to the next.
        """
        child_seed = zlib.crc32(f"{self.seed}:{label}".encode()) & 0x7FFFFFFF
        return SeededRng(child_seed)

    # -- thin delegation ---------------------------------------------------

    @property
    def raw(self) -> random.Random:
        """The wrapped :class:`random.Random`.

        Hot loops (the batch execution kernel) bind its methods directly
        to skip the delegation layer; the stream is the same object, so
        interleaving raw and wrapped draws stays deterministic.
        """
        return self._random

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly choose one element of *seq*."""
        return self._random.choice(seq)

    def randrange(self, stop: int) -> int:
        """Uniform integer in ``[0, stop)``.

        Consumes exactly the same underlying draws as ``choice`` on a
        *stop*-element sequence — the batch workload generator relies on
        this to pick user *indices* while staying bit-identical to the
        scalar generator's ``choice`` over the id tuple.
        """
        return self._random.randrange(stop)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """Sample *k* distinct elements of *seq*."""
        return self._random.sample(seq, k)

    def shuffle(self, seq: list[T]) -> None:
        """Shuffle *seq* in place."""
        self._random.shuffle(seq)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal variate."""
        return self._random.gauss(mu, sigma)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        """Log-normal variate with underlying normal (mu, sigma)."""
        return self._random.lognormvariate(mu, sigma)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given *rate* (1/mean)."""
        return self._random.expovariate(rate)

    def paretovariate(self, alpha: float) -> float:
        """Pareto variate with shape *alpha* and minimum 1."""
        return self._random.paretovariate(alpha)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choose one item with probability proportional to its weight."""
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

    def __repr__(self) -> str:
        return f"SeededRng(seed={self.seed})"
