"""The simulated wall clock.

All subsystems (microservice runtime, Bifrost engine, telemetry) share one
clock instance so that traces, metrics, and experiment phases line up on a
single timeline.  Time is a float in **seconds** since simulation start.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimulationClock:
    """Monotonically advancing simulated time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by *delta* seconds and return the new time.

        Negative deltas are rejected: simulated time never flows backwards.
        """
        if delta < 0:
            raise SimulationError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute *timestamp*."""
        if timestamp < self._now:
            raise SimulationError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"SimulationClock(now={self._now:.3f})"
