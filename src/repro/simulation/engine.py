"""Discrete-event simulation loop.

A minimal priority-queue event engine: callbacks are scheduled at absolute
simulated timestamps; :meth:`SimulationEngine.run_until` pops events in
time order, advances the shared clock, and invokes them.  Callbacks may
schedule further events (this is how the Bifrost engine re-arms periodic
check evaluations).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.simulation.clock import SimulationClock


@dataclass(order=True)
class ScheduledEvent:
    """An event in the queue, ordered by (time, insertion sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Heap-backed queue of :class:`ScheduledEvent` instances."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule *callback* at absolute simulated *time*."""
        event = ScheduledEvent(time, next(self._counter), callback, label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> ScheduledEvent | None:
        """Remove and return the earliest live event, or None when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class SimulationEngine:
    """Drives the event queue against a shared :class:`SimulationClock`."""

    def __init__(self, clock: SimulationClock | None = None) -> None:
        self.clock = clock or SimulationClock()
        self.queue = EventQueue()
        self.processed_events = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    def schedule_at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule *callback* at absolute time; must not be in the past."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.clock.now}"
            )
        return self.queue.push(time, callback, label)

    def schedule_in(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule *callback* after a relative *delay* >= 0."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.queue.push(self.clock.now + delay, callback, label)

    def step(self) -> bool:
        """Process one event; return False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(max(event.time, self.clock.now))
        event.callback()
        self.processed_events += 1
        return True

    def run_until(self, end_time: float, max_events: int | None = None) -> int:
        """Run events with time <= *end_time*; return how many ran.

        The clock always ends at exactly *end_time* (even if the queue
        drains early), so periodic processes observe a consistent horizon.
        """
        ran = 0
        while True:
            if max_events is not None and ran >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None or next_time > end_time:
                break
            self.step()
            ran += 1
        if end_time > self.clock.now:
            self.clock.advance_to(end_time)
        return ran

    def run(self, max_events: int = 1_000_000) -> int:
        """Run until the queue drains or *max_events* is hit."""
        ran = 0
        while ran < max_events and self.step():
            ran += 1
        return ran
