"""Latency models for simulated service handlers.

Response times of web services are famously right-skewed; we default to a
log-normal body plus optional load sensitivity.  Load sensitivity is the
mechanism behind two effects the Bifrost evaluation observed (Section
4.5.1): dark launches *duplicate* traffic and push latencies up in the
backend, while A/B tests *split* traffic and produce a load-balancing
effect that lowers per-instance latency.
"""

from __future__ import annotations

import abc
import math
from repro.errors import ConfigurationError
from repro.simulation.rng import SeededRng


class LatencyModel(abc.ABC):
    """Produces a service time in **milliseconds** for one request."""

    @abc.abstractmethod
    def sample(self, rng: SeededRng, load: float = 1.0) -> float:
        """Draw one latency.

        Args:
            rng: the random stream to draw from.
            load: the instance's current relative load where 1.0 is the
                nominal design load; models may ignore it.
        """

    def mean(self) -> float:
        """Approximate mean latency at nominal load (for calibration)."""
        rng = SeededRng(12345)
        samples = [self.sample(rng) for _ in range(2000)]
        return sum(samples) / len(samples)


class ConstantLatency(LatencyModel):
    """A fixed latency — useful for proxies and deterministic tests."""

    def __init__(self, value_ms: float) -> None:
        if value_ms < 0:
            raise ConfigurationError(f"latency must be >= 0, got {value_ms}")
        self.value_ms = float(value_ms)

    def sample(self, rng: SeededRng, load: float = 1.0) -> float:
        return self.value_ms

    def mean(self) -> float:
        return self.value_ms


class LogNormalLatency(LatencyModel):
    """Log-normal latency parameterized by its median and spread.

    Args:
        median_ms: the distribution's median in milliseconds.
        sigma: the shape parameter of the underlying normal; 0.25–0.5 is
            typical for well-behaved services.
    """

    def __init__(self, median_ms: float, sigma: float = 0.3) -> None:
        if median_ms <= 0:
            raise ConfigurationError(f"median must be positive, got {median_ms}")
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self.median_ms = float(median_ms)
        self.sigma = float(sigma)
        self._mu = math.log(self.median_ms)

    def sample(self, rng: SeededRng, load: float = 1.0) -> float:
        if self.sigma == 0:
            return self.median_ms
        return rng.lognormvariate(self._mu, self.sigma)

    def mean(self) -> float:
        return self.median_ms * math.exp(self.sigma**2 / 2.0)


class LoadSensitiveLatency(LatencyModel):
    """Wraps a base model and inflates latency as load exceeds nominal.

    We use an M/M/1-flavoured inflation: at relative load ``u`` the base
    sample is multiplied by ``1 + pressure * max(0, u - 1)``, a smooth,
    bounded stand-in for queueing growth that keeps the simulation stable
    even when overdriven.
    """

    def __init__(self, base: LatencyModel, pressure: float = 0.6) -> None:
        if pressure < 0:
            raise ConfigurationError(f"pressure must be >= 0, got {pressure}")
        self.base = base
        self.pressure = float(pressure)

    def sample(self, rng: SeededRng, load: float = 1.0) -> float:
        inflation = 1.0 + self.pressure * max(0.0, load - 1.0)
        return self.base.sample(rng, load) * inflation

    def mean(self) -> float:
        return self.base.mean()


class CompositeLatency(LatencyModel):
    """Sum of several latency components (e.g. compute + serialization)."""

    def __init__(self, *components: LatencyModel) -> None:
        if not components:
            raise ConfigurationError("CompositeLatency needs at least one component")
        self.components = components

    def sample(self, rng: SeededRng, load: float = 1.0) -> float:
        return sum(component.sample(rng, load) for component in self.components)

    def mean(self) -> float:
        return sum(component.mean() for component in self.components)
