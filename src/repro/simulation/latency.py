"""Latency models for simulated service handlers.

Response times of web services are famously right-skewed; we default to a
log-normal body plus optional load sensitivity.  Load sensitivity is the
mechanism behind two effects the Bifrost evaluation observed (Section
4.5.1): dark launches *duplicate* traffic and push latencies up in the
backend, while A/B tests *split* traffic and produce a load-balancing
effect that lowers per-instance latency.
"""

from __future__ import annotations

import abc
import math
from repro.errors import ConfigurationError
from repro.simulation.rng import SeededRng


class LatencyModel(abc.ABC):
    """Produces a service time in **milliseconds** for one request."""

    @abc.abstractmethod
    def sample(self, rng: SeededRng, load: float = 1.0) -> float:
        """Draw one latency.

        Args:
            rng: the random stream to draw from.
            load: the instance's current relative load where 1.0 is the
                nominal design load; models may ignore it.
        """

    def mean(self) -> float:
        """Approximate mean latency at nominal load (for calibration)."""
        rng = SeededRng(12345)
        samples = [self.sample(rng) for _ in range(2000)]
        return sum(samples) / len(samples)


class ConstantLatency(LatencyModel):
    """A fixed latency — useful for proxies and deterministic tests."""

    def __init__(self, value_ms: float) -> None:
        if value_ms < 0:
            raise ConfigurationError(f"latency must be >= 0, got {value_ms}")
        self.value_ms = float(value_ms)

    def sample(self, rng: SeededRng, load: float = 1.0) -> float:
        return self.value_ms

    def mean(self) -> float:
        return self.value_ms


def _norm_ppf(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Accurate to ~1e-9 over (0, 1) — plenty for pinning tail quantiles
    without pulling scipy into the hot path.
    """
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"quantile probability must be in (0, 1), got {p}")
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)


class LogNormalLatency(LatencyModel):
    """Log-normal latency parameterized by its median and spread.

    Args:
        median_ms: the distribution's median in milliseconds.
        sigma: the shape parameter of the underlying normal; 0.25–0.5 is
            typical for well-behaved services.
    """

    def __init__(self, median_ms: float, sigma: float = 0.3) -> None:
        if median_ms <= 0:
            raise ConfigurationError(f"median must be positive, got {median_ms}")
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self.median_ms = float(median_ms)
        self.sigma = float(sigma)
        self._mu = math.log(self.median_ms)

    def sample(self, rng: SeededRng, load: float = 1.0) -> float:
        if self.sigma == 0:
            return self.median_ms
        return rng.lognormvariate(self._mu, self.sigma)

    def mean(self) -> float:
        return self.median_ms * math.exp(self.sigma**2 / 2.0)

    def quantile(self, p: float) -> float:
        """Closed-form quantile: ``exp(mu + sigma * z_p)``."""
        if self.sigma == 0:
            if not 0.0 < p < 1.0:
                raise ConfigurationError(
                    f"quantile probability must be in (0, 1), got {p}"
                )
            return self.median_ms
        return math.exp(self._mu + self.sigma * _norm_ppf(p))


class ParetoLatency(LatencyModel):
    """Heavy-tailed (Pareto) latency for adversarial scenarios.

    Classic Pareto with minimum *scale_ms* and shape *alpha*: small
    alphas (1.1–2) give the "p999 is 100× the median" tails production
    systems exhibit under contention; the mean is infinite for
    ``alpha <= 1`` so the model requires ``alpha > 1``.

    Args:
        scale_ms: the distribution's minimum (x_m) in milliseconds.
        alpha: the tail index; smaller means heavier tails.
    """

    def __init__(self, scale_ms: float, alpha: float = 1.5) -> None:
        if scale_ms <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale_ms}")
        if alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be > 1 for a finite mean, got {alpha}"
            )
        self.scale_ms = float(scale_ms)
        self.alpha = float(alpha)

    @classmethod
    def from_median(cls, median_ms: float, alpha: float = 1.5) -> "ParetoLatency":
        """Build from the median instead of the minimum.

        The Pareto median is ``x_m * 2**(1/alpha)``; parameterizing by
        median lets scenario specs swap tail families while holding the
        body of the distribution fixed.
        """
        if median_ms <= 0:
            raise ConfigurationError(f"median must be positive, got {median_ms}")
        if alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be > 1 for a finite mean, got {alpha}"
            )
        return cls(median_ms / 2.0 ** (1.0 / alpha), alpha)

    def sample(self, rng: SeededRng, load: float = 1.0) -> float:
        return self.scale_ms * rng.paretovariate(self.alpha)

    def mean(self) -> float:
        return self.scale_ms * self.alpha / (self.alpha - 1.0)

    def quantile(self, p: float) -> float:
        """Closed-form quantile: ``x_m * (1 - p) ** (-1/alpha)``."""
        if not 0.0 < p < 1.0:
            raise ConfigurationError(
                f"quantile probability must be in (0, 1), got {p}"
            )
        return self.scale_ms * (1.0 - p) ** (-1.0 / self.alpha)


class LoadSensitiveLatency(LatencyModel):
    """Wraps a base model and inflates latency as load exceeds nominal.

    We use an M/M/1-flavoured inflation: at relative load ``u`` the base
    sample is multiplied by ``1 + pressure * max(0, u - 1)``, a smooth,
    bounded stand-in for queueing growth that keeps the simulation stable
    even when overdriven.
    """

    def __init__(self, base: LatencyModel, pressure: float = 0.6) -> None:
        if pressure < 0:
            raise ConfigurationError(f"pressure must be >= 0, got {pressure}")
        self.base = base
        self.pressure = float(pressure)

    def sample(self, rng: SeededRng, load: float = 1.0) -> float:
        inflation = 1.0 + self.pressure * max(0.0, load - 1.0)
        return self.base.sample(rng, load) * inflation

    def mean(self) -> float:
        return self.base.mean()


class CompositeLatency(LatencyModel):
    """Sum of several latency components (e.g. compute + serialization)."""

    def __init__(self, *components: LatencyModel) -> None:
        if not components:
            raise ConfigurationError("CompositeLatency needs at least one component")
        self.components = components

    def sample(self, rng: SeededRng, load: float = 1.0) -> float:
        return sum(component.sample(rng, load) for component in self.components)

    def mean(self) -> float:
        return sum(component.mean() for component in self.components)
