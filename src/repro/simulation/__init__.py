"""Deterministic simulation kernel.

The dissertation's evaluations ran on public-cloud VMs; this repo replaces
that testbed with a discrete-event simulation so every experiment is
reproducible on a laptop.  The kernel provides:

- :class:`SimulationClock` — the single source of simulated time,
- :class:`EventQueue` / :class:`SimulationEngine` — a discrete-event loop,
- :class:`SimulatedExecutor` — a single-threaded executor with explicit
  per-task costs, used to measure Bifrost engine "CPU utilization" and
  check-evaluation delay (Figs 4.7–4.10),
- latency models for simulated service handlers.
"""

from repro.simulation.clock import SimulationClock
from repro.simulation.engine import EventQueue, ScheduledEvent, SimulationEngine
from repro.simulation.executor import ExecutorReport, SimulatedExecutor
from repro.simulation.latency import (
    CompositeLatency,
    ConstantLatency,
    LatencyModel,
    LoadSensitiveLatency,
    LogNormalLatency,
)
from repro.simulation.rng import SeededRng

# Imported last: repro.simulation.batch reaches into modules that
# themselves import repro.simulation submodules during package init.
from repro.simulation.batch import (
    BatchOptions,
    BatchRunResult,
    FloatRing,
    run_batches,
)

__all__ = [
    "BatchOptions",
    "BatchRunResult",
    "FloatRing",
    "run_batches",
    "SimulationClock",
    "EventQueue",
    "ScheduledEvent",
    "SimulationEngine",
    "ExecutorReport",
    "SimulatedExecutor",
    "LatencyModel",
    "ConstantLatency",
    "LogNormalLatency",
    "LoadSensitiveLatency",
    "CompositeLatency",
    "SeededRng",
]
