"""A simulated single-threaded executor.

The Bifrost evaluation (Sections 4.5.2) reports the engine's CPU
utilization and the *delay* between when a check evaluation is due and
when the engine actually runs it, as the number of parallel strategies or
checks grows.  The prototype measured a Node.js event loop; we reproduce
the same queueing behaviour with an explicit model: one worker, each task
has a simulated processing cost, tasks queue FIFO when the worker is busy.

Utilization and delay then fall out of elementary bookkeeping:

- utilization over a window = busy time / window length,
- delay of a task = start time - arrival (due) time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import SimulationError
from repro.stats.descriptive import SummaryStats, summarize


@dataclass(frozen=True)
class TaskRecord:
    """Bookkeeping for one executed task."""

    label: str
    arrival: float
    start: float
    finish: float

    @property
    def delay(self) -> float:
        """Queueing delay: how long the task waited past its due time."""
        return self.start - self.arrival

    @property
    def cost(self) -> float:
        """Processing cost of the task."""
        return self.finish - self.start


@dataclass(frozen=True)
class ExecutorReport:
    """Aggregate view over an executor run."""

    tasks: int
    busy_time: float
    span: float
    utilization: float
    delay_stats: SummaryStats

    def as_row(self) -> dict[str, float]:
        """Flat dict for table printing in the benches."""
        return {
            "tasks": self.tasks,
            "busy_time_s": self.busy_time,
            "span_s": self.span,
            "cpu_utilization": self.utilization,
            "mean_delay_ms": self.delay_stats.mean * 1000.0,
            "p95_delay_ms": self.delay_stats.p95 * 1000.0,
            "max_delay_ms": self.delay_stats.maximum * 1000.0,
        }


class SimulatedExecutor:
    """Single worker processing tasks in arrival order.

    Tasks must be submitted in non-decreasing arrival order (the
    simulation engine guarantees this).  ``submit`` returns the completed
    :class:`TaskRecord` so callers can observe the induced delay.
    """

    def __init__(self) -> None:
        self._available_at = 0.0
        self._records: list[TaskRecord] = []
        self._busy_time = 0.0
        self._first_arrival: float | None = None
        self._last_finish = 0.0

    @property
    def records(self) -> list[TaskRecord]:
        """All completed task records (copy)."""
        return list(self._records)

    @property
    def busy_time(self) -> float:
        """Total simulated seconds the worker spent processing."""
        return self._busy_time

    def submit(self, arrival: float, cost: float, label: str = "") -> TaskRecord:
        """Process a task arriving at *arrival* with processing *cost*."""
        if cost < 0:
            raise SimulationError(f"task cost must be >= 0, got {cost}")
        if self._records and arrival < self._records[-1].arrival:
            raise SimulationError(
                "tasks must be submitted in non-decreasing arrival order "
                f"({arrival} < {self._records[-1].arrival})"
            )
        start = max(arrival, self._available_at)
        finish = start + cost
        self._available_at = finish
        record = TaskRecord(label, arrival, start, finish)
        self._records.append(record)
        self._busy_time += cost
        if self._first_arrival is None:
            self._first_arrival = arrival
        self._last_finish = max(self._last_finish, finish)
        return record

    def backlog(self, now: float) -> float:
        """Seconds of queued-but-unprocessed work at simulated time *now*."""
        return max(0.0, self._available_at - now)

    def utilization_series(self, bucket_width: float = 1.0) -> list[tuple[float, float]]:
        """Per-bucket CPU utilization, for boxplots like Figs 4.7/4.9.

        Buckets start at the first arrival; each value is the fraction of
        the bucket the worker spent busy, clamped to [0, 1].
        """
        if bucket_width <= 0:
            raise SimulationError("bucket_width must be positive")
        if not self._records:
            return []
        origin = self._first_arrival or 0.0
        n_buckets = int((self._last_finish - origin) // bucket_width) + 1
        busy = [0.0] * n_buckets
        for record in self._records:
            t = record.start
            while t < record.finish:
                idx = int((t - origin) // bucket_width)
                bucket_end = origin + (idx + 1) * bucket_width
                chunk = min(record.finish, bucket_end) - t
                if 0 <= idx < n_buckets:
                    busy[idx] += chunk
                t += chunk
        return [
            (origin + i * bucket_width, min(1.0, b / bucket_width))
            for i, b in enumerate(busy)
        ]

    def report(self) -> ExecutorReport:
        """Summarize the whole run."""
        if not self._records:
            raise SimulationError("executor has processed no tasks")
        origin = self._first_arrival or 0.0
        span = max(self._last_finish - origin, 1e-12)
        delays = [record.delay for record in self._records]
        return ExecutorReport(
            tasks=len(self._records),
            busy_time=self._busy_time,
            span=span,
            utilization=min(1.0, self._busy_time / span),
            delay_stats=summarize(delays),
        )


def replay(
    arrivals: Iterable[tuple[float, float, str]],
) -> SimulatedExecutor:
    """Build an executor and replay ``(arrival, cost, label)`` tuples."""
    executor = SimulatedExecutor()
    for arrival, cost, label in sorted(arrivals, key=lambda item: item[0]):
        executor.submit(arrival, cost, label)
    return executor
