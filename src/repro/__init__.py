"""repro — Continuous Experimentation for Software Developers.

A from-scratch reproduction of Gerald Schermann's dissertation
(Middleware 2017 doctoral symposium / University of Zurich, 2019):

- :mod:`repro.fenrir` — search-based scheduling of experiments,
- :mod:`repro.bifrost` — automated enactment of multi-phase live
  testing strategies,
- :mod:`repro.topology` — topology-aware experiment health assessment,
- :mod:`repro.core` — the conceptual framework tying the life-cycle
  phases together,
- plus the substrates everything runs on: a simulated microservice
  application (:mod:`repro.microservices`), runtime traffic routing
  (:mod:`repro.routing`), distributed tracing (:mod:`repro.tracing`),
  telemetry (:mod:`repro.telemetry`), traffic/workload generation
  (:mod:`repro.traffic`), a deterministic simulation kernel
  (:mod:`repro.simulation`), a statistics toolkit (:mod:`repro.stats`),
  and the Chapter 2 study data (:mod:`repro.study`).

Quickstart::

    from repro.core import ExperimentationFramework
    from repro.topology.scenarios import sample_application

    framework = ExperimentationFramework(sample_application())
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
