"""Telemetry: metric collection for experiment health evaluation.

The dissertation's premise is that "sophisticated telemetry solutions keep
track of releases" — Bifrost checks read windowed aggregates of metrics
such as response time, error rate, and CPU utilization per service
version.  This package provides the metric primitives and a windowed
:class:`MetricStore` keyed by (service, version, metric).
"""

from repro.telemetry.metrics import Counter, Gauge, Histogram
from repro.telemetry.store import MetricKey, MetricStore
from repro.telemetry.monitor import Monitor

__all__ = ["Counter", "Gauge", "Histogram", "MetricKey", "MetricStore", "Monitor"]
