"""The windowed metric store Bifrost checks read from.

Samples are timestamped on the shared simulation clock and keyed by
(service, version, metric).  Checks ask questions like "mean response_time
of catalog v2.0.0 over the last 30 s" — :meth:`MetricStore.aggregate`
answers them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import ValidationError
from repro.stats.descriptive import mean, median, percentile
from repro.stats.timeseries import TimeSeries


@dataclass(frozen=True, order=True)
class MetricKey:
    """Identity of one metric stream."""

    service: str
    version: str
    metric: str

    def __str__(self) -> str:
        return f"{self.service}@{self.version}/{self.metric}"


_AGGREGATIONS: dict[str, Callable[[list[float]], float]] = {
    "mean": mean,
    "median": median,
    "min": min,
    "max": max,
    "sum": sum,
    "count": lambda xs: float(len(xs)),
    "p90": lambda xs: percentile(xs, 90),
    "p95": lambda xs: percentile(xs, 95),
    "p99": lambda xs: percentile(xs, 99),
}


def supported_aggregations() -> list[str]:
    """Names of aggregation functions checks may reference."""
    return sorted(_AGGREGATIONS)


def aggregate_values(aggregation: str, values: list[float]) -> float | None:
    """Apply one named aggregation to already-fetched values.

    The windowless half of :meth:`MetricStore.aggregate`, for callers
    (like the check evaluator) that need the raw window values too —
    e.g. to report a sample count — without fetching the window twice.
    None when *values* is empty, same as an empty window.
    """
    if aggregation not in _AGGREGATIONS:
        raise ValidationError(
            f"unknown aggregation {aggregation!r}; "
            f"supported: {supported_aggregations()}"
        )
    if not values:
        return None
    return float(_AGGREGATIONS[aggregation](values))


class MetricStore:
    """Timestamped samples per :class:`MetricKey` with windowed aggregation."""

    def __init__(self) -> None:
        self._series: dict[MetricKey, TimeSeries] = {}

    def record(
        self, service: str, version: str, metric: str, timestamp: float, value: float
    ) -> None:
        """Record one sample."""
        key = MetricKey(service, version, metric)
        series = self._series.get(key)
        if series is None:
            series = TimeSeries(str(key))
            self._series[key] = series
        series.append(timestamp, value)

    def extend(
        self,
        service: str,
        version: str,
        metric: str,
        samples: Iterable[tuple[float, float]],
    ) -> None:
        """Bulk-record samples for one key — one key lookup, one C-level
        append run, instead of per-sample :class:`MetricKey` construction.

        Equivalent to calling :meth:`record` per sample (see
        :meth:`TimeSeries.extend` for why); this is the flush path of the
        batch execution kernel's per-(service, version) metric buffers.
        """
        key = MetricKey(service, version, metric)
        series = self._series.get(key)
        if series is None:
            series = TimeSeries(str(key))
            self._series[key] = series
        series.extend(samples)

    def extend_columns(
        self, service: str, version: str, metric: str, times, values
    ) -> None:
        """Columnar sibling of :meth:`extend` — see
        :meth:`TimeSeries.extend_columns`."""
        key = MetricKey(service, version, metric)
        series = self._series.get(key)
        if series is None:
            series = TimeSeries(str(key))
            self._series[key] = series
        series.extend_columns(times, values)

    def keys(self) -> list[MetricKey]:
        """All metric keys with at least one sample."""
        return sorted(self._series)

    def series(self, service: str, version: str, metric: str) -> TimeSeries:
        """The raw time series for a key (empty series if absent)."""
        return self._series.get(
            MetricKey(service, version, metric),
            TimeSeries(str(MetricKey(service, version, metric))),
        )

    def values_in_window(
        self,
        service: str,
        version: str,
        metric: str,
        start: float,
        end: float,
    ) -> list[float]:
        """All sample values in the **half-open** window ``start <= t < end``.

        Samples on the start boundary are included, samples on the end
        boundary excluded (see :meth:`TimeSeries.window`) — adjacent
        windows therefore never double-count a boundary sample.
        """
        return self.series(service, version, metric).window(start, end)

    def aggregate(
        self,
        service: str,
        version: str,
        metric: str,
        aggregation: str,
        start: float,
        end: float,
    ) -> float | None:
        """Apply *aggregation* to the window; None when the window is empty.

        An empty window is a meaningful outcome (the check is
        *inconclusive*, cf. Section 4.3.2), not an error.
        """
        return aggregate_values(
            aggregation,
            self.values_in_window(service, version, metric, start, end),
        )

    def merge(self, other: "MetricStore") -> None:
        """Fold all samples of *other* into this store."""
        for key, series in other._series.items():
            for ts, value in series:
                self.record(key.service, key.version, key.metric, ts, value)

    def snapshot(self) -> dict:
        """JSON-compatible dump of every series, for durability checkpoints."""
        return {
            "series": [
                {
                    "service": key.service,
                    "version": key.version,
                    "metric": key.metric,
                    "samples": [[ts, value] for ts, value in self._series[key]],
                }
                for key in sorted(self._series)
            ]
        }

    def restore(self, data: dict) -> None:
        """Replace all contents with a :meth:`snapshot` dump.

        Raises :class:`ValidationError` on a malformed document so a
        corrupt checkpoint surfaces during recovery, not as a later
        aggregation error.
        """
        try:
            entries = [
                (
                    str(entry["service"]),
                    str(entry["version"]),
                    str(entry["metric"]),
                    [(float(ts), float(value)) for ts, value in entry["samples"]],
                )
                for entry in data["series"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed metric snapshot: {exc}") from exc
        self._series = {}
        for service, version, metric, samples in entries:
            for ts, value in samples:
                self.record(service, version, metric, ts, value)


def record_many(
    store: MetricStore,
    service: str,
    version: str,
    metric: str,
    samples: Iterable[tuple[float, float]],
) -> None:
    """Bulk-record ``(timestamp, value)`` samples into *store*."""
    for timestamp, value in samples:
        store.record(service, version, metric, timestamp, value)
