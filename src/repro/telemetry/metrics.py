"""Metric primitives: counters, gauges, histograms.

These mirror the vocabulary of Prometheus-style telemetry stacks the
paper's ecosystem (Istio, Kubernetes) exposes out of the box.
"""

from __future__ import annotations

import bisect
from collections import deque

from repro.errors import ValidationError
from repro.stats.descriptive import SummaryStats, summarize


class Counter:
    """A monotonically increasing count (requests served, errors seen)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def increment(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValidationError(f"counter increments must be >= 0, got {amount}")
        self._value += amount


class Gauge:
    """A value that can move both ways (in-flight requests, queue depth)."""

    def __init__(self, name: str, initial: float = 0.0) -> None:
        self.name = name
        self._value = float(initial)

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self._value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the gauge by *delta* (either sign)."""
        self._value += delta


class Histogram:
    """A sorted window of observations with percentile queries.

    Keeps every observation, bounded by *capacity* with sliding-window
    eviction of the oldest (this is FIFO truncation, not reservoir
    sampling) — precision matters more than memory at simulation scale.
    Arrival order lives in a deque so eviction is O(1) at the front;
    the parallel sorted list keeps percentile queries cheap.
    """

    def __init__(self, name: str, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValidationError("histogram capacity must be positive")
        self.name = name
        self._capacity = capacity
        self._sorted: list[float] = []
        self._fifo: deque[float] = deque()

    def __len__(self) -> int:
        return len(self._fifo)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._fifo.append(value)
        bisect.insort(self._sorted, value)
        if len(self._fifo) > self._capacity:
            oldest = self._fifo.popleft()
            idx = bisect.bisect_left(self._sorted, oldest)
            self._sorted.pop(idx)

    def values(self) -> list[float]:
        """Retained observations in ascending order (a copy)."""
        return list(self._sorted)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile over retained observations."""
        if not self._sorted:
            raise ValidationError(f"histogram {self.name!r} is empty")
        if not 0.0 <= q <= 100.0:
            raise ValidationError(f"q must be in [0, 100], got {q}")
        if len(self._sorted) == 1:
            return self._sorted[0]
        rank = (q / 100.0) * (len(self._sorted) - 1)
        low = int(rank)
        frac = rank - low
        if low + 1 >= len(self._sorted):
            return self._sorted[-1]
        return self._sorted[low] * (1 - frac) + self._sorted[low + 1] * frac

    def summary(self) -> SummaryStats:
        """Summary statistics over retained observations."""
        return summarize(self._sorted)
