"""Monitors: the bridge from the runtime to the metric store.

A :class:`Monitor` observes completed requests/spans and derives the
standard application-level metrics the dissertation's checks consume:
``response_time`` (ms), ``error`` (0/1 per request, so a windowed mean is
the error rate), and ``throughput`` (1 per request, so a windowed count is
requests served).
"""

from __future__ import annotations

from repro.telemetry.store import MetricStore
from repro.tracing.span import Span


class Monitor:
    """Derives per-service-version metrics from spans."""

    def __init__(self, store: MetricStore | None = None) -> None:
        self.store = store or MetricStore()

    def observe_span(self, span: Span) -> None:
        """Record the metrics implied by one completed span."""
        self.store.record(
            span.service, span.version, "response_time", span.start, span.duration_ms
        )
        self.store.record(
            span.service, span.version, "error", span.start, 1.0 if span.error else 0.0
        )
        self.store.record(span.service, span.version, "throughput", span.start, 1.0)

    def observe_spans(self, spans: list[Span]) -> None:
        """Record metrics for many spans."""
        for span in spans:
            self.observe_span(span)

    def error_rate(
        self, service: str, version: str, start: float, end: float
    ) -> float | None:
        """Fraction of failed requests in the window (None if no traffic)."""
        return self.store.aggregate(service, version, "error", "mean", start, end)

    def mean_response_time(
        self, service: str, version: str, start: float, end: float
    ) -> float | None:
        """Mean response time in ms over the window (None if no traffic)."""
        return self.store.aggregate(
            service, version, "response_time", "mean", start, end
        )

    def throughput(
        self, service: str, version: str, start: float, end: float
    ) -> float:
        """Requests served in the window."""
        value = self.store.aggregate(
            service, version, "throughput", "count", start, end
        )
        return value or 0.0
