"""Monitors: the bridge from the runtime to the metric store.

A :class:`Monitor` observes completed requests/spans and derives the
standard application-level metrics the dissertation's checks consume:
``response_time`` (ms), ``error`` (0/1 per request, so a windowed mean is
the error rate), and ``throughput`` (1 per request, so a windowed count is
requests served).

Resilience events (retries, timeouts, fallbacks, breaker transitions)
are recorded as ``resilience.<kind>`` count metrics per (service,
version), so Bifrost checks and trace analysis can reason about them
with the same windowed aggregations as any other metric.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry.store import MetricStore
from repro.tracing.span import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.microservices.resilience import ResilienceEvent


class Monitor:
    """Derives per-service-version metrics from spans."""

    def __init__(self, store: MetricStore | None = None) -> None:
        self.store = store or MetricStore()

    def observe_span(self, span: Span) -> None:
        """Record the metrics implied by one completed span."""
        self.store.record(
            span.service, span.version, "response_time", span.start, span.duration_ms
        )
        self.store.record(
            span.service, span.version, "error", span.start, 1.0 if span.error else 0.0
        )
        self.store.record(span.service, span.version, "throughput", span.start, 1.0)

    def observe_spans(self, spans: list[Span]) -> None:
        """Record metrics for many spans."""
        for span in spans:
            self.observe_span(span)

    def observe_resilience(self, event: "ResilienceEvent") -> None:
        """Record one resilience event as a count metric sample.

        Events carrying a version are recorded under that real version,
        so per-version :meth:`resilience_count` queries see them.  Only
        events with *no* version (breaker transitions observed outside
        any request, for example) fall back to the ``"*"`` wildcard
        version — those are invisible to per-version queries by design;
        use :meth:`resilience_count_all` to aggregate across versions
        including the wildcard bucket.
        """
        version = event.version if event.version else "*"
        self.store.record(
            event.service,
            version,
            f"resilience.{event.kind}",
            event.time,
            1.0,
        )

    def observe_durability(self, kind: str, time: float, value: float = 1.0) -> None:
        """Record one engine-durability event (crash, restart, recovery).

        Durability events describe the *experiment infrastructure* rather
        than a service version, so they are recorded under the synthetic
        ``("bifrost", "engine")`` key as ``durability.<kind>`` metrics —
        queryable with the same windowed aggregations as everything else.
        """
        self.store.record("bifrost", "engine", f"durability.{kind}", time, value)

    def durability_count(self, kind: str, start: float, end: float) -> float:
        """How many ``durability.<kind>`` events fell in the window."""
        value = self.store.aggregate(
            "bifrost", "engine", f"durability.{kind}", "count", start, end
        )
        return value or 0.0

    def resilience_count(
        self, service: str, version: str, kind: str, start: float, end: float
    ) -> float:
        """How many ``kind`` events hit (service, version) in the window."""
        value = self.store.aggregate(
            service, version, f"resilience.{kind}", "count", start, end
        )
        return value or 0.0

    def resilience_count_all(
        self, service: str, kind: str, start: float, end: float
    ) -> float:
        """Total ``kind`` events for *service* across every version.

        Sums the ``resilience.<kind>`` series of all recorded versions
        of the service, including the ``"*"`` wildcard bucket that holds
        events observed without a version — the aggregation that
        :meth:`resilience_count` (pinned to one version) cannot see.
        """
        metric = f"resilience.{kind}"
        total = 0.0
        for key in self.store.keys():
            if key.service != service or key.metric != metric:
                continue
            value = self.store.aggregate(
                key.service, key.version, metric, "count", start, end
            )
            total += value or 0.0
        return total

    def error_rate(
        self, service: str, version: str, start: float, end: float
    ) -> float | None:
        """Fraction of failed requests in the window (None if no traffic)."""
        return self.store.aggregate(service, version, "error", "mean", start, end)

    def mean_response_time(
        self, service: str, version: str, start: float, end: float
    ) -> float | None:
        """Mean response time in ms over the window (None if no traffic)."""
        return self.store.aggregate(
            service, version, "response_time", "mean", start, end
        )

    def throughput(
        self, service: str, version: str, start: float, end: float
    ) -> float:
        """Requests served in the window."""
        value = self.store.aggregate(
            service, version, "throughput", "count", start, end
        )
        return value or 0.0
