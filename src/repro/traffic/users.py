"""User populations and deterministic hash bucketing.

Experiment platforms assign users to variants with salted hash bucketing:
``hash(salt + user_id) mod buckets``.  The assignment is sticky (a user
always lands in the same bucket for one experiment) yet independent across
experiments with different salts — the property that lets parallel
experiments use non-overlapping user sets.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.simulation.rng import SeededRng
from repro.traffic.profile import UserGroup

#: Cap on memoized per-salt MD5 prefix states (see :func:`bucket_user`).
#: Salts are experiment names, so a handful is typical; the cap only
#: guards pathological callers that invent salts per request.
_SALT_CACHE_LIMIT = 256

_salt_digests: dict[str, "hashlib._Hash"] = {}


def _salted_md5(salt: str) -> "hashlib._Hash":
    """Memoized MD5 state pre-fed with ``salt:`` (copied per use)."""
    state = _salt_digests.get(salt)
    if state is None:
        if len(_salt_digests) >= _SALT_CACHE_LIMIT:
            _salt_digests.clear()
        state = hashlib.md5(f"{salt}:".encode("utf-8"))
        _salt_digests[salt] = state
    return state


def bucket_user(user_id: str, salt: str, buckets: int = 1000) -> int:
    """Deterministically map *user_id* to a bucket in ``[0, buckets)``.

    Uses MD5 over ``salt:user_id`` so the mapping is stable across
    processes and Python hash randomization.  The per-salt prefix of the
    digest is memoized — hashing restarts from a copied midstate instead
    of re-digesting ``salt:`` for every request — which is byte-for-byte
    identical to hashing the concatenated string (pinned by a regression
    test so the cache can never drift).
    """
    if buckets <= 0:
        raise ConfigurationError(f"buckets must be positive, got {buckets}")
    state = _salted_md5(salt).copy()
    state.update(user_id.encode("utf-8"))
    return int.from_bytes(state.digest()[:8], "big") % buckets


def bucket_users(
    user_ids: Iterable[str], salt: str, buckets: int = 1000
) -> list[int]:
    """Bucket many users at once — the array form of :func:`bucket_user`.

    Shares one memoized salt midstate across the whole batch; element
    *i* equals ``bucket_user(user_ids[i], salt, buckets)`` exactly.
    """
    if buckets <= 0:
        raise ConfigurationError(f"buckets must be positive, got {buckets}")
    base = _salted_md5(salt)
    from_bytes = int.from_bytes
    out: list[int] = []
    for user_id in user_ids:
        state = base.copy()
        state.update(user_id.encode("utf-8"))
        out.append(from_bytes(state.digest()[:8], "big") % buckets)
    return out


def in_rollout(user_id: str, salt: str, fraction: float) -> bool:
    """Whether *user_id* falls inside a rollout of the given *fraction*."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    return bucket_user(user_id, salt, 10_000) < fraction * 10_000


class UserPopulation:
    """A synthetic user base partitioned into user groups.

    Users are identified by opaque string ids; each user belongs to
    exactly one :class:`UserGroup` with probability proportional to the
    group's traffic share.
    """

    def __init__(
        self, size: int, groups: Sequence[UserGroup], seed: int = 11
    ) -> None:
        if size <= 0:
            raise ConfigurationError(f"population size must be positive, got {size}")
        if not groups:
            raise ConfigurationError("population needs at least one group")
        self._groups = list(groups)
        rng = SeededRng(seed)
        names = [g.name for g in self._groups]
        shares = [g.share for g in self._groups]
        self._group_of: dict[str, str] = {}
        self._members: dict[str, list[str]] = {name: [] for name in names}
        group_indices: list[int] = []
        index_of = {name: i for i, name in enumerate(names)}
        for i in range(size):
            user_id = f"u{i:07d}"
            group = rng.weighted_choice(names, shares)
            self._group_of[user_id] = group
            self._members[group].append(user_id)
            group_indices.append(index_of[group])
        # Frozen columnar views of the population: the id tuple keeps
        # sample() O(1) instead of rebuilding a list per draw, and the
        # group-code column is what the batch workload generator ships
        # around instead of per-request group strings.
        self._ids: tuple[str, ...] = tuple(self._group_of)
        self._group_names_tuple: tuple[str, ...] = tuple(names)
        self._group_codes: tuple[int, ...] = tuple(group_indices)

    def __len__(self) -> int:
        return len(self._group_of)

    @property
    def ids(self) -> tuple[str, ...]:
        """All user ids as an immutable tuple (no copy)."""
        return self._ids

    @property
    def group_names(self) -> tuple[str, ...]:
        """Group names in declaration order; codes index into this."""
        return self._group_names_tuple

    def group_codes(self) -> tuple[int, ...]:
        """Per-user group index into :attr:`group_names` (no copy).

        Element *i* is the group of user ``ids[i]`` — the columnar
        encoding batch workloads carry instead of group-name strings.
        """
        return self._group_codes

    def user_at(self, index: int) -> str:
        """The id of the *index*-th user (generation order)."""
        return self._ids[index]

    @property
    def user_ids(self) -> list[str]:
        """All user ids (copy)."""
        return list(self._group_of)

    def group_of(self, user_id: str) -> str:
        """The group a user belongs to."""
        try:
            return self._group_of[user_id]
        except KeyError:
            raise ConfigurationError(f"unknown user {user_id!r}") from None

    def members(self, group: str) -> list[str]:
        """All users of *group* (copy)."""
        if group not in self._members:
            raise ConfigurationError(f"unknown user group {group!r}")
        return list(self._members[group])

    def sample(self, rng: SeededRng, groups: Iterable[str] | None = None) -> str:
        """Draw one user uniformly, optionally restricted to *groups*."""
        if groups is None:
            return rng.choice(self._ids)
        pool: list[str] = []
        for group in groups:
            pool.extend(self.members(group))
        if not pool:
            raise ConfigurationError("no users in the requested groups")
        return rng.choice(pool)
