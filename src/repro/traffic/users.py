"""User populations and deterministic hash bucketing.

Experiment platforms assign users to variants with salted hash bucketing:
``hash(salt + user_id) mod buckets``.  The assignment is sticky (a user
always lands in the same bucket for one experiment) yet independent across
experiments with different salts — the property that lets parallel
experiments use non-overlapping user sets.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.simulation.rng import SeededRng
from repro.traffic.profile import UserGroup


def bucket_user(user_id: str, salt: str, buckets: int = 1000) -> int:
    """Deterministically map *user_id* to a bucket in ``[0, buckets)``.

    Uses MD5 over ``salt:user_id`` so the mapping is stable across
    processes and Python hash randomization.
    """
    if buckets <= 0:
        raise ConfigurationError(f"buckets must be positive, got {buckets}")
    digest = hashlib.md5(f"{salt}:{user_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % buckets


def in_rollout(user_id: str, salt: str, fraction: float) -> bool:
    """Whether *user_id* falls inside a rollout of the given *fraction*."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    return bucket_user(user_id, salt, 10_000) < fraction * 10_000


class UserPopulation:
    """A synthetic user base partitioned into user groups.

    Users are identified by opaque string ids; each user belongs to
    exactly one :class:`UserGroup` with probability proportional to the
    group's traffic share.
    """

    def __init__(
        self, size: int, groups: Sequence[UserGroup], seed: int = 11
    ) -> None:
        if size <= 0:
            raise ConfigurationError(f"population size must be positive, got {size}")
        if not groups:
            raise ConfigurationError("population needs at least one group")
        self._groups = list(groups)
        rng = SeededRng(seed)
        names = [g.name for g in self._groups]
        shares = [g.share for g in self._groups]
        self._group_of: dict[str, str] = {}
        self._members: dict[str, list[str]] = {name: [] for name in names}
        for i in range(size):
            user_id = f"u{i:07d}"
            group = rng.weighted_choice(names, shares)
            self._group_of[user_id] = group
            self._members[group].append(user_id)

    def __len__(self) -> int:
        return len(self._group_of)

    @property
    def user_ids(self) -> list[str]:
        """All user ids (copy)."""
        return list(self._group_of)

    def group_of(self, user_id: str) -> str:
        """The group a user belongs to."""
        try:
            return self._group_of[user_id]
        except KeyError:
            raise ConfigurationError(f"unknown user {user_id!r}") from None

    def members(self, group: str) -> list[str]:
        """All users of *group* (copy)."""
        if group not in self._members:
            raise ConfigurationError(f"unknown user group {group!r}")
        return list(self._members[group])

    def sample(self, rng: SeededRng, groups: Iterable[str] | None = None) -> str:
        """Draw one user uniformly, optionally restricted to *groups*."""
        if groups is None:
            return rng.choice(list(self._group_of))
        pool: list[str] = []
        for group in groups:
            pool.extend(self.members(group))
        if not pool:
            raise ConfigurationError("no users in the requested groups")
        return rng.choice(pool)
