"""Bulk workload generation: request streams as columnar numpy arrays.

The scalar :class:`~repro.traffic.workload.WorkloadGenerator` materializes
one :class:`~repro.traffic.workload.Request` object (plus a headers dict)
per arrival — fine for thousands of requests, fatal for the millions the
ROADMAP's north star asks for.  :class:`BatchWorkloadGenerator` produces
the same streams as columns instead: arrival timestamps, user indices
into a :class:`~repro.traffic.users.UserPopulation`, and entry codes,
packed into :class:`RequestBatch` chunks.

Determinism contract (property-tested in
``tests/property/test_batch_equivalence.py``): a batch generator with the
same seed consumes the *same underlying RNG draws in the same order* as
the scalar generator, so the produced arrivals are bit-identical —
``randrange(n)`` consumes exactly what ``choice`` on the id tuple would,
and the entry-mix pick replays :meth:`random.Random.choices` internals
(one uniform draw, bisect over left-to-right accumulated weights).
:meth:`RequestBatch.request` materializes any row back into a scalar
``Request`` with the id, headers, and group the scalar generator would
have produced — which is what the batch executor's fallback path uses.
"""

from __future__ import annotations

from bisect import bisect
from dataclasses import dataclass
from itertools import accumulate
from math import isfinite
from typing import Iterator, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.simulation.rng import SeededRng
from repro.traffic.profile import TrafficProfile
from repro.traffic.users import UserPopulation
from repro.traffic.workload import Request

#: Default rows per :class:`RequestBatch`.  Large enough that per-batch
#: overhead (array construction, slicing) amortizes away, small enough
#: that a batch stays cache-friendly and partial flushes are cheap.
DEFAULT_BATCH_SIZE = 16_384


@dataclass(frozen=True)
class RequestBatch:
    """A contiguous chunk of generated requests in columnar form.

    Attributes:
        base_id: request counter value of row 0; row *i* materializes as
            request id ``r{base_id + i:09d}``, matching the scalar
            generator's numbering.
        timestamps: float64 arrival times, non-decreasing.
        user_indices: int64 indices into ``population.ids``.
        entry_codes: int16 indices into ``entries``.
        entries: the distinct ``service.endpoint`` entry points.
        population: the issuing user population.
    """

    base_id: int
    timestamps: np.ndarray
    user_indices: np.ndarray
    entry_codes: np.ndarray
    entries: tuple[str, ...]
    population: UserPopulation

    def __len__(self) -> int:
        return len(self.timestamps)

    def request(self, row: int) -> Request:
        """Materialize one row as the scalar :class:`Request` it encodes."""
        user_id = self.population.user_at(int(self.user_indices[row]))
        return Request(
            request_id=f"r{self.base_id + row:09d}",
            timestamp=float(self.timestamps[row]),
            user_id=user_id,
            group=self.population.group_of(user_id),
            entry=self.entries[self.entry_codes[row]],
            headers={"user-id": user_id},
        )

    def requests(self) -> Iterator[Request]:
        """Materialize every row — the scalar view of the batch."""
        for row in range(len(self)):
            yield self.request(row)


class BatchWorkloadGenerator:
    """Generates request streams as :class:`RequestBatch` chunks.

    Mirrors :class:`~repro.traffic.workload.WorkloadGenerator` stream for
    stream — same constructor arguments, same validation, same seeded
    draws — but yields columnar batches instead of per-request objects.
    """

    def __init__(
        self,
        population: UserPopulation,
        entry: str = "frontend.index",
        seed: int = 23,
        entry_mix: Mapping[str, float] | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        self.population = population
        self.entry = entry
        self._rng = SeededRng(seed)
        self._next_id = 0
        self.batch_size = batch_size
        if entry_mix is not None and not entry_mix:
            raise ConfigurationError("entry_mix must not be empty when given")
        if entry_mix:
            self._entries = tuple(entry_mix)
            # Replicates random.Random.choices: left-to-right accumulated
            # weights, total coerced to float, draw scaled by the total.
            self._cum_weights = list(accumulate(entry_mix.values()))
            self._total_weight = self._cum_weights[-1] + 0.0
            if self._total_weight <= 0.0:
                raise ValueError("Total of weights must be greater than zero")
            if not isfinite(self._total_weight):
                raise ValueError("Total of weights must be finite")
        else:
            self._entries = (entry,)
            self._cum_weights = None
            self._total_weight = 0.0

    # -- stream builders ---------------------------------------------------

    def poisson(
        self, rate_per_second: float, duration: float, start: float = 0.0
    ) -> Iterator[RequestBatch]:
        """Poisson arrivals — the batch form of ``WorkloadGenerator.poisson``."""
        if rate_per_second <= 0:
            raise ConfigurationError("rate_per_second must be positive")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        expovariate = self._rng.expovariate

        def gaps() -> Iterator[float]:
            while True:
                yield expovariate(rate_per_second)

        return self._generate(gaps(), start, start + duration)

    def heavy_tail(
        self,
        rate_per_second: float,
        duration: float,
        alpha: float = 1.5,
        start: float = 0.0,
    ) -> Iterator[RequestBatch]:
        """Pareto inter-arrival gaps — the batch form of ``heavy_tail``."""
        if rate_per_second <= 0:
            raise ConfigurationError("rate_per_second must be positive")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        if alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be > 1 for a finite mean gap, got {alpha}"
            )
        mean_gap = 1.0 / rate_per_second
        unit = (alpha - 1.0) / alpha
        paretovariate = self._rng.paretovariate

        def gaps() -> Iterator[float]:
            while True:
                yield mean_gap * unit * paretovariate(alpha)

        return self._generate(gaps(), start, start + duration)

    def constant(
        self, interval: float, count: int, start: float = 0.0
    ) -> Iterator[RequestBatch]:
        """Evenly spaced arrivals — the batch form of ``constant``."""
        if interval <= 0:
            raise ConfigurationError("interval must be positive")
        if count <= 0:
            raise ConfigurationError("count must be positive")
        return self._constant(interval, count, start)

    def _constant(
        self, interval: float, count: int, start: float
    ) -> Iterator[RequestBatch]:
        timestamps: list[float] = []
        users: list[int] = []
        entries: list[int] = []
        for i in range(count):
            timestamps.append(start + i * interval)
            self._fill_row(users, entries)
            if len(timestamps) >= self.batch_size:
                yield self._flush(timestamps, users, entries)
                timestamps, users, entries = [], [], []
        if timestamps:
            yield self._flush(timestamps, users, entries)

    def from_profile(
        self,
        profile: TrafficProfile,
        scale: float = 1.0,
        start: float = 0.0,
    ) -> Iterator[RequestBatch]:
        """Poisson arrivals tracking a profile — batch form of ``from_profile``."""
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        slot_seconds = profile.slot_duration_hours * 3600.0
        for slot in range(profile.num_slots):
            rate = profile.rate_per_second(slot) * scale
            if rate <= 0:
                continue
            slot_start = start + slot * slot_seconds
            yield from self.poisson(rate, slot_seconds, start=slot_start)

    @staticmethod
    def expected_requests(
        profile: TrafficProfile,
        scale: float = 1.0,
        start_slot: int = 0,
        end_slot: int | None = None,
    ) -> float:
        """Expected arrivals of ``from_profile`` over a slot range.

        O(1) via the profile's memoized prefix sums — benches use it to
        size runs without walking the volume list.
        """
        if end_slot is None:
            end_slot = profile.num_slots
        return profile.volume_between(start_slot, end_slot) * scale

    # -- internals ---------------------------------------------------------

    def _fill_row(self, users: list[int], entries: list[int]) -> None:
        """Draw the user and entry columns of one request.

        Draw order matches the scalar ``_make_request``: user first
        (one ``randrange`` = one ``choice``), then the entry-mix pick
        (one uniform), so the shared stream stays aligned.
        """
        users.append(self._rng.randrange(len(self.population)))
        if self._cum_weights is None:
            entries.append(0)
        else:
            r = self._rng.random() * self._total_weight
            entries.append(
                bisect(self._cum_weights, r, 0, len(self._entries) - 1)
            )

    def _generate(
        self, gaps: Iterator[float], start: float, end: float
    ) -> Iterator[RequestBatch]:
        timestamps: list[float] = []
        users: list[int] = []
        entries: list[int] = []
        t = start
        for gap in gaps:
            t += gap
            if t >= end:
                break
            timestamps.append(t)
            self._fill_row(users, entries)
            if len(timestamps) >= self.batch_size:
                yield self._flush(timestamps, users, entries)
                timestamps, users, entries = [], [], []
        if timestamps:
            yield self._flush(timestamps, users, entries)

    def _flush(
        self, timestamps: list[float], users: list[int], entries: list[int]
    ) -> RequestBatch:
        batch = RequestBatch(
            base_id=self._next_id,
            timestamps=np.asarray(timestamps, dtype=np.float64),
            user_indices=np.asarray(users, dtype=np.int64),
            entry_codes=np.asarray(entries, dtype=np.int16),
            entries=self._entries,
            population=self.population,
        )
        self._next_id += len(timestamps)
        return batch
