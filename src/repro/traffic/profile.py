"""Traffic profiles: expected requests per time slot and user group.

The Fenrir evaluation applied "a real world traffic profile" (Fig 3.3).
Production traces are unavailable offline, so :func:`diurnal_profile`
synthesizes an equivalent shape — a day/night sinusoid with a lunchtime
shoulder, a weekday/weekend factor, and multiplicative noise — which
exercises exactly the same scheduling constraints (scarce night traffic,
abundant daytime traffic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.simulation.rng import SeededRng


@dataclass(frozen=True)
class UserGroup:
    """A segment of the user population experiments can target.

    Attributes:
        name: unique identifier, e.g. ``"eu"`` or ``"beta_testers"``.
        share: fraction of overall traffic this group contributes; the
            shares of all groups in a profile sum to 1.
    """

    name: str
    share: float

    def __post_init__(self) -> None:
        if not 0.0 < self.share <= 1.0:
            raise ConfigurationError(
                f"group share must be in (0, 1], got {self.share} for {self.name!r}"
            )


class TrafficProfile:
    """Expected request volume per (slot, user group).

    Slots are fixed-width intervals (default one hour).  The profile is
    the capacity side of Fenrir's optimization problem: an experiment
    consuming x% of a group's traffic in a slot collects
    ``x% * slot_volume * group_share`` samples.
    """

    def __init__(
        self,
        slot_volumes: Sequence[float],
        groups: Sequence[UserGroup],
        slot_duration_hours: float = 1.0,
    ) -> None:
        if not slot_volumes:
            raise ConfigurationError("profile needs at least one slot")
        if any(v < 0 for v in slot_volumes):
            raise ConfigurationError("slot volumes must be >= 0")
        if not groups:
            raise ConfigurationError("profile needs at least one user group")
        names = [g.name for g in groups]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate group names in {names}")
        total_share = sum(g.share for g in groups)
        if abs(total_share - 1.0) > 1e-6:
            raise ConfigurationError(
                f"group shares must sum to 1.0, got {total_share:.6f}"
            )
        if slot_duration_hours <= 0:
            raise ConfigurationError("slot duration must be positive")
        self._volumes = [float(v) for v in slot_volumes]
        self._groups = {g.name: g for g in groups}
        self._group_names = tuple(self._groups)
        self.slot_duration_hours = float(slot_duration_hours)
        # Prefix sums over the (immutable) volume list: element i is the
        # volume of slots [0, i), so any slot range is an O(1) difference
        # instead of an O(n) sum — the batch workload generator queries
        # cumulative volume per slot in its generation loop.
        prefix = [0.0]
        acc = 0.0
        for volume in self._volumes:
            acc += volume
            prefix.append(acc)
        self._prefix_volumes = tuple(prefix)

    @property
    def num_slots(self) -> int:
        """Number of slots in the scheduling horizon."""
        return len(self._volumes)

    @property
    def group_names(self) -> tuple[str, ...]:
        """Names of all user groups, in declaration order (cached)."""
        return self._group_names

    @property
    def groups(self) -> list[UserGroup]:
        """All user groups."""
        return list(self._groups.values())

    def group(self, name: str) -> UserGroup:
        """Look up a group by name."""
        try:
            return self._groups[name]
        except KeyError:
            raise ConfigurationError(f"unknown user group {name!r}") from None

    def volume(self, slot: int) -> float:
        """Total expected requests in *slot* (all groups)."""
        return self._volumes[slot]

    def group_volume(self, slot: int, group: str) -> float:
        """Expected requests from *group* in *slot*."""
        return self._volumes[slot] * self.group(group).share

    def total_volume(self) -> float:
        """Expected requests over the whole horizon (O(1), prefix sums)."""
        return self._prefix_volumes[-1]

    def cumulative_volume(self, slot: int) -> float:
        """Expected requests in slots ``[0, slot)`` — O(1) via prefix sums.

        ``slot`` may be ``num_slots`` (the whole horizon); the window is
        half-open like every other window in the library, so
        ``cumulative_volume(b) - cumulative_volume(a)`` is exactly the
        volume of slots ``[a, b)``.
        """
        if not 0 <= slot <= self.num_slots:
            raise ConfigurationError(
                f"slot {slot} outside [0, {self.num_slots}]"
            )
        return self._prefix_volumes[slot]

    def volume_between(self, start_slot: int, end_slot: int) -> float:
        """Expected requests in slots ``[start_slot, end_slot)``, O(1)."""
        if end_slot < start_slot:
            raise ConfigurationError(
                f"end slot {end_slot} precedes start slot {start_slot}"
            )
        return self.cumulative_volume(end_slot) - self.cumulative_volume(
            start_slot
        )

    def volumes(self) -> list[float]:
        """Per-slot total volumes (copy) — the Fig 3.3 series."""
        return list(self._volumes)

    def rate_per_second(self, slot: int) -> float:
        """Mean request arrival rate (req/s) within *slot*."""
        return self._volumes[slot] / (self.slot_duration_hours * 3600.0)


DEFAULT_GROUPS = (
    UserGroup("na", 0.35),
    UserGroup("eu", 0.30),
    UserGroup("asia", 0.25),
    UserGroup("beta_testers", 0.10),
)


def diurnal_profile(
    days: int = 7,
    peak_volume: float = 60_000.0,
    groups: Sequence[UserGroup] = DEFAULT_GROUPS,
    noise: float = 0.05,
    weekend_factor: float = 0.65,
    seed: int = 7,
    start_weekday: int = 0,
) -> TrafficProfile:
    """Synthesize a realistic hourly traffic profile over *days* days.

    The shape combines a main evening peak (~20:00), a smaller lunch
    shoulder (~12:00), a deep night trough, a weekday/weekend volume
    factor, and multiplicative noise.  *peak_volume* is the approximate
    request count of the busiest weekday hour.
    """
    if days <= 0:
        raise ConfigurationError("days must be positive")
    if not 0.0 <= noise < 1.0:
        raise ConfigurationError("noise must be in [0, 1)")
    rng = SeededRng(seed)
    volumes: list[float] = []
    for day in range(days):
        weekday = (start_weekday + day) % 7
        day_factor = weekend_factor if weekday >= 5 else 1.0
        for hour in range(24):
            evening = math.exp(-((hour - 20.0) ** 2) / (2 * 3.5**2))
            lunch = 0.55 * math.exp(-((hour - 12.0) ** 2) / (2 * 2.0**2))
            base = 0.12 + evening + lunch
            jitter = 1.0 + rng.uniform(-noise, noise)
            volumes.append(peak_volume * base / 1.12 * day_factor * jitter)
    return TrafficProfile(volumes, groups)


def flat_profile(
    num_slots: int,
    volume_per_slot: float,
    groups: Sequence[UserGroup] = DEFAULT_GROUPS,
) -> TrafficProfile:
    """A constant-volume profile, convenient for unit tests."""
    return TrafficProfile([volume_per_slot] * num_slots, groups)


def with_flash_crowd(
    profile: TrafficProfile,
    slot: int,
    magnitude: float,
    width: int = 1,
) -> TrafficProfile:
    """Layer a flash crowd onto *profile*: slots ``[slot, slot+width)``
    are multiplied by *magnitude*.

    Flash crowds are the canonical adversarial workload for experiment
    scheduling: a sudden volume surge makes a fixed traffic split
    overdrive the experimental variant's capacity.  The window is
    half-open, matching the PR-4 window semantics everywhere else.
    """
    if not 0 <= slot < profile.num_slots:
        raise ConfigurationError(
            f"flash crowd slot {slot} outside profile [0, {profile.num_slots})"
        )
    if magnitude < 0:
        raise ConfigurationError(f"magnitude must be >= 0, got {magnitude}")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    volumes = profile.volumes()
    for index in range(slot, min(slot + width, profile.num_slots)):
        volumes[index] *= magnitude
    return TrafficProfile(
        volumes, profile.groups, profile.slot_duration_hours
    )


def consumption_series(
    profile: TrafficProfile, consumed_per_slot: Mapping[int, float]
) -> list[tuple[float, float]]:
    """Pair available vs consumed volume per slot (Fig 3.3's two series).

    *consumed_per_slot* maps slot index to the request volume consumed by
    scheduled experiments; missing slots consume zero.
    """
    prefix = profile._prefix_volumes
    out: list[tuple[float, float]] = []
    for slot in range(profile.num_slots):
        available = prefix[slot + 1] - prefix[slot]
        out.append((available, float(consumed_per_slot.get(slot, 0.0))))
    return out
