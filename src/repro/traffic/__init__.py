"""Traffic profiles, user populations, and workload generation.

Fenrir schedules experiments against an expected *traffic profile*
(requests per time slot and user group — Fig 3.3 shows the real-world
profile the paper used; we synthesize an equivalent diurnal/weekly shape).
Bifrost and the topology evaluation drive a simulated application with
request *workloads* derived from such profiles — one request object at a
time via :class:`WorkloadGenerator`, or as columnar
:class:`RequestBatch` chunks via :class:`BatchWorkloadGenerator` for
million-request replays through the batch execution kernel.
"""

from repro.traffic.batch import (
    DEFAULT_BATCH_SIZE,
    BatchWorkloadGenerator,
    RequestBatch,
)
from repro.traffic.profile import TrafficProfile, UserGroup, diurnal_profile
from repro.traffic.users import UserPopulation, bucket_user, bucket_users
from repro.traffic.workload import Request, WorkloadGenerator

__all__ = [
    "TrafficProfile",
    "UserGroup",
    "diurnal_profile",
    "UserPopulation",
    "bucket_user",
    "bucket_users",
    "Request",
    "WorkloadGenerator",
    "BatchWorkloadGenerator",
    "RequestBatch",
    "DEFAULT_BATCH_SIZE",
]
