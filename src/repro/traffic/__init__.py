"""Traffic profiles, user populations, and workload generation.

Fenrir schedules experiments against an expected *traffic profile*
(requests per time slot and user group — Fig 3.3 shows the real-world
profile the paper used; we synthesize an equivalent diurnal/weekly shape).
Bifrost and the topology evaluation drive a simulated application with
request *workloads* derived from such profiles.
"""

from repro.traffic.profile import TrafficProfile, UserGroup, diurnal_profile
from repro.traffic.users import UserPopulation, bucket_user
from repro.traffic.workload import Request, WorkloadGenerator

__all__ = [
    "TrafficProfile",
    "UserGroup",
    "diurnal_profile",
    "UserPopulation",
    "bucket_user",
    "Request",
    "WorkloadGenerator",
]
