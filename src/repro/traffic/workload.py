"""Workload generation: turning a traffic profile into request streams.

The Bifrost and topology evaluations drive a simulated microservice
application with end-user requests.  :class:`WorkloadGenerator` produces
Poisson request arrivals at a configurable rate (or following a
:class:`~repro.traffic.profile.TrafficProfile`), each tagged with a user
drawn from a :class:`~repro.traffic.users.UserPopulation`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import ConfigurationError
from repro.simulation.rng import SeededRng
from repro.traffic.profile import TrafficProfile
from repro.traffic.users import UserPopulation


@dataclass(frozen=True)
class Request:
    """One end-user request entering the application frontier.

    Attributes:
        request_id: unique id within the generating workload.
        timestamp: simulated arrival time in seconds.
        user_id: the issuing user.
        group: the user's group name.
        entry: the ``service.endpoint`` the request targets.
        headers: opaque key/value metadata routing rules can filter on.
    """

    request_id: str
    timestamp: float
    user_id: str
    group: str
    entry: str
    headers: Mapping[str, str] = field(default_factory=dict)


class WorkloadGenerator:
    """Generates request streams over simulated time.

    Args:
        population: users issuing the requests.
        entry: default ``service.endpoint`` requests target.
        seed: RNG seed for arrivals and user selection.
        entry_mix: optional mapping of entry point -> weight to spread
            requests over several frontend endpoints.
    """

    def __init__(
        self,
        population: UserPopulation,
        entry: str = "frontend.index",
        seed: int = 23,
        entry_mix: Mapping[str, float] | None = None,
    ) -> None:
        self.population = population
        self.entry = entry
        self._rng = SeededRng(seed)
        self._counter = itertools.count()
        if entry_mix is not None and not entry_mix:
            raise ConfigurationError("entry_mix must not be empty when given")
        self._entry_mix = dict(entry_mix) if entry_mix else None

    def _make_request(self, timestamp: float) -> Request:
        user_id = self.population.sample(self._rng)
        if self._entry_mix:
            entries = list(self._entry_mix)
            weights = [self._entry_mix[e] for e in entries]
            entry = self._rng.weighted_choice(entries, weights)
        else:
            entry = self.entry
        return Request(
            request_id=f"r{next(self._counter):09d}",
            timestamp=timestamp,
            user_id=user_id,
            group=self.population.group_of(user_id),
            entry=entry,
            headers={"user-id": user_id},
        )

    def poisson(
        self, rate_per_second: float, duration: float, start: float = 0.0
    ) -> Iterator[Request]:
        """Yield Poisson arrivals at *rate_per_second* for *duration* seconds."""
        if rate_per_second <= 0:
            raise ConfigurationError("rate_per_second must be positive")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        t = start
        end = start + duration
        while True:
            t += self._rng.expovariate(rate_per_second)
            if t >= end:
                return
            yield self._make_request(t)

    def heavy_tail(
        self,
        rate_per_second: float,
        duration: float,
        alpha: float = 1.5,
        start: float = 0.0,
    ) -> Iterator[Request]:
        """Yield arrivals with Pareto inter-arrival gaps (bursty traffic).

        Gaps are ``(1/rate) * ((alpha-1)/alpha) * X`` with ``X`` a unit
        Pareto of shape *alpha*, so the mean rate matches the Poisson
        generator while small alphas produce the burst-then-lull pattern
        that stresses sliding-window checks and breakers far harder than
        memoryless arrivals.
        """
        if rate_per_second <= 0:
            raise ConfigurationError("rate_per_second must be positive")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        if alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be > 1 for a finite mean gap, got {alpha}"
            )
        mean_gap = 1.0 / rate_per_second
        unit = (alpha - 1.0) / alpha
        t = start
        end = start + duration
        while True:
            t += mean_gap * unit * self._rng.paretovariate(alpha)
            if t >= end:
                return
            yield self._make_request(t)

    def constant(
        self, interval: float, count: int, start: float = 0.0
    ) -> Iterator[Request]:
        """Yield *count* evenly spaced requests, one every *interval* s."""
        if interval <= 0:
            raise ConfigurationError("interval must be positive")
        if count <= 0:
            raise ConfigurationError("count must be positive")
        for i in range(count):
            yield self._make_request(start + i * interval)

    def from_profile(
        self,
        profile: TrafficProfile,
        scale: float = 1.0,
        start: float = 0.0,
    ) -> Iterator[Request]:
        """Yield Poisson arrivals tracking a :class:`TrafficProfile`.

        *scale* multiplies the profile's volumes — simulating the paper's
        full production volumes request-by-request would be wasteful, so
        benches scale down while preserving the shape.
        """
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        slot_seconds = profile.slot_duration_hours * 3600.0
        for slot in range(profile.num_slots):
            rate = profile.rate_per_second(slot) * scale
            if rate <= 0:
                continue
            slot_start = start + slot * slot_seconds
            yield from self.poisson(rate, slot_seconds, start=slot_start)
