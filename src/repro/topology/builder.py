"""Building interaction graphs from distributed traces.

Equivalent to the paper's extraction from Jaeger/Zipkin: every span
becomes (or updates) a node, every parent→child span pair an edge.
Shadow (dark-launched) spans are included by default — dark launches are
exactly the situations where the experimental topology diverges.
"""

from __future__ import annotations

from typing import Iterable

from repro.topology.graph import InteractionGraph
from repro.tracing.trace import Trace


def build_interaction_graph(
    traces: Iterable[Trace],
    name: str = "graph",
    include_shadow: bool = True,
) -> InteractionGraph:
    """Aggregate *traces* into an :class:`InteractionGraph`.

    Args:
        traces: the traces to aggregate (e.g. from a
            :class:`~repro.tracing.query.TraceQuery`).
        name: a label for the resulting graph.
        include_shadow: whether spans tagged ``shadow`` (dark-launch
            duplicates) contribute nodes and edges.
    """
    graph = InteractionGraph(name)
    for trace in traces:
        for span, parent in trace.walk():
            if not include_shadow and span.tags.get("shadow") == "true":
                continue
            caller = parent.node_key if parent is not None else None
            from repro.topology.graph import NodeKey

            callee = NodeKey(*span.node_key)
            caller_key = NodeKey(*caller) if caller is not None else None
            graph.observe_call(caller_key, callee, span.duration_ms, span.error)
    return graph
