"""Building interaction graphs from distributed traces.

Equivalent to the paper's extraction from Jaeger/Zipkin: every span
becomes (or updates) a node, every parent→child span pair an edge.
Shadow (dark-launched) spans are included by default — dark launches are
exactly the situations where the experimental topology diverges.

:func:`trace_observations` is the single source of truth for how a trace
translates into graph observations; the batch builder below and the
streaming builder (:mod:`repro.topology.streaming`) both consume it, so
the two are identical by construction.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

from repro.topology.graph import InteractionGraph, NodeKey
from repro.tracing.trace import Trace


class Observation(NamedTuple):
    """One span's contribution to an interaction graph."""

    caller: NodeKey | None
    callee: NodeKey
    duration_ms: float
    error: bool
    start: float


def trace_observations(
    trace: Trace, include_shadow: bool = True
) -> list[Observation]:
    """Extract *trace*'s graph observations in depth-first walk order."""
    out: list[Observation] = []
    for span, parent in trace.walk():
        if not include_shadow and span.tags.get("shadow") == "true":
            continue
        caller = NodeKey(*parent.node_key) if parent is not None else None
        out.append(
            Observation(
                caller,
                NodeKey(*span.node_key),
                span.duration_ms,
                span.error,
                span.start,
            )
        )
    return out


def build_interaction_graph(
    traces: Iterable[Trace],
    name: str = "graph",
    include_shadow: bool = True,
) -> InteractionGraph:
    """Aggregate *traces* into an :class:`InteractionGraph`.

    Args:
        traces: the traces to aggregate (e.g. from a
            :class:`~repro.tracing.query.TraceQuery`).
        name: a label for the resulting graph.
        include_shadow: whether spans tagged ``shadow`` (dark-launch
            duplicates) contribute nodes and edges.
    """
    graph = InteractionGraph(name)
    for trace in traces:
        for obs in trace_observations(trace, include_shadow):
            graph.observe_call(obs.caller, obs.callee, obs.duration_ms, obs.error)
    return graph
