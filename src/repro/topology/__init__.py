"""Topology-aware experiment health assessment (Chapter 5).

Builds *interaction graphs* from distributed traces — nodes are
(service, version, endpoint) triples, edges are observed calls — computes
the *topological difference* between the baseline and experimental
variants of an application, classifies the identified changes into the
chapter's change-type taxonomy, and ranks them by their potential
negative impact on the experiment's health using three heuristic
families: subtree complexity, response-time analysis, and a hybrid.
"""

from repro.topology.graph import EdgeStats, InteractionGraph, NodeKey, NodeStats
from repro.topology.builder import (
    Observation,
    build_interaction_graph,
    trace_observations,
)
from repro.topology.change_types import Change, ChangeType
from repro.topology.diff import DiffEntry, DiffStatus, TopologyDiff, diff_graphs
from repro.topology.uncertainty import UncertaintyModel
from repro.topology.heuristics import (
    HeuristicResult,
    HybridHeuristic,
    RankingHeuristic,
    ResponseTimeHeuristic,
    SubtreeComplexityHeuristic,
    all_heuristic_variants,
)
from repro.topology.ranking import RankedChange, evaluate_ranking, rank_changes
from repro.topology.generator import mutate_graph, random_interaction_graph
from repro.topology.visualize import diff_report, diff_to_dot, topology_health_panel
from repro.topology.aggregate import aggregate_to_service_level
from repro.topology.streaming import (
    HEALTH_METRIC,
    HEALTH_VERSION,
    OVERALL_SERVICE,
    GraphWindowRing,
    HealthReport,
    HealthScorer,
    HealthWeights,
    LiveHealthMonitor,
    LiveTopologyDiff,
    StreamingGraphBuilder,
    copy_graph,
    graphs_equal,
    merge_graph_into,
)

__all__ = [
    "EdgeStats",
    "InteractionGraph",
    "NodeKey",
    "NodeStats",
    "build_interaction_graph",
    "Change",
    "ChangeType",
    "DiffEntry",
    "DiffStatus",
    "TopologyDiff",
    "diff_graphs",
    "UncertaintyModel",
    "HeuristicResult",
    "HybridHeuristic",
    "RankingHeuristic",
    "ResponseTimeHeuristic",
    "SubtreeComplexityHeuristic",
    "all_heuristic_variants",
    "RankedChange",
    "evaluate_ranking",
    "rank_changes",
    "mutate_graph",
    "random_interaction_graph",
    "diff_report",
    "diff_to_dot",
    "topology_health_panel",
    "aggregate_to_service_level",
    "Observation",
    "trace_observations",
    "HEALTH_METRIC",
    "HEALTH_VERSION",
    "OVERALL_SERVICE",
    "GraphWindowRing",
    "HealthReport",
    "HealthScorer",
    "HealthWeights",
    "LiveHealthMonitor",
    "LiveTopologyDiff",
    "StreamingGraphBuilder",
    "copy_graph",
    "graphs_equal",
    "merge_graph_into",
]
