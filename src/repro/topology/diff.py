"""Constructing the topological difference (Section 5.5.1).

The diff overlays the baseline and experimental interaction graphs on the
version-agnostic (service, endpoint) plane: entries are classified as
added (green in Fig 5.2), removed (red), updated (yellow — version
changed), or unchanged.  From the edge-level comparison the concrete
:class:`~repro.topology.change_types.Change` records are derived.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.topology.change_types import Change, ChangeType
from repro.topology.graph import InteractionGraph, NodeKey


class DiffStatus(enum.Enum):
    """Status of a node or edge in the topological difference."""

    ADDED = "added"
    REMOVED = "removed"
    UPDATED = "updated"
    UNCHANGED = "unchanged"


@dataclass(frozen=True)
class DiffEntry:
    """One (service, endpoint) node of the difference overlay."""

    service: str
    endpoint: str
    status: DiffStatus
    baseline_versions: frozenset[str]
    experimental_versions: frozenset[str]


@dataclass
class TopologyDiff:
    """The full topological difference between two graph variants."""

    baseline: InteractionGraph
    experimental: InteractionGraph
    entries: dict[tuple[str, str], DiffEntry] = field(default_factory=dict)
    changes: list[Change] = field(default_factory=list)

    def entry(self, service: str, endpoint: str) -> DiffEntry:
        """The overlay entry of a (service, endpoint) pair."""
        return self.entries[(service, endpoint)]

    def changed_entries(self) -> list[DiffEntry]:
        """Entries whose status is not UNCHANGED."""
        return [e for e in self.entries.values() if e.status is not DiffStatus.UNCHANGED]

    def summary(self) -> dict[str, int]:
        """Counts per status plus the number of identified changes."""
        counts = {status.value: 0 for status in DiffStatus}
        for entry in self.entries.values():
            counts[entry.status.value] += 1
        counts["changes"] = len(self.changes)
        return counts


def versions_by_service_endpoint(
    graph: InteractionGraph,
) -> dict[tuple[str, str], set[str]]:
    """Version sets per (service, endpoint) — the diff's node index."""
    out: dict[tuple[str, str], set[str]] = {}
    for key in graph.nodes:
        out.setdefault(key.service_endpoint, set()).add(key.version)
    return out


def edges_by_service_endpoint(
    graph: InteractionGraph,
) -> dict[tuple[tuple[str, str], tuple[str, str]], list[tuple[NodeKey, NodeKey]]]:
    """Concrete edge instances per SE-plane edge — the diff's edge index."""
    out: dict[
        tuple[tuple[str, str], tuple[str, str]], list[tuple[NodeKey, NodeKey]]
    ] = {}
    for caller, callee, _stats in graph.edges():
        key = (caller.service_endpoint, callee.service_endpoint)
        out.setdefault(key, []).append((caller, callee))
    return out


def diff_graphs(
    baseline: InteractionGraph, experimental: InteractionGraph
) -> TopologyDiff:
    """Compute the topological difference and classify all changes."""
    return diff_from_indexes(
        baseline,
        experimental,
        versions_by_service_endpoint(baseline),
        edges_by_service_endpoint(baseline),
    )


def diff_from_indexes(
    baseline: InteractionGraph,
    experimental: InteractionGraph,
    base_nodes: dict[tuple[str, str], set[str]],
    base_edges: dict[
        tuple[tuple[str, str], tuple[str, str]], list[tuple[NodeKey, NodeKey]]
    ],
) -> TopologyDiff:
    """Diff with the baseline-side indexes supplied by the caller.

    The streaming pipeline pins a baseline and diffs against it every
    time the live window rolls; precomputing the baseline indexes once
    removes the dominant repeated cost while producing output identical
    to :func:`diff_graphs` (which delegates here).
    """
    diff = TopologyDiff(baseline, experimental)

    exp_nodes = versions_by_service_endpoint(experimental)
    for se in set(base_nodes) | set(exp_nodes):
        base_versions = frozenset(base_nodes.get(se, set()))
        exp_versions = frozenset(exp_nodes.get(se, set()))
        if not base_versions:
            status = DiffStatus.ADDED
        elif not exp_versions:
            status = DiffStatus.REMOVED
        elif base_versions != exp_versions:
            status = DiffStatus.UPDATED
        else:
            status = DiffStatus.UNCHANGED
        diff.entries[se] = DiffEntry(
            service=se[0],
            endpoint=se[1],
            status=status,
            baseline_versions=base_versions,
            experimental_versions=exp_versions,
        )

    exp_edges = edges_by_service_endpoint(experimental)

    # Fundamental change types: edges appearing / disappearing on the
    # version-agnostic plane.
    for se_edge, instances in exp_edges.items():
        caller, callee = instances[0]
        if se_edge not in base_edges:
            if se_edge[1] not in base_nodes:
                change_type = ChangeType.CALLING_NEW_ENDPOINT
            else:
                change_type = ChangeType.CALLING_EXISTING_ENDPOINT
            diff.changes.append(Change(change_type, caller, callee))
    for se_edge, instances in base_edges.items():
        if se_edge not in exp_edges:
            caller, callee = instances[0]
            diff.changes.append(
                Change(ChangeType.REMOVING_SERVICE_CALL, caller, callee)
            )

    # Composed change types: the edge persists on the (service, endpoint)
    # plane but new versions participate.  During a live experiment both
    # the stable and the experimental version serve simultaneously, so
    # the comparison is on version *sets*, and the representative
    # instance is one involving a new version.
    for se_edge in set(base_edges) & set(exp_edges):
        base_caller_versions = {c.version for c, _ in base_edges[se_edge]}
        base_callee_versions = {e.version for _, e in base_edges[se_edge]}
        new_caller_versions = {
            c.version for c, _ in exp_edges[se_edge]
        } - base_caller_versions
        new_callee_versions = {
            e.version for _, e in exp_edges[se_edge]
        } - base_callee_versions
        if not new_caller_versions and not new_callee_versions:
            continue

        def representative(
            callers: set[str], callees: set[str]
        ) -> tuple[NodeKey, NodeKey]:
            for caller, callee in exp_edges[se_edge]:
                caller_ok = not callers or caller.version in callers
                callee_ok = not callees or callee.version in callees
                if caller_ok and callee_ok:
                    return caller, callee
            return exp_edges[se_edge][0]

        if new_caller_versions and new_callee_versions:
            caller, callee = representative(new_caller_versions, new_callee_versions)
            diff.changes.append(Change(ChangeType.UPDATED_VERSION, caller, callee))
        elif new_caller_versions:
            caller, callee = representative(new_caller_versions, set())
            diff.changes.append(
                Change(ChangeType.UPDATED_CALLER_VERSION, caller, callee)
            )
        else:
            caller, callee = representative(set(), new_callee_versions)
            diff.changes.append(
                Change(ChangeType.UPDATED_CALLEE_VERSION, caller, callee)
            )

    # Node-level fallback: entry (root) endpoints have no incoming edges,
    # so a version update or addition there would go unnoticed by the
    # edge-level passes above.
    covered: set[tuple[str, str]] = set()
    for change in diff.changes:
        covered.add(change.callee.service_endpoint)
        if change.caller is not None:
            covered.add(change.caller.service_endpoint)
    exp_nodes_by_se: dict[tuple[str, str], list[NodeKey]] = {}
    for node in experimental.nodes:
        exp_nodes_by_se.setdefault(node.service_endpoint, []).append(node)
    for se, entry in diff.entries.items():
        if se in covered:
            continue
        if entry.status is DiffStatus.UPDATED:
            new_versions = entry.experimental_versions - entry.baseline_versions
            node = next(
                (n for n in exp_nodes_by_se.get(se, []) if n.version in new_versions),
                None,
            )
            if node is not None:
                diff.changes.append(
                    Change(ChangeType.UPDATED_CALLEE_VERSION, None, node)
                )
        elif entry.status is DiffStatus.ADDED and exp_nodes_by_se.get(se):
            diff.changes.append(
                Change(
                    ChangeType.CALLING_NEW_ENDPOINT, None, exp_nodes_by_se[se][0]
                )
            )
    return diff
