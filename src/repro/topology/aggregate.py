"""Service-level aggregation of interaction graphs (Section 1.5.1).

"Should changes be considered on the level of individual service
endpoints, or is it better to treat them in an aggregated way on the
service level?" — the dissertation frames granularity as a core
trade-off: coarser graphs are cheaper to analyze and produce fewer,
broader changes; endpoint-level graphs are precise but larger.  This
module collapses endpoint nodes into one node per (service, version) so
the same diff and heuristics run at either granularity.
"""

from __future__ import annotations

from repro.topology.graph import InteractionGraph, NodeKey

#: The pseudo-endpoint aggregated nodes carry.
SERVICE_LEVEL_ENDPOINT = "*"


def aggregate_to_service_level(graph: InteractionGraph) -> InteractionGraph:
    """Collapse *graph* to one node per (service, version).

    Node statistics sum across the service's endpoints (call counts,
    errors, total response time, so means stay call-weighted); parallel
    edges between the same service pair merge likewise.  Self-edges that
    arise from intra-service endpoint calls are dropped — at service
    granularity they carry no information.
    """
    aggregated = InteractionGraph(f"{graph.name}-service-level")

    def collapse(key: NodeKey) -> NodeKey:
        return NodeKey(key.service, key.version, SERVICE_LEVEL_ENDPOINT)

    for key in graph.nodes:
        stats = graph.node_stats(key)
        target = aggregated.add_node(collapse(key))
        target.calls += stats.calls
        target.errors += stats.errors
        target.total_response_ms += stats.total_response_ms
    for caller, callee, stats in graph.edges():
        source, target = collapse(caller), collapse(callee)
        if source == target:
            continue
        edge = aggregated.add_edge(source, target)
        edge.calls += stats.calls
        edge.errors += stats.errors
        edge.total_response_ms += stats.total_response_ms
    return aggregated
