"""Producing and evaluating change rankings (Section 5.7).

Rankings order the diff's identified changes by heuristic score; quality
is measured with nDCG@5 against ground-truth relevance grades, exactly as
the paper does.  Ground truth maps the version-agnostic change identity
(type, caller service/endpoint, callee service/endpoint) to a grade —
higher means the change matters more for the experiment's health.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.stats.ranking import dcg, idcg
from repro.topology.change_types import Change
from repro.topology.diff import TopologyDiff
from repro.topology.heuristics.base import RankingHeuristic


@dataclass(frozen=True)
class RankedChange:
    """One change with its rank position and score."""

    rank: int
    change: Change
    score: float

    def describe(self) -> str:
        """One ranking-table row."""
        return f"#{self.rank:<2} score={self.score:8.3f}  {self.change.describe()}"


def rank_changes(
    diff: TopologyDiff, heuristic: RankingHeuristic
) -> list[RankedChange]:
    """Rank all identified changes of *diff* with *heuristic*.

    Ties break deterministically on the change description so rankings
    are reproducible across runs.
    """
    scores = heuristic.scores(diff)
    ordered = sorted(
        scores.items(), key=lambda item: (-item[1], item[0].describe())
    )
    return [
        RankedChange(rank=index + 1, change=change, score=score)
        for index, (change, score) in enumerate(ordered)
    ]


def evaluate_ranking(
    ranking: list[RankedChange],
    relevance: Mapping[tuple[str, str, str], float],
    k: int = 5,
) -> float:
    """nDCG@k of *ranking* against ground-truth *relevance* grades.

    Changes without a ground-truth entry count as irrelevant (grade 0).
    The ideal DCG is computed over the *full* ground truth — the union
    of the ranked changes' grades and the grades of relevant changes the
    diff never identified — so missing a relevant change lowers the
    score instead of silently shrinking the ideal.
    """
    grades = [
        float(relevance.get(ranked.change.identity, 0.0)) for ranked in ranking
    ]
    ranked_identities = {ranked.change.identity for ranked in ranking}
    missed = [
        float(grade)
        for identity, grade in relevance.items()
        if identity not in ranked_identities
    ]
    ideal = idcg(grades + missed, k)
    if ideal == 0.0:
        return 1.0
    return dcg(grades, k) / ideal


def ranking_table(ranking: list[RankedChange], limit: int = 10) -> str:
    """A printable top-*limit* ranking (the Fig 1.3 side panel)."""
    lines = [ranked.describe() for ranked in ranking[:limit]]
    return "\n".join(lines)
