"""The subtree complexity heuristic (Section 5.5.3).

Rationale: a change whose subtree (everything reachable from the changed
call in the experimental topology) is large and itself riddled with
changes can affect more of the application than a leaf-level tweak.  The
score is the uncertainty weight of the change type times the complexity
of the subtree rooted at the change's anchor, where changed descendants
contribute extra weight (Fig 5.4's topmost-subtree traversal).
"""

from __future__ import annotations

from repro.topology.change_types import Change
from repro.topology.diff import DiffStatus, TopologyDiff
from repro.topology.graph import InteractionGraph, NodeKey
from repro.topology.heuristics.base import RankingHeuristic
from repro.topology.uncertainty import UncertaintyModel, uniform_uncertainty


class SubtreeComplexityHeuristic(RankingHeuristic):
    """Scores changes by uncertainty-weighted subtree complexity.

    Args:
        use_uncertainty: when False, all change types weigh alike (the
            ``SC-plain`` variant).
        uncertainty: custom weights; defaults to the calibrated model.
        changed_bonus: extra complexity contributed by each *changed*
            (added/removed/updated) node inside the subtree.
    """

    def __init__(
        self,
        use_uncertainty: bool = True,
        uncertainty: UncertaintyModel | None = None,
        changed_bonus: float = 1.5,
    ) -> None:
        self.name = "SC" if use_uncertainty else "SC-plain"
        if use_uncertainty:
            self.uncertainty = uncertainty or UncertaintyModel()
        else:
            self.uncertainty = uniform_uncertainty()
        self.changed_bonus = changed_bonus

    def scores(self, diff: TopologyDiff) -> dict[Change, float]:
        changed_entries = {
            (entry.service, entry.endpoint)
            for entry in diff.entries.values()
            if entry.status is not DiffStatus.UNCHANGED
        }
        out: dict[Change, float] = {}
        # Memoize subtree complexities per (graph id, node).
        cache: dict[tuple[int, NodeKey], float] = {}
        for change in diff.changes:
            graph = diff.baseline if change.removed else diff.experimental
            complexity = self._complexity(
                graph, change.anchor, changed_entries, cache
            )
            out[change] = self.uncertainty.weight(change.type) * complexity
        return out

    def _complexity(
        self,
        graph: InteractionGraph,
        root: NodeKey,
        changed_entries: set[tuple[str, str]],
        cache: dict[tuple[int, NodeKey], float],
    ) -> float:
        key = (id(graph), root)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if not graph.has_node(root):
            # The anchor never served traffic on this side — minimal
            # structural evidence, count the node itself only.
            cache[key] = 1.0
            return 1.0
        total = 0.0
        seen = {root}
        frontier = [root]
        edges = 0
        while frontier:
            node = frontier.pop()
            total += 1.0
            if node.service_endpoint in changed_entries:
                total += self.changed_bonus
            for succ in graph.successors(node):
                edges += 1
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        # Edges add breadth pressure: a wide fan-out is riskier than a chain.
        total += 0.25 * edges
        cache[key] = total
        return total
