"""Ranking heuristics (Sections 5.5.3–5.5.5).

Three families, six evaluated variants — mirroring the paper's setup:

- ``SC`` / ``SC-plain``: subtree complexity, with and without
  uncertainty weighting,
- ``RT-abs`` / ``RT-rel``: response-time analysis with absolute and
  relative degradation deltas,
- ``HY-abs`` / ``HY-rel``: hybrids combining subtree complexity with
  either response-time variant.
"""

from repro.topology.heuristics.base import HeuristicResult, RankingHeuristic
from repro.topology.heuristics.subtree import SubtreeComplexityHeuristic
from repro.topology.heuristics.response_time import ResponseTimeHeuristic
from repro.topology.heuristics.hybrid import HybridHeuristic


def all_heuristic_variants() -> dict[str, RankingHeuristic]:
    """The six variants evaluated in Figs 5.6 and 5.8."""
    return {
        "SC": SubtreeComplexityHeuristic(use_uncertainty=True),
        "SC-plain": SubtreeComplexityHeuristic(use_uncertainty=False),
        "RT-abs": ResponseTimeHeuristic(relative=False),
        "RT-rel": ResponseTimeHeuristic(relative=True),
        "HY-abs": HybridHeuristic(relative=False),
        "HY-rel": HybridHeuristic(relative=True),
    }


__all__ = [
    "HeuristicResult",
    "RankingHeuristic",
    "SubtreeComplexityHeuristic",
    "ResponseTimeHeuristic",
    "HybridHeuristic",
    "all_heuristic_variants",
]
