"""Common interface of the ranking heuristics."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.topology.change_types import Change
from repro.topology.diff import TopologyDiff


@dataclass(frozen=True)
class HeuristicResult:
    """Scores assigned by one heuristic run (higher = more suspicious)."""

    heuristic: str
    scores: tuple[tuple[Change, float], ...]

    def as_dict(self) -> dict[Change, float]:
        """The scores as a mapping."""
        return dict(self.scores)


class RankingHeuristic(abc.ABC):
    """Assigns each identified change a suspicion score.

    Scores order changes by their potential *negative* impact on the
    experiment's and application's health state; ties are broken
    deterministically downstream.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def scores(self, diff: TopologyDiff) -> dict[Change, float]:
        """Score every change of *diff* (higher = rank earlier)."""

    def result(self, diff: TopologyDiff) -> HeuristicResult:
        """Run and wrap into a :class:`HeuristicResult`."""
        scores = self.scores(diff)
        return HeuristicResult(self.name, tuple(scores.items()))


def normalized(scores: dict[Change, float]) -> dict[Change, float]:
    """Scale scores into [0, 1] by the maximum (all-zero stays zero)."""
    if not scores:
        return {}
    peak = max(scores.values())
    if peak <= 0:
        return {change: 0.0 for change in scores}
    return {change: value / peak for change, value in scores.items()}
