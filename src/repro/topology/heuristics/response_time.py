"""The response time analysis heuristic (Section 5.5.4).

A simple root cause analysis over response-time regressions: for each
change, compare the anchor's mean response time between the baseline and
experimental variants.  A node whose own time degraded *more than its
downstream calls explain* is likely the culprit (its *exclusive* delta is
large); a node whose children degraded equally merely propagates a
deeper problem — the cascading effect the paper warns about.
"""

from __future__ import annotations

from repro.topology.change_types import Change
from repro.topology.diff import TopologyDiff
from repro.topology.graph import InteractionGraph
from repro.topology.heuristics.base import RankingHeuristic


def _mean_by_service_endpoint(graph: InteractionGraph) -> dict[tuple[str, str], float]:
    """Call-weighted mean response time per (service, endpoint)."""
    totals: dict[tuple[str, str], float] = {}
    calls: dict[tuple[str, str], int] = {}
    for key in graph.nodes:
        stats = graph.node_stats(key)
        se = key.service_endpoint
        totals[se] = totals.get(se, 0.0) + stats.total_response_ms
        calls[se] = calls.get(se, 0) + stats.calls
    return {
        se: totals[se] / calls[se] for se in totals if calls[se] > 0
    }


class ResponseTimeHeuristic(RankingHeuristic):
    """Scores changes by exclusive response-time degradation.

    Args:
        relative: score by relative degradation (delta / baseline) rather
            than by absolute milliseconds — the ``RT-rel`` variant.
        error_weight: additional score per unit of error-rate increase;
            breaking changes degrade correctness, not just latency.
    """

    def __init__(self, relative: bool = False, error_weight: float = 200.0) -> None:
        self.name = "RT-rel" if relative else "RT-abs"
        self.relative = relative
        self.error_weight = error_weight

    def scores(self, diff: TopologyDiff) -> dict[Change, float]:
        base_means = _mean_by_service_endpoint(diff.baseline)
        exp_means = _mean_by_service_endpoint(diff.experimental)
        base_errors = self._error_rates(diff.baseline)
        exp_errors = self._error_rates(diff.experimental)

        def delta_of(se: tuple[str, str]) -> float:
            base = base_means.get(se)
            exp = exp_means.get(se)
            if base is None or exp is None:
                return 0.0
            delta = exp - base
            if self.relative:
                return delta / base if base > 0 else 0.0
            return delta

        def error_shift_of(se: tuple[str, str]) -> float:
            return max(
                0.0, exp_errors.get(se, 0.0) - base_errors.get(se, 0.0)
            )

        out: dict[Change, float] = {}
        for change in diff.changes:
            if change.removed:
                # A removed call cannot degrade the experimental variant's
                # latency; only residual error shifts matter.
                out[change] = 0.0
                continue
            anchor = change.anchor
            anchor_se = anchor.service_endpoint
            own_delta = delta_of(anchor_se)
            own_error_shift = error_shift_of(anchor_se)
            # Root cause analysis: subtract what downstream calls explain —
            # both latency growth and error cascades propagate upward, so
            # a node whose children already account for the shift is a
            # victim, not a culprit.
            child_latency = 0.0
            child_errors = 0.0
            if diff.experimental.has_node(anchor):
                for succ in diff.experimental.successors(anchor):
                    child_latency += max(0.0, delta_of(succ.service_endpoint))
                    child_errors += error_shift_of(succ.service_endpoint)
            exclusive_latency = max(0.0, own_delta - child_latency)
            exclusive_errors = max(0.0, own_error_shift - child_errors)
            out[change] = (
                exclusive_latency + self.error_weight * exclusive_errors
            )
        return out

    @staticmethod
    def _error_rates(graph: InteractionGraph) -> dict[tuple[str, str], float]:
        errors: dict[tuple[str, str], int] = {}
        calls: dict[tuple[str, str], int] = {}
        for key in graph.nodes:
            stats = graph.node_stats(key)
            se = key.service_endpoint
            errors[se] = errors.get(se, 0) + stats.errors
            calls[se] = calls.get(se, 0) + stats.calls
        return {se: errors[se] / calls[se] for se in errors if calls[se] > 0}
