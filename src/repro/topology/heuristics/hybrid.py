"""The hybrid heuristic (Section 5.5.5).

Combines structural evidence (subtree complexity — what *could* go
wrong) with behavioural evidence (response-time analysis — what *is*
going wrong).  Both component scores are normalized to [0, 1] before the
weighted combination, so neither unit dominates.  The paper found a
hybrid to score best on average (mean nDCG5 ≈ 0.94) while noting that no
single variant wins everywhere.
"""

from __future__ import annotations

from repro.topology.change_types import Change
from repro.topology.diff import TopologyDiff
from repro.topology.heuristics.base import RankingHeuristic, normalized
from repro.topology.heuristics.response_time import ResponseTimeHeuristic
from repro.topology.heuristics.subtree import SubtreeComplexityHeuristic
from repro.topology.uncertainty import UncertaintyModel


class HybridHeuristic(RankingHeuristic):
    """Weighted combination of SC and RT scores.

    Args:
        relative: use the relative RT variant (``HY-rel``) instead of the
            absolute one (``HY-abs``).
        structure_weight: weight of the SC component in [0, 1]; the RT
            component receives the complement.
        uncertainty: optional custom uncertainty model for the SC part.
    """

    def __init__(
        self,
        relative: bool = False,
        structure_weight: float = 0.5,
        uncertainty: UncertaintyModel | None = None,
    ) -> None:
        if not 0.0 <= structure_weight <= 1.0:
            raise ValueError("structure_weight must be in [0, 1]")
        self.name = "HY-rel" if relative else "HY-abs"
        self.structure_weight = structure_weight
        self._subtree = SubtreeComplexityHeuristic(
            use_uncertainty=True, uncertainty=uncertainty
        )
        self._response_time = ResponseTimeHeuristic(relative=relative)

    def scores(self, diff: TopologyDiff) -> dict[Change, float]:
        structural = normalized(self._subtree.scores(diff))
        behavioural = normalized(self._response_time.scores(diff))
        out: dict[Change, float] = {}
        for change in diff.changes:
            out[change] = self.structure_weight * structural.get(
                change, 0.0
            ) + (1.0 - self.structure_weight) * behavioural.get(change, 0.0)
        return out
