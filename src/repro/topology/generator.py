"""Synthetic interaction graphs for the performance evaluation.

The Chapter 5 performance study (Figs 5.9, 5.10) measures heuristic
execution times on interaction graphs of up to 10,000 endpoints with
varying shapes (deep vs broad) and change frequencies.  Generating those
graphs by running traces through the simulated runtime would be wasteful;
this module builds them directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.simulation.rng import SeededRng
from repro.topology.graph import InteractionGraph, NodeKey


def random_interaction_graph(
    num_endpoints: int,
    branching: int = 3,
    seed: int = 9,
    version: str = "1.0.0",
    endpoints_per_service: int = 10,
    mean_response_ms: float = 25.0,
    calls_per_node: int = 50,
) -> InteractionGraph:
    """Generate a tree-shaped interaction graph with *num_endpoints* nodes.

    *branching* controls the shape: 1–2 yields deep chains, larger values
    broad fans (the deep-vs-broad axis of Fig 5.9).  Endpoints are packed
    into services of *endpoints_per_service* each (the paper's "1,000
    microservices with 10 endpoints each" scale).
    """
    if num_endpoints < 1:
        raise ConfigurationError("num_endpoints must be >= 1")
    if branching < 1:
        raise ConfigurationError("branching must be >= 1")
    rng = SeededRng(seed)
    graph = InteractionGraph(f"synthetic-{num_endpoints}")

    def key_of(index: int) -> NodeKey:
        service = f"svc{index // endpoints_per_service:04d}"
        endpoint = f"ep{index % endpoints_per_service}"
        return NodeKey(service, version, endpoint)

    for index in range(num_endpoints):
        key = key_of(index)
        stats = graph.add_node(key)
        mean = mean_response_ms * rng.uniform(0.4, 2.0)
        for _ in range(calls_per_node):
            stats.observe(mean * rng.uniform(0.7, 1.4), error=False)

    # Tree wiring: node i's parent is node (i-1)//branching.
    for index in range(1, num_endpoints):
        parent = key_of((index - 1) // branching)
        child = key_of(index)
        edge = graph.add_edge(parent, child)
        child_mean = graph.node_stats(child).mean_response_ms
        for _ in range(calls_per_node):
            edge.observe(child_mean * rng.uniform(0.8, 1.3), error=False)
    return graph


def _copy_graph(graph: InteractionGraph, name: str) -> InteractionGraph:
    clone = InteractionGraph(name)
    for key in graph.nodes:
        stats = graph.node_stats(key)
        cloned = clone.add_node(key)
        cloned.calls = stats.calls
        cloned.errors = stats.errors
        cloned.total_response_ms = stats.total_response_ms
    for caller, callee, stats in graph.edges():
        cloned_edge = clone.add_edge(caller, callee)
        cloned_edge.calls = stats.calls
        cloned_edge.errors = stats.errors
        cloned_edge.total_response_ms = stats.total_response_ms
    return clone


@dataclass(frozen=True)
class AppliedMutation:
    """One mutation :func:`mutate_graph_logged` actually applied.

    ``op`` is one of ``updated`` / ``new_endpoint`` / ``new_call`` /
    ``removed_call``; ``target`` is the affected (callee) node and
    ``caller`` the calling node where one exists.  The log is the ground
    truth the scenario fuzzer grades rankings against: it records what
    *really* changed, independent of what the diff later identifies.
    """

    op: str
    target: NodeKey
    caller: NodeKey | None = None


def mutate_graph(
    graph: InteractionGraph,
    changes: int,
    seed: int = 13,
    degradation_factor: float = 1.0,
) -> InteractionGraph:
    """Derive an experimental variant of *graph* with ~*changes* changes.

    Applied mutations cycle through the taxonomy: version updates of
    called endpoints, calls to brand-new endpoints, new calls to existing
    endpoints, and removed calls.  With ``degradation_factor > 1`` the
    version-updated nodes also degrade their response times — the
    "with performance issues" sub-scenarios.
    """
    variant, _ = mutate_graph_logged(graph, changes, seed, degradation_factor)
    return variant


def mutate_graph_logged(
    graph: InteractionGraph,
    changes: int,
    seed: int = 13,
    degradation_factor: float = 1.0,
) -> tuple[InteractionGraph, list[AppliedMutation]]:
    """Like :func:`mutate_graph`, but also returns the applied-mutation log."""
    if changes < 0:
        raise ConfigurationError("changes must be >= 0")
    rng = SeededRng(seed)
    log: list[AppliedMutation] = []
    variant = _copy_graph(graph, f"{graph.name}-variant")
    nodes = variant.nodes
    if not nodes:
        return variant, log
    new_service_counter = 0
    for change_index in range(changes):
        op = change_index % 4
        if op == 0:
            # Updated callee version (+ optional degradation).
            target = rng.choice(nodes)
            bumped = NodeKey(target.service, "2.0.0", target.endpoint)
            if variant.has_node(bumped) or not variant.has_node(target):
                continue
            old_stats = variant.node_stats(target)
            new_stats = variant.add_node(bumped)
            new_stats.calls = old_stats.calls
            new_stats.errors = old_stats.errors
            new_stats.total_response_ms = (
                old_stats.total_response_ms * degradation_factor
            )
            for caller in variant.predecessors(target):
                edge = variant.add_edge(caller, bumped)
                old_edge = variant.edge_stats(caller, target)
                edge.calls = old_edge.calls
                edge.total_response_ms = (
                    old_edge.total_response_ms * degradation_factor
                )
            for callee in variant.successors(target):
                edge = variant.add_edge(bumped, callee)
                old_edge = variant.edge_stats(target, callee)
                edge.calls = old_edge.calls
                edge.total_response_ms = old_edge.total_response_ms
            _remove_node(variant, target)
            log.append(AppliedMutation("updated", bumped))
            nodes = variant.nodes
        elif op == 1:
            # Calling a new endpoint (brand-new service).
            caller = rng.choice(nodes)
            new_service_counter += 1
            fresh = NodeKey(f"newsvc{new_service_counter:03d}", "1.0.0", "ep0")
            stats = variant.add_node(fresh)
            for _ in range(20):
                stats.observe(rng.uniform(10, 60), error=False)
            edge = variant.add_edge(caller, fresh)
            for _ in range(20):
                edge.observe(stats.mean_response_ms, error=False)
            log.append(AppliedMutation("new_endpoint", fresh, caller))
            nodes = variant.nodes
        elif op == 2:
            # Calling an existing endpoint from a new caller.
            caller = rng.choice(nodes)
            callee = rng.choice(nodes)
            if caller != callee and not variant.has_edge(caller, callee):
                edge = variant.add_edge(caller, callee)
                for _ in range(20):
                    edge.observe(
                        variant.node_stats(callee).mean_response_ms, error=False
                    )
                log.append(AppliedMutation("new_call", callee, caller))
        else:
            # Removing a service call (drop a leaf edge).
            caller = rng.choice(nodes)
            succs = variant.successors(caller)
            leaves = [s for s in succs if not variant.successors(s)]
            if leaves:
                leaf = rng.choice(leaves)
                _remove_edge(variant, caller, leaf)
                log.append(AppliedMutation("removed_call", leaf, caller))
    return variant, log


def _remove_edge(graph: InteractionGraph, caller: NodeKey, callee: NodeKey) -> None:
    graph._succ.get(caller, {}).pop(callee, None)
    graph._pred.get(callee, set()).discard(caller)


def _remove_node(graph: InteractionGraph, key: NodeKey) -> None:
    for targets in graph._succ.values():
        targets.pop(key, None)
    for preds in graph._pred.values():
        preds.discard(key)
    graph._succ.pop(key, None)
    graph._pred.pop(key, None)
    graph._nodes.pop(key, None)
