"""Interaction graphs (Section 5.4.2).

Nodes denote *endpoints of services in specific versions*; edges denote
observed calls between them.  Both carry aggregate runtime statistics
(call counts, response times, errors) extracted from traces, which the
response-time heuristic consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, NamedTuple

from repro.errors import TopologyError


class NodeKey(NamedTuple):
    """Identity of an interaction-graph node."""

    service: str
    version: str
    endpoint: str

    @property
    def service_endpoint(self) -> tuple[str, str]:
        """The version-agnostic (service, endpoint) identity."""
        return (self.service, self.endpoint)

    def __str__(self) -> str:
        return f"{self.service}@{self.version}/{self.endpoint}"


@dataclass
class NodeStats:
    """Aggregate runtime behaviour of one node."""

    calls: int = 0
    errors: int = 0
    total_response_ms: float = 0.0

    def observe(self, duration_ms: float, error: bool) -> None:
        """Fold in one observed call."""
        self.calls += 1
        self.total_response_ms += duration_ms
        if error:
            self.errors += 1

    @property
    def mean_response_ms(self) -> float:
        """Mean response time across observed calls (0 when unobserved)."""
        return self.total_response_ms / self.calls if self.calls else 0.0

    @property
    def error_rate(self) -> float:
        """Observed error rate."""
        return self.errors / self.calls if self.calls else 0.0


@dataclass
class EdgeStats:
    """Aggregate behaviour of one caller→callee edge."""

    calls: int = 0
    errors: int = 0
    total_response_ms: float = 0.0

    def observe(self, duration_ms: float, error: bool) -> None:
        """Fold in one observed call over this edge."""
        self.calls += 1
        self.total_response_ms += duration_ms
        if error:
            self.errors += 1

    @property
    def mean_response_ms(self) -> float:
        """Mean callee response time as seen over this edge."""
        return self.total_response_ms / self.calls if self.calls else 0.0


@dataclass
class InteractionGraph:
    """A directed multigraph of service-version-endpoint interactions."""

    name: str = "graph"
    _nodes: dict[NodeKey, NodeStats] = field(default_factory=dict)
    _succ: dict[NodeKey, dict[NodeKey, EdgeStats]] = field(default_factory=dict)
    _pred: dict[NodeKey, set[NodeKey]] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    def add_node(self, key: NodeKey) -> NodeStats:
        """Ensure *key* exists; return its stats record."""
        stats = self._nodes.get(key)
        if stats is None:
            stats = NodeStats()
            self._nodes[key] = stats
            self._succ.setdefault(key, {})
            self._pred.setdefault(key, set())
        return stats

    def add_edge(self, caller: NodeKey, callee: NodeKey) -> EdgeStats:
        """Ensure the caller→callee edge exists; return its stats record."""
        self.add_node(caller)
        self.add_node(callee)
        edges = self._succ[caller]
        stats = edges.get(callee)
        if stats is None:
            stats = EdgeStats()
            edges[callee] = stats
            self._pred[callee].add(caller)
        return stats

    def observe_call(
        self,
        caller: NodeKey | None,
        callee: NodeKey,
        duration_ms: float,
        error: bool,
    ) -> None:
        """Record one observed call (caller None for entry requests)."""
        self.add_node(callee).observe(duration_ms, error)
        if caller is not None:
            self.add_edge(caller, callee).observe(duration_ms, error)

    # -- queries --------------------------------------------------------------

    @property
    def nodes(self) -> list[NodeKey]:
        """All node keys."""
        return list(self._nodes)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of distinct edges."""
        return sum(len(edges) for edges in self._succ.values())

    def has_node(self, key: NodeKey) -> bool:
        """Whether *key* exists."""
        return key in self._nodes

    def has_edge(self, caller: NodeKey, callee: NodeKey) -> bool:
        """Whether the edge exists."""
        return callee in self._succ.get(caller, {})

    def node_stats(self, key: NodeKey) -> NodeStats:
        """Stats of node *key*."""
        try:
            return self._nodes[key]
        except KeyError:
            raise TopologyError(f"graph {self.name!r} has no node {key}") from None

    def edge_stats(self, caller: NodeKey, callee: NodeKey) -> EdgeStats:
        """Stats of the caller→callee edge."""
        try:
            return self._succ[caller][callee]
        except KeyError:
            raise TopologyError(
                f"graph {self.name!r} has no edge {caller} -> {callee}"
            ) from None

    def successors(self, key: NodeKey) -> list[NodeKey]:
        """Callees of *key*."""
        return list(self._succ.get(key, {}))

    def predecessors(self, key: NodeKey) -> list[NodeKey]:
        """Callers of *key*."""
        return list(self._pred.get(key, set()))

    def edges(self) -> Iterable[tuple[NodeKey, NodeKey, EdgeStats]]:
        """Iterate all (caller, callee, stats) triples."""
        for caller, targets in self._succ.items():
            for callee, stats in targets.items():
                yield caller, callee, stats

    def roots(self) -> list[NodeKey]:
        """Nodes without callers (the application frontier)."""
        return [key for key in self._nodes if not self._pred.get(key)]

    def service_endpoints(self) -> set[tuple[str, str]]:
        """All version-agnostic (service, endpoint) pairs."""
        return {key.service_endpoint for key in self._nodes}

    def services(self) -> set[str]:
        """All service names."""
        return {key.service for key in self._nodes}

    def versions_of(self, service: str) -> set[str]:
        """All versions of *service* present in the graph."""
        return {key.version for key in self._nodes if key.service == service}

    def subtree_size(self, root: NodeKey, max_nodes: int | None = None) -> int:
        """Number of distinct nodes reachable from *root* (inclusive)."""
        seen = {root}
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for succ in self._succ.get(node, {}):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
                    if max_nodes is not None and len(seen) >= max_nodes:
                        return len(seen)
        return len(seen)
