"""The change-type taxonomy (Section 5.4.3).

Fundamental change types describe edge-level differences between the
baseline and experimental interaction graphs; composed change types
capture version updates of already-interacting services.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.topology.graph import NodeKey


class ChangeType(enum.Enum):
    """All change types the diff identifies."""

    # Fundamental types
    CALLING_NEW_ENDPOINT = "calling_new_endpoint"
    CALLING_EXISTING_ENDPOINT = "calling_existing_endpoint"
    REMOVING_SERVICE_CALL = "removing_service_call"
    # Composed types
    UPDATED_CALLER_VERSION = "updated_caller_version"
    UPDATED_CALLEE_VERSION = "updated_callee_version"
    UPDATED_VERSION = "updated_version"

    @property
    def is_fundamental(self) -> bool:
        """Whether the type is one of the three fundamental ones."""
        return self in (
            ChangeType.CALLING_NEW_ENDPOINT,
            ChangeType.CALLING_EXISTING_ENDPOINT,
            ChangeType.REMOVING_SERVICE_CALL,
        )


@dataclass(frozen=True)
class Change:
    """One identified change in the topological difference.

    Attributes:
        type: the classified change type.
        caller: the calling node (on the experimental side where it
            exists, otherwise the baseline side).
        callee: the called node the change anchors at; ``anchor`` — the
            node heuristics analyse — is the callee when present.
        removed: True for changes that only exist on the baseline side.
    """

    type: ChangeType
    caller: NodeKey | None
    callee: NodeKey

    @property
    def anchor(self) -> NodeKey:
        """The node the change is attributed to for impact analysis.

        For caller-version updates the *caller* is the changed artifact;
        every other type anchors at the callee.
        """
        if self.type is ChangeType.UPDATED_CALLER_VERSION and self.caller is not None:
            return self.caller
        return self.callee

    @property
    def removed(self) -> bool:
        """Whether the change describes a disappearing call."""
        return self.type is ChangeType.REMOVING_SERVICE_CALL

    def describe(self) -> str:
        """Human-readable one-liner (ranking tables, UI)."""
        caller = str(self.caller) if self.caller else "<entry>"
        return f"{self.type.value}: {caller} -> {self.callee}"

    @property
    def identity(self) -> tuple[str, str, str]:
        """A version-agnostic identity used to match ground-truth labels."""
        caller_se = (
            f"{self.caller.service}/{self.caller.endpoint}" if self.caller else ""
        )
        return (
            self.type.value,
            caller_se,
            f"{self.callee.service}/{self.callee.endpoint}",
        )
