"""Streaming topology pipeline: live graphs, diffs, and health scores.

Chapter 5's health assessment is framed in the paper as *analysis of
running experiments*, yet the batch pipeline (collect → rebuild → diff →
rank) only answers after the fact.  This module turns it into a
streaming observability layer:

* :class:`StreamingGraphBuilder` subscribes to a
  :class:`~repro.tracing.collector.TraceCollector` and folds every
  completed trace into an :class:`InteractionGraph` incrementally.  It
  consumes the same :func:`~repro.topology.builder.trace_observations`
  extractor as the batch builder, so its cumulative graph is identical
  to ``build_interaction_graph`` over the same traces *by construction*
  (see ``docs/STREAMING_HEALTH.md`` for the argument, and the property
  test that pins it).
* :class:`GraphWindowRing` keeps a bounded ring of per-window graphs on
  the simulation clock plus an incrementally maintained merge, giving
  the diff a recency view instead of an ever-growing cumulative one.
* :class:`LiveTopologyDiff` pins a baseline graph, precomputes its diff
  indexes once, and refreshes a :class:`TopologyDiff` lazily (guarded by
  the builder's version counter) through the same
  :func:`~repro.topology.diff.diff_from_indexes` core that
  ``diff_graphs`` delegates to.
* :class:`HealthScorer` / :class:`LiveHealthMonitor` derive per-service
  and overall health in [0, 1] from error-rate deltas, response-time
  ratios, and the ranking heuristics' suspicion scores, publishing them
  through :mod:`repro.telemetry` as ``health.*`` metrics that Bifrost
  ``health`` checks gate on.
"""

from __future__ import annotations

from collections import Counter as Multiset
from collections import OrderedDict
from math import isclose
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import ValidationError
from repro.topology.builder import Observation, trace_observations
from repro.topology.diff import (
    TopologyDiff,
    diff_from_indexes,
    edges_by_service_endpoint,
    versions_by_service_endpoint,
)
from repro.topology.graph import InteractionGraph
from repro.topology.heuristics.base import RankingHeuristic, normalized
from repro.topology.heuristics.hybrid import HybridHeuristic
from repro.obs.events import TOPOLOGY_HEALTH
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.tracing.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.store import MetricStore
    from repro.tracing.collector import TraceCollector

#: Pseudo-version under which live health metrics are recorded.  Health
#: describes the *current mixture* of versions serving traffic, not one
#: deployment, so it gets its own version label in the metric store.
HEALTH_VERSION = "live"

#: Metric name health checks read (per service, and for the overall
#: score under :data:`OVERALL_SERVICE`).
HEALTH_METRIC = "health.score"

#: Pseudo-service carrying the application-wide (minimum) health score.
OVERALL_SERVICE = "topology"


# ---------------------------------------------------------------------------
# graph helpers
# ---------------------------------------------------------------------------


def merge_graph_into(target: InteractionGraph, source: InteractionGraph) -> None:
    """Fold *source*'s nodes, edges, and aggregate stats into *target*."""
    for key in source.nodes:
        stats = source.node_stats(key)
        into = target.add_node(key)
        into.calls += stats.calls
        into.errors += stats.errors
        into.total_response_ms += stats.total_response_ms
    for caller, callee, stats in source.edges():
        into = target.add_edge(caller, callee)
        into.calls += stats.calls
        into.errors += stats.errors
        into.total_response_ms += stats.total_response_ms


def copy_graph(graph: InteractionGraph, name: str | None = None) -> InteractionGraph:
    """An independent copy of *graph* (stats records are not shared)."""
    out = InteractionGraph(name or graph.name)
    merge_graph_into(out, graph)
    return out


def _stats_equal(sa, sb, rel_tol: float) -> bool:
    return (
        sa.calls == sb.calls
        and sa.errors == sb.errors
        and isclose(
            sa.total_response_ms,
            sb.total_response_ms,
            rel_tol=rel_tol,
            abs_tol=1e-9,
        )
    )


def graphs_equal(
    a: InteractionGraph, b: InteractionGraph, rel_tol: float = 1e-9
) -> bool:
    """Structural + statistical equality, independent of insertion order.

    Compares node sets, edge sets, and every node's / edge's call count,
    error count, and total response time — the full observable state the
    heuristics consume.  Call and error counts must match exactly;
    response-time totals are compared with *rel_tol* because streaming
    and batch builders accumulate the same float terms in different
    orders, and float addition is not associative.
    """
    if set(a.nodes) != set(b.nodes):
        return False
    for key in a.nodes:
        if not _stats_equal(a.node_stats(key), b.node_stats(key), rel_tol):
            return False
    edges_a = {(c, e): s for c, e, s in a.edges()}
    edges_b = {(c, e): s for c, e, s in b.edges()}
    if set(edges_a) != set(edges_b):
        return False
    for key, sa in edges_a.items():
        if not _stats_equal(sa, edges_b[key], rel_tol):
            return False
    return True


# ---------------------------------------------------------------------------
# windowed snapshots
# ---------------------------------------------------------------------------


class GraphWindowRing:
    """A bounded ring of per-window interaction graphs on the sim clock.

    Observations land in the window ``floor(start / window_seconds)``;
    when more than *capacity* windows are live the oldest expires.  The
    merge of all live windows is maintained incrementally and only
    rebuilt after an expiry (stats cannot be subtracted).  Observations
    for already-expired windows are dropped and counted — the streaming
    analogue of a late span arriving for an evicted trace.
    """

    def __init__(self, window_seconds: float, capacity: int = 8) -> None:
        if window_seconds <= 0:
            raise ValidationError("window_seconds must be positive")
        if capacity <= 0:
            raise ValidationError("window capacity must be positive")
        self.window_seconds = window_seconds
        self.capacity = capacity
        self._windows: OrderedDict[int, InteractionGraph] = OrderedDict()
        self._merged = InteractionGraph("windows-merged")
        self._merged_dirty = False
        self._expired_through: int | None = None
        self.late_observations_dropped = 0
        self.expired_windows = 0

    def index_of(self, timestamp: float) -> int:
        """The window index a timestamp falls into."""
        return int(timestamp // self.window_seconds)

    def observe(self, obs: Observation) -> None:
        """Fold one observation into its window (and the merge)."""
        idx = self.index_of(obs.start)
        if self._expired_through is not None and idx <= self._expired_through:
            self.late_observations_dropped += 1
            return
        window = self._windows.get(idx)
        if window is None:
            window = InteractionGraph(f"window-{idx}")
            self._windows[idx] = window
        window.observe_call(obs.caller, obs.callee, obs.duration_ms, obs.error)
        if not self._merged_dirty:
            self._merged.observe_call(
                obs.caller, obs.callee, obs.duration_ms, obs.error
            )
        while len(self._windows) > self.capacity:
            self._expire(min(self._windows))

    def _expire(self, idx: int) -> None:
        del self._windows[idx]
        self._expired_through = (
            idx
            if self._expired_through is None
            else max(self._expired_through, idx)
        )
        self.expired_windows += 1
        self._merged_dirty = True

    @property
    def window_indexes(self) -> list[int]:
        """Live window indexes, ascending."""
        return sorted(self._windows)

    def window(self, idx: int) -> InteractionGraph | None:
        """The graph of one live window (None if absent or expired)."""
        return self._windows.get(idx)

    def merged(self) -> InteractionGraph:
        """The merge of all live windows (rebuilt only after expiry)."""
        if self._merged_dirty:
            self._merged = InteractionGraph("windows-merged")
            for idx in sorted(self._windows):
                merge_graph_into(self._merged, self._windows[idx])
            self._merged_dirty = False
        return self._merged


# ---------------------------------------------------------------------------
# streaming builder
# ---------------------------------------------------------------------------


class StreamingGraphBuilder:
    """Maintains an interaction graph incrementally from a trace stream.

    Attach to a collector with :meth:`attach`; every trace that becomes
    assemblable is folded into :attr:`graph` by applying the *multiset
    difference* between the trace's current observations and what was
    already applied for that trace id.  Collectors re-notify when a
    complete trace grows (late dark-launch duplicates), and because
    graph statistics are commutative sums, applying only the difference
    keeps the cumulative graph exactly equal to the batch builder's
    output over the same traces.

    An optional :class:`GraphWindowRing` additionally buckets the same
    observations by span start time for recency-scoped diffing.
    """

    def __init__(
        self,
        name: str = "streaming",
        include_shadow: bool = True,
        window_seconds: float | None = None,
        window_capacity: int = 8,
        observer: Observer | None = None,
    ) -> None:
        self.graph = InteractionGraph(name)
        self.include_shadow = include_shadow
        self.observer = observer or NULL_OBSERVER
        self.windows = (
            GraphWindowRing(window_seconds, window_capacity)
            if window_seconds is not None
            else None
        )
        self._applied: dict[str, Multiset[Observation]] = {}
        self._version = 0
        self._trace_count = 0
        self._subscribers: list[Callable[[Trace, Multiset[Observation]], None]] = []

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumps whenever the graph changes."""
        return self._version

    @property
    def trace_count(self) -> int:
        """Number of distinct traces folded in so far."""
        return self._trace_count

    def attach(self, collector: "TraceCollector") -> "StreamingGraphBuilder":
        """Subscribe to *collector*'s completion and eviction streams."""
        collector.subscribe(self.on_trace, self.on_evict)
        return self

    def subscribe(
        self, on_update: Callable[[Trace, Multiset[Observation]], None]
    ) -> None:
        """Call *on_update* (trace, newly applied observations) per fold."""
        self._subscribers.append(on_update)

    def on_trace(self, trace: Trace) -> None:
        """Fold one (possibly re-notified) complete trace into the graph."""
        if self.observer.enabled:
            with self.observer.timed("topology_fold_seconds"):
                self._fold(trace)
            return
        self._fold(trace)

    def _fold(self, trace: Trace) -> None:
        """The fold itself (multiset delta application); see :meth:`on_trace`."""
        observations = Multiset(trace_observations(trace, self.include_shadow))
        already = self._applied.get(trace.trace_id)
        if already is None:
            delta = observations
            self._trace_count += 1
        else:
            delta = observations - already
            if not delta:
                return
        self._applied[trace.trace_id] = observations
        for obs, count in delta.items():
            for _ in range(count):
                self.graph.observe_call(
                    obs.caller, obs.callee, obs.duration_ms, obs.error
                )
                if self.windows is not None:
                    self.windows.observe(obs)
        self._version += 1
        for subscriber in self._subscribers:
            subscriber(trace, delta)

    def on_evict(self, trace_id: str) -> None:
        """Drop per-trace bookkeeping once the collector evicted the trace.

        The collector's tombstones guarantee no further spans of this
        trace will be delivered, so the multiset can be released; the
        already-applied observations stay in the graph (the stream of
        completed traces includes it).
        """
        self._applied.pop(trace_id, None)


# ---------------------------------------------------------------------------
# incremental diff against a pinned baseline
# ---------------------------------------------------------------------------


class LiveTopologyDiff:
    """A :class:`TopologyDiff` kept current against a pinned baseline.

    The baseline graph and its diff indexes (version sets and edge
    instances per (service, endpoint)) are computed once at pin time;
    each refresh only re-derives the experimental side from the live
    graph, through the same :func:`diff_from_indexes` core that
    ``diff_graphs`` uses — so a live diff is bit-identical to a batch
    diff of the same two graphs.  Refreshes are lazy, guarded by the
    builder's version counter: arbitrarily many reads between trace
    arrivals cost one diff.
    """

    def __init__(
        self,
        baseline: InteractionGraph,
        builder: StreamingGraphBuilder,
        use_windows: bool | None = None,
    ) -> None:
        """*use_windows* selects the live graph source: the window merge
        (recency view) or the cumulative graph.  Defaults to windows
        when the builder has a ring."""
        self._baseline = baseline
        self._base_nodes = versions_by_service_endpoint(baseline)
        self._base_edges = edges_by_service_endpoint(baseline)
        self._builder = builder
        if use_windows is None:
            use_windows = builder.windows is not None
        if use_windows and builder.windows is None:
            raise ValidationError(
                "use_windows requires a builder with a window ring"
            )
        self._use_windows = use_windows
        self._cached: TopologyDiff | None = None
        self._cached_version = -1
        self.refreshes = 0

    @property
    def baseline(self) -> InteractionGraph:
        """The pinned baseline graph."""
        return self._baseline

    def _live_graph(self) -> InteractionGraph:
        if self._use_windows:
            assert self._builder.windows is not None
            return self._builder.windows.merged()
        return self._builder.graph

    def current(self) -> TopologyDiff:
        """The up-to-date diff (recomputed only if the graph changed)."""
        version = self._builder.version
        if self._cached is None or version != self._cached_version:
            with self._builder.observer.timed("topology_diff_seconds"):
                self._cached = diff_from_indexes(
                    self._baseline,
                    self._live_graph(),
                    self._base_nodes,
                    self._base_edges,
                )
            self._cached_version = version
            self.refreshes += 1
        return self._cached


# ---------------------------------------------------------------------------
# health scoring
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HealthWeights:
    """Component weights of the health score (must sum to <= 1)."""

    error: float = 0.45
    response_time: float = 0.35
    suspicion: float = 0.20


@dataclass(frozen=True)
class HealthReport:
    """Health scores derived from one diff refresh."""

    services: dict[str, float] = field(default_factory=dict)
    overall: float = 1.0
    components: dict[str, dict[str, float]] = field(default_factory=dict)

    def describe(self) -> str:
        """One line per service plus the overall score."""
        lines = [
            f"  {service}: {score:.3f}"
            for service, score in sorted(self.services.items())
        ]
        return "\n".join([f"overall health: {self.overall:.3f}"] + lines)


#: An error-rate increase of this much (absolute) exhausts the error
#: component; a response-time ratio of +100% exhausts the RT component.
ERROR_FULL_SCALE = 0.5
RT_FULL_SCALE = 1.0


def _per_service(graph: InteractionGraph) -> dict[str, tuple[int, int, float]]:
    """(calls, errors, total_response_ms) aggregated per service."""
    out: dict[str, tuple[int, int, float]] = {}
    for key in graph.nodes:
        stats = graph.node_stats(key)
        calls, errors, total = out.get(key.service, (0, 0, 0.0))
        out[key.service] = (
            calls + stats.calls,
            errors + stats.errors,
            total + stats.total_response_ms,
        )
    return out


class HealthScorer:
    """Derives per-service health in [0, 1] from a topology diff.

    Three penalty components per service, each clipped to [0, 1]:

    * **error**: the increase of the service's error rate over baseline,
      scaled by :data:`ERROR_FULL_SCALE`;
    * **response_time**: the relative mean-response-time degradation
      over baseline, scaled by :data:`RT_FULL_SCALE`;
    * **suspicion**: the service's strongest normalized heuristic score
      among the diff's identified changes anchored at it, *scaled by the
      observed severity* (the error + RT penalties).  Heuristic scores
      are relative — some change always ranks first, even in a perfectly
      healthy rollout — so they attribute blame when something misbehaves
      rather than flat-penalizing every change.

    ``health = 1 - clip(weighted penalty sum)``; the overall score is
    the minimum across services (an experiment is as healthy as its
    sickest service).
    """

    def __init__(
        self,
        weights: HealthWeights | None = None,
        heuristic: RankingHeuristic | None = None,
    ) -> None:
        self.weights = weights or HealthWeights()
        self.heuristic = heuristic or HybridHeuristic()

    def report(self, diff: TopologyDiff) -> HealthReport:
        """Score every service of the diff's experimental graph."""
        base = _per_service(diff.baseline)
        live = _per_service(diff.experimental)
        suspicion_by_service: dict[str, float] = {}
        if diff.changes:
            for change, score in normalized(self.heuristic.scores(diff)).items():
                service = change.anchor.service
                suspicion_by_service[service] = max(
                    suspicion_by_service.get(service, 0.0), score
                )

        services: dict[str, float] = {}
        components: dict[str, dict[str, float]] = {}
        for service, (calls, errors, total) in sorted(live.items()):
            if calls == 0:
                continue
            error_rate = errors / calls
            mean_rt = total / calls
            b_calls, b_errors, b_total = base.get(service, (0, 0, 0.0))
            base_error_rate = b_errors / b_calls if b_calls else 0.0
            error_delta = max(0.0, error_rate - base_error_rate)
            if b_calls and b_total > 0:
                base_rt = b_total / b_calls
                rt_ratio = max(0.0, (mean_rt - base_rt) / base_rt)
            else:
                rt_ratio = 0.0
            error_penalty = min(1.0, error_delta / ERROR_FULL_SCALE)
            rt_penalty = min(1.0, rt_ratio / RT_FULL_SCALE)
            severity = min(1.0, error_penalty + rt_penalty)
            suspicion = suspicion_by_service.get(service, 0.0) * severity
            penalty = (
                self.weights.error * error_penalty
                + self.weights.response_time * rt_penalty
                + self.weights.suspicion * suspicion
            )
            services[service] = max(0.0, 1.0 - min(1.0, penalty))
            components[service] = {
                "error_delta": error_delta,
                "rt_ratio": rt_ratio,
                "suspicion": suspicion,
            }
        overall = min(services.values()) if services else 1.0
        return HealthReport(services=services, overall=overall, components=components)


class LiveHealthMonitor:
    """Publishes live health scores into a :class:`MetricStore`.

    Subscribes to a :class:`StreamingGraphBuilder`; whenever a trace is
    folded in and at least *publish_interval* simulated seconds passed
    since the last publication, it refreshes the live diff, scores it,
    and records ``health.score`` per service under version
    :data:`HEALTH_VERSION` plus the overall score under service
    :data:`OVERALL_SERVICE` — exactly where Bifrost ``health`` checks
    look.
    """

    def __init__(
        self,
        builder: StreamingGraphBuilder,
        baseline: InteractionGraph,
        store: "MetricStore",
        publish_interval: float = 5.0,
        scorer: HealthScorer | None = None,
        use_windows: bool | None = None,
    ) -> None:
        if publish_interval < 0:
            raise ValidationError("publish_interval must be >= 0")
        self.live = LiveTopologyDiff(baseline, builder, use_windows)
        self.scorer = scorer or HealthScorer()
        self.obs = builder.observer
        self._store = store
        self._interval = publish_interval
        self._last_publish: float | None = None
        self.publishes = 0
        self.last_report: HealthReport | None = None
        builder.subscribe(self._on_update)

    def overall_health(self) -> float | None:
        """Overall score of the last published report (None before one).

        The accessor downstream supervisors poll — e.g. the fleet
        watchdog (:mod:`repro.fleet.watchdog`) — without reaching into
        report internals.
        """
        return self.last_report.overall if self.last_report is not None else None

    def _on_update(self, trace: Trace, _delta: Multiset[Observation]) -> None:
        timestamp = trace.root.end
        if (
            self._last_publish is not None
            and timestamp - self._last_publish < self._interval
        ):
            return
        self.publish(timestamp)

    def publish(self, timestamp: float) -> HealthReport:
        """Force one score computation + publication at *timestamp*."""
        diff = self.live.current()
        with self.obs.timed("topology_rank_seconds"):
            report = self.scorer.report(diff)
        for service, score in sorted(report.services.items()):
            self._store.record(
                service, HEALTH_VERSION, HEALTH_METRIC, timestamp, score
            )
        self._store.record(
            OVERALL_SERVICE, HEALTH_VERSION, HEALTH_METRIC, timestamp, report.overall
        )
        self._last_publish = timestamp
        self.publishes += 1
        self.last_report = report
        if self.obs.enabled:
            self.obs.emit(
                TOPOLOGY_HEALTH,
                timestamp,
                overall=report.overall,
                services=dict(sorted(report.services.items())),
            )
            metrics = self.obs.metrics
            metrics.counter("topology_health_publishes_total").increment()
            metrics.gauge("topology_health_overall").set(report.overall)
            for service, score in report.services.items():
                metrics.gauge("topology_health", service=service).set(score)
        return report
