"""The uncertainty model (Sections 1.2.4 and 5.5.3).

Each change type carries a scalar expressing how much uncertainty it
introduces: consuming a completely new service is riskier than bumping
the version of an already-exercised one, which in turn is riskier than
removing a call.  The scalars are configurable — the paper calibrated
them through evaluation runs — and consumed by the subtree-complexity
heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.topology.change_types import ChangeType

_DEFAULT_WEIGHTS: dict[ChangeType, float] = {
    ChangeType.CALLING_NEW_ENDPOINT: 1.0,
    ChangeType.CALLING_EXISTING_ENDPOINT: 0.6,
    ChangeType.REMOVING_SERVICE_CALL: 0.35,
    ChangeType.UPDATED_CALLER_VERSION: 0.5,
    ChangeType.UPDATED_CALLEE_VERSION: 0.7,
    ChangeType.UPDATED_VERSION: 0.85,
}


@dataclass(frozen=True)
class UncertaintyModel:
    """Scalar uncertainty weights per change type."""

    weights: dict[ChangeType, float] = field(
        default_factory=lambda: dict(_DEFAULT_WEIGHTS)
    )

    def __post_init__(self) -> None:
        missing = set(ChangeType) - set(self.weights)
        if missing:
            raise ConfigurationError(
                f"uncertainty model misses weights for {sorted(t.value for t in missing)}"
            )
        for change_type, weight in self.weights.items():
            if weight < 0:
                raise ConfigurationError(
                    f"uncertainty weight of {change_type.value} must be >= 0"
                )

    def weight(self, change_type: ChangeType) -> float:
        """The uncertainty scalar of *change_type*."""
        return self.weights[change_type]

    def scaled(self, factor: float) -> "UncertaintyModel":
        """A copy with every weight multiplied by *factor*."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return UncertaintyModel(
            {ct: w * factor for ct, w in self.weights.items()}
        )


def uniform_uncertainty(value: float = 1.0) -> UncertaintyModel:
    """A model that treats every change type alike (SC baseline variant)."""
    if value < 0:
        raise ConfigurationError("uncertainty value must be >= 0")
    return UncertaintyModel({ct: value for ct in ChangeType})
