"""Visualizing topological differences (Fig 1.3 / Fig 5.5).

The research prototype renders the topological difference interactively
with color coding — red for removed, green for added, yellow for updated
nodes — next to the change ranking.  This module produces the same view
as Graphviz DOT (for rendering) and as a plain-text report (for
terminals and logs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.topology.diff import DiffStatus, TopologyDiff
from repro.topology.ranking import RankedChange

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology.streaming import HealthReport

_COLORS = {
    DiffStatus.ADDED: "palegreen",
    DiffStatus.REMOVED: "lightcoral",
    DiffStatus.UPDATED: "khaki",
    DiffStatus.UNCHANGED: "white",
}


def diff_to_dot(diff: TopologyDiff, name: str = "topological_difference") -> str:
    """Render *diff* as a Graphviz digraph with the paper's color coding.

    Nodes are (service, endpoint) pairs labelled with both variants'
    version sets; edges are drawn from the union of both graphs, dashed
    when they only exist on the baseline side (removed calls).
    """
    lines = [f'digraph "{name}" {{', "  rankdir=LR;", "  node [style=filled];"]
    for (service, endpoint), entry in sorted(diff.entries.items()):
        base = ",".join(sorted(entry.baseline_versions)) or "-"
        exp = ",".join(sorted(entry.experimental_versions)) or "-"
        label = f"{service}/{endpoint}\\n{base} → {exp}"
        color = _COLORS[entry.status]
        lines.append(
            f'  "{service}/{endpoint}" [label="{label}", fillcolor={color}];'
        )
    seen: set[tuple[tuple[str, str], tuple[str, str]]] = set()
    for graph, style in ((diff.experimental, "solid"), (diff.baseline, "dashed")):
        for caller, callee, _stats in graph.edges():
            key = (caller.service_endpoint, callee.service_endpoint)
            if key in seen:
                continue
            seen.add(key)
            source = f"{caller.service}/{caller.endpoint}"
            target = f"{callee.service}/{callee.endpoint}"
            lines.append(f'  "{source}" -> "{target}" [style={style}];')
    lines.append("}")
    return "\n".join(lines)


def diff_report(
    diff: TopologyDiff, ranking: list[RankedChange] | None = None, top: int = 5
) -> str:
    """A terminal-friendly rendering of the Fig 1.3 view.

    Left panel: the color-coded entries (one line each); right panel
    (below): the top-ranked changes when a ranking is supplied.
    """
    marker = {
        DiffStatus.ADDED: "[+]",
        DiffStatus.REMOVED: "[-]",
        DiffStatus.UPDATED: "[~]",
        DiffStatus.UNCHANGED: "[ ]",
    }
    lines = ["Topological difference:"]
    for (service, endpoint), entry in sorted(diff.entries.items()):
        base = ",".join(sorted(entry.baseline_versions)) or "-"
        exp = ",".join(sorted(entry.experimental_versions)) or "-"
        lines.append(
            f"  {marker[entry.status]} {service}/{endpoint}: {base} -> {exp}"
        )
    summary = diff.summary()
    lines.append(
        f"  ({summary['added']} added, {summary['removed']} removed, "
        f"{summary['updated']} updated, {summary['changes']} changes)"
    )
    if ranking:
        lines.append("Top-ranked changes:")
        for ranked in ranking[:top]:
            lines.append(f"  {ranked.describe()}")
    return "\n".join(lines)


def _health_bar(score: float, width: int = 20) -> str:
    filled = round(max(0.0, min(1.0, score)) * width)
    return "#" * filled + "." * (width - filled)


def topology_health_panel(
    report: "HealthReport",
    diff: TopologyDiff | None = None,
    ranking: list[RankedChange] | None = None,
    top: int = 5,
) -> str:
    """The live-dashboard view of the streaming health pipeline.

    Renders per-service health bars from a
    :class:`~repro.topology.streaming.HealthReport` (annotated with the
    dominant penalty component per service), optionally followed by the
    Fig 1.3 diff/ranking panel for the same refresh.
    """
    lines = [
        f"Topology health (overall {report.overall:.3f}):",
    ]
    for service, score in sorted(report.services.items()):
        parts = report.components.get(service, {})
        worst = max(parts, key=parts.get) if parts and max(parts.values()) > 0 else None
        note = f"  <- {worst}" if worst else ""
        lines.append(f"  {service:<12} [{_health_bar(score)}] {score:.3f}{note}")
    if not report.services:
        lines.append("  (no live traffic observed yet)")
    if diff is not None:
        lines.append(diff_report(diff, ranking, top))
    return "\n".join(lines)
