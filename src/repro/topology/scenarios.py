"""Release scenarios for the ranking-quality evaluation (Section 5.7).

Two scenarios mirror the paper's setup, each with a sub-scenario with and
without injected performance degradation:

- **Scenario 1 — revisiting the sample application**: the experimental
  variant introduces a recommendation service (the dissertation's
  motivating example), consumes an existing catalog endpoint from it,
  updates the catalog, and drops the search call.
- **Scenario 2 — breaking changes**: a pricing update starts failing,
  cascading errors into its callers, next to benign changes that should
  rank below it.

Ground-truth relevance grades encode the paper's rationale: changes that
actually hurt the experiment's health are highly relevant (3), risky
structural changes are relevant (2), benign changes marginal (1),
no-impact changes irrelevant (0).  Both variants are exercised through
the full simulated runtime so graphs come from real traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.microservices.application import Application
from repro.microservices.runtime import Runtime
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import LoadSensitiveLatency, LogNormalLatency
from repro.topology.builder import build_interaction_graph
from repro.topology.diff import TopologyDiff, diff_graphs
from repro.topology.graph import InteractionGraph
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator


@dataclass(frozen=True)
class ReleaseScenario:
    """One evaluation scenario: graphs, diff, and ground truth."""

    name: str
    degraded: bool
    baseline: InteractionGraph
    experimental: InteractionGraph
    relevance: dict[tuple[str, str, str], float]

    def diff(self) -> TopologyDiff:
        """The topological difference of the two variants."""
        return diff_graphs(self.baseline, self.experimental)


def _endpoint(name: str, median_ms: float, calls=(), error_rate: float = 0.0,
              latency_factor: float = 1.0) -> EndpointSpec:
    return EndpointSpec(
        name=name,
        latency=LoadSensitiveLatency(
            LogNormalLatency(median_ms * latency_factor, 0.25)
        ),
        error_rate=error_rate,
        calls=calls,
    )


def _version(service: str, version: str, endpoints: list[EndpointSpec]) -> ServiceVersion:
    return ServiceVersion(
        service, version, {e.name: e for e in endpoints}, capacity_rps=500.0
    )


def sample_application() -> Application:
    """The baseline e-commerce case-study application (cf. Fig 4.5)."""
    app = Application("ab-inc")
    app.deploy(
        _version("frontend", "1.0.0", [
            _endpoint("index", 12, (
                DownstreamCall("catalog", "list"),
                DownstreamCall("cart", "view", probability=0.6),
                DownstreamCall("search", "query", probability=0.5),
            )),
        ]),
        stable=True,
    )
    app.deploy(
        _version("catalog", "1.0.0", [
            _endpoint("list", 20, (
                DownstreamCall("inventory", "stock"),
                DownstreamCall("pricing", "quote"),
            )),
        ]),
        stable=True,
    )
    app.deploy(
        _version("cart", "1.0.0", [
            _endpoint("view", 15, (DownstreamCall("pricing", "quote"),)),
        ]),
        stable=True,
    )
    app.deploy(
        _version("search", "1.0.0", [
            _endpoint("query", 25, (DownstreamCall("catalog", "list"),)),
        ]),
        stable=True,
    )
    app.deploy(
        _version("inventory", "1.0.0", [_endpoint("stock", 10)]), stable=True
    )
    app.deploy(
        _version("pricing", "1.0.0", [_endpoint("quote", 8)]), stable=True
    )
    return app


def _trace_graph(app: Application, name: str, seed: int, requests: int = 600) -> InteractionGraph:
    """Drive *app* with a workload and build its interaction graph."""
    runtime = Runtime(app, seed=seed)
    population = UserPopulation(300, DEFAULT_GROUPS, seed=seed + 1)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=seed + 2)
    for request in workload.poisson(40.0, requests / 40.0):
        runtime.execute(request)
    return build_interaction_graph(runtime.collector.traces(), name)


def scenario1(degraded: bool = False, seed: int = 31) -> ReleaseScenario:
    """Scenario 1: the recommendation-feature experiment.

    Changes the experimental variant introduces:

    1. frontend 2.0.0 calls the **new** ``recommend`` service,
    2. recommend calls the **existing** ``catalog.list`` endpoint,
    3. catalog is updated to 2.0.0 (degraded in the sub-scenario),
    4. frontend 2.0.0 **removes** the ``search.query`` call.
    """
    baseline_app = sample_application()
    baseline = _trace_graph(baseline_app, "baseline", seed)

    exp_app = sample_application()
    catalog_factor = 2.5 if degraded else 1.0
    exp_app.deploy(
        _version("frontend", "2.0.0", [
            _endpoint("index", 12, (
                DownstreamCall("catalog", "list"),
                DownstreamCall("cart", "view", probability=0.6),
                DownstreamCall("recommend", "suggest"),
            )),
        ]),
        stable=True,
    )
    exp_app.deploy(
        _version("recommend", "1.0.0", [
            _endpoint("suggest", 18, (DownstreamCall("catalog", "list"),)),
        ]),
        stable=True,
    )
    exp_app.deploy(
        _version("catalog", "2.0.0", [
            _endpoint("list", 20, (
                DownstreamCall("inventory", "stock"),
                DownstreamCall("pricing", "quote"),
            ), latency_factor=catalog_factor),
        ]),
        stable=True,
    )
    experimental = _trace_graph(exp_app, "experimental", seed + 10)

    if degraded:
        # The updated catalog is the actual health problem (it appears as
        # the updated_version edge from the frontend and as the updated
        # caller on its outgoing calls); the new recommendation path
        # remains structurally risky.
        relevance = {
            ("updated_version", "frontend/index", "catalog/list"): 3.0,
            ("updated_caller_version", "catalog/list", "inventory/stock"): 2.0,
            ("updated_caller_version", "catalog/list", "pricing/quote"): 2.0,
            ("calling_new_endpoint", "frontend/index", "recommend/suggest"): 2.0,
            ("calling_existing_endpoint", "recommend/suggest", "catalog/list"): 2.0,
            ("updated_caller_version", "frontend/index", "cart/view"): 1.0,
            ("removing_service_call", "frontend/index", "search/query"): 1.0,
            ("removing_service_call", "search/query", "catalog/list"): 0.0,
        }
    else:
        # Without degradation the structurally riskiest change — the new
        # service on the hot path — matters most.
        relevance = {
            ("calling_new_endpoint", "frontend/index", "recommend/suggest"): 3.0,
            ("calling_existing_endpoint", "recommend/suggest", "catalog/list"): 2.0,
            ("updated_version", "frontend/index", "catalog/list"): 2.0,
            ("updated_caller_version", "catalog/list", "inventory/stock"): 1.0,
            ("updated_caller_version", "catalog/list", "pricing/quote"): 1.0,
            ("updated_caller_version", "frontend/index", "cart/view"): 1.0,
            ("removing_service_call", "frontend/index", "search/query"): 1.0,
            ("removing_service_call", "search/query", "catalog/list"): 0.0,
        }
    return ReleaseScenario(
        name="scenario1" + ("-degraded" if degraded else ""),
        degraded=degraded,
        baseline=baseline,
        experimental=experimental,
        relevance=relevance,
    )


def scenario2(degraded: bool = True, seed: int = 47) -> ReleaseScenario:
    """Scenario 2: breaking changes.

    The pricing service is updated to a version that fails a large share
    of requests (and, in the degraded sub-scenario, also slows down),
    cascading errors into catalog and cart.  Alongside, two benign
    changes happen: inventory gets a harmless version bump and the
    frontend additionally consults a new audit service.
    """
    baseline_app = sample_application()
    baseline = _trace_graph(baseline_app, "baseline", seed)

    exp_app = sample_application()
    exp_app.deploy(
        _version("pricing", "2.0.0", [
            _endpoint(
                "quote", 8,
                error_rate=0.45,
                latency_factor=3.0 if degraded else 1.0,
            ),
        ]),
        stable=True,
    )
    exp_app.deploy(
        _version("inventory", "1.1.0", [_endpoint("stock", 10)]), stable=True
    )
    exp_app.deploy(
        _version("frontend", "1.1.0", [
            _endpoint("index", 12, (
                DownstreamCall("catalog", "list"),
                DownstreamCall("cart", "view", probability=0.6),
                DownstreamCall("search", "query", probability=0.5),
                DownstreamCall("audit", "log", probability=0.8),
            )),
        ]),
        stable=True,
    )
    exp_app.deploy(
        _version("audit", "1.0.0", [_endpoint("log", 5)]), stable=True
    )
    experimental = _trace_graph(exp_app, "experimental", seed + 10)

    relevance = {
        ("updated_callee_version", "catalog/list", "pricing/quote"): 3.0,
        ("updated_callee_version", "cart/view", "pricing/quote"): 3.0,
        ("updated_callee_version", "catalog/list", "inventory/stock"): 1.0,
        ("calling_new_endpoint", "frontend/index", "audit/log"): 1.0,
        ("updated_caller_version", "frontend/index", "catalog/list"): 1.0,
        ("updated_caller_version", "frontend/index", "cart/view"): 1.0,
        ("updated_caller_version", "frontend/index", "search/query"): 1.0,
    }
    return ReleaseScenario(
        name="scenario2" + ("-degraded" if degraded else ""),
        degraded=degraded,
        baseline=baseline,
        experimental=experimental,
        relevance=relevance,
    )
