"""Experiment verification (Section 1.6.4 — future work, implemented).

The dissertation envisions "experiment verification, i.e., to identify
upfront whether a defined experiment could negatively interfere with
other planned or currently running experiments", building on the formal
models behind Bifrost and Fenrir.  This package implements that vision
as static analysis: strategies are verified against the application
(versions deployed, checks well-formed, every phase has a safe failure
path) and against each other (no two strategies touching the same
service may run concurrently — the overlap Fenrir schedules around).
"""

from repro.verification.findings import Finding, Severity, VerificationReport
from repro.verification.strategy import (
    verify_strategies_compatible,
    verify_strategy,
)

__all__ = [
    "Finding",
    "Severity",
    "VerificationReport",
    "verify_strategy",
    "verify_strategies_compatible",
]
