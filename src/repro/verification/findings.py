"""Verification findings and reports."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ERROR findings mean the strategy must not be executed; WARNING
    findings flag risks the release engineer should sign off on.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One verification finding."""

    severity: Severity
    code: str
    message: str
    phase: str | None = None

    def describe(self) -> str:
        """One log line."""
        location = f" [{self.phase}]" if self.phase else ""
        return f"{self.severity.value.upper()} {self.code}{location}: {self.message}"


@dataclass
class VerificationReport:
    """All findings of one verification run."""

    subject: str
    findings: list[Finding] = field(default_factory=list)

    def add(
        self,
        severity: Severity,
        code: str,
        message: str,
        phase: str | None = None,
    ) -> None:
        """Record a finding."""
        self.findings.append(Finding(severity, code, message, phase))

    @property
    def errors(self) -> list[Finding]:
        """ERROR-level findings."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        """WARNING-level findings."""
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """Whether the subject may be executed (no errors)."""
        return not self.errors

    def describe(self) -> str:
        """Multi-line summary."""
        if not self.findings:
            return f"{self.subject}: verified, no findings"
        lines = [f"{self.subject}: {len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        lines.extend(f"  {finding.describe()}" for finding in self.findings)
        return "\n".join(lines)
