"""Static verification of live testing strategies.

Checks performed against the target application and the routing state:

- **deployment**: every referenced version (stable, experimental,
  second, check baselines) is actually deployed;
- **checks**: metrics/aggregations are known, windows fit the check
  interval, phases with conditional chaining actually *have* checks;
- **safety**: every phase's failure transition leads (transitively) to a
  terminal state, so a misbehaving experiment can always be unwound;
- **interference**: no currently-routed service is touched, and no two
  strategies submitted together share a service (the overlap constraint
  Fenrir's schedules encode).
"""

from __future__ import annotations

from repro.bifrost.model import (
    REPEAT,
    TERMINAL_STATES,
    Phase,
    PhaseType,
    Strategy,
)
from repro.microservices.application import Application
from repro.routing.proxy import VersionRouter
from repro.telemetry.store import supported_aggregations
from repro.verification.findings import Severity, VerificationReport

_KNOWN_METRICS = {"response_time", "error", "throughput"}


def verify_strategy(
    strategy: Strategy,
    application: Application,
    router: VersionRouter | None = None,
) -> VerificationReport:
    """Verify *strategy* against *application* (and live routes)."""
    report = VerificationReport(f"strategy {strategy.name!r}")
    for phase in strategy.phases:
        _verify_phase_deployment(phase, application, report)
        _verify_phase_checks(phase, report)
    _verify_failure_paths(strategy, report)
    if router is not None:
        _verify_no_live_interference(strategy, router, report)
    return report


def _verify_phase_deployment(
    phase: Phase, application: Application, report: VerificationReport
) -> None:
    if not application.has_service(phase.service):
        report.add(
            Severity.ERROR,
            "unknown-service",
            f"service {phase.service!r} does not exist",
            phase.name,
        )
        return
    service = application.service(phase.service)
    referenced = {phase.stable_version, phase.experimental_version}
    if phase.second_version:
        referenced.add(phase.second_version)
    for check in phase.checks:
        if check.baseline_version:
            referenced.add(check.baseline_version)
    for version in sorted(referenced):
        if not service.has_version(version):
            report.add(
                Severity.ERROR,
                "version-not-deployed",
                f"{phase.service}@{version} is referenced but not deployed",
                phase.name,
            )
    if service.stable_version != phase.stable_version:
        report.add(
            Severity.WARNING,
            "stable-mismatch",
            f"phase declares stable {phase.stable_version!r} but the "
            f"service's stable version is {service.stable_version!r}",
            phase.name,
        )


def _verify_phase_checks(phase: Phase, report: VerificationReport) -> None:
    if not phase.checks and phase.type is not PhaseType.AB_TEST:
        report.add(
            Severity.WARNING,
            "no-checks",
            "phase has no health checks; failures cannot trigger the "
            "failure transition",
            phase.name,
        )
    for check in phase.checks:
        if check.metric not in _KNOWN_METRICS:
            report.add(
                Severity.WARNING,
                "unknown-metric",
                f"check {check.name!r} reads metric {check.metric!r}, which "
                "the runtime does not emit by default",
                phase.name,
            )
        if check.aggregation not in supported_aggregations():
            report.add(
                Severity.ERROR,
                "unknown-aggregation",
                f"check {check.name!r} uses unsupported aggregation "
                f"{check.aggregation!r}",
                phase.name,
            )
        effective_interval = check.interval_seconds or phase.check_interval_seconds
        if check.window_seconds < effective_interval:
            report.add(
                Severity.WARNING,
                "window-shorter-than-interval",
                f"check {check.name!r} window ({check.window_seconds}s) is "
                f"shorter than its evaluation interval "
                f"({effective_interval}s); samples may be missed",
                phase.name,
            )
        if check.service != phase.service:
            report.add(
                Severity.WARNING,
                "cross-service-check",
                f"check {check.name!r} observes {check.service!r}, not the "
                f"phase's service {phase.service!r}",
                phase.name,
            )


def _verify_failure_paths(strategy: Strategy, report: VerificationReport) -> None:
    """Every phase's failure transition must reach a terminal state."""
    phase_by_name = {phase.name: phase for phase in strategy.phases}
    for phase in strategy.phases:
        seen: set[str] = set()
        current = phase.on_failure
        while True:
            if current in TERMINAL_STATES:
                break
            if current == REPEAT or current in seen:
                report.add(
                    Severity.ERROR,
                    "failure-loop",
                    f"failure path starting at phase {phase.name!r} cycles "
                    "without reaching a terminal state",
                    phase.name,
                )
                break
            seen.add(current)
            next_phase = phase_by_name.get(current)
            if next_phase is None:
                break  # Strategy validation already rejects unknown names.
            current = next_phase.on_failure


def _verify_no_live_interference(
    strategy: Strategy, router: VersionRouter, report: VerificationReport
) -> None:
    for service in sorted(strategy.services):
        route = router.active_route(service)
        if route is not None and route.experiment != strategy.name:
            report.add(
                Severity.ERROR,
                "live-conflict",
                f"service {service!r} is currently routed by experiment "
                f"{route.experiment!r}; running {strategy.name!r} would "
                "overlap and skew both experiments' data",
            )


def verify_strategies_compatible(
    strategies: list[Strategy],
) -> VerificationReport:
    """Verify that a *set* of strategies can run concurrently.

    Two strategies sharing a service would route the same traffic twice —
    the overlapping-experiments problem Fenrir's scheduling constraint
    prevents on the planning level.
    """
    report = VerificationReport(
        "strategies " + ", ".join(s.name for s in strategies)
    )
    owners: dict[str, str] = {}
    for strategy in strategies:
        for service in sorted(strategy.services):
            owner = owners.get(service)
            if owner is not None and owner != strategy.name:
                report.add(
                    Severity.ERROR,
                    "overlap",
                    f"strategies {owner!r} and {strategy.name!r} both "
                    f"experiment on service {service!r}",
                )
            else:
                owners[service] = strategy.name
    return report
