"""The genetic algorithm — Fenrir's core solver (Section 3.5.1).

Operates on the value-encoded chromosome (Fig 3.1): tournament selection
on the penalized score, one-point crossover at experiment boundaries
(Fig 3.2), per-gene mutation, a greedy overlap repair applied to a share
of the offspring, and elitism.

Offspring are scored through the fastfit layer: each child names the
parent it descends from (and, for mutation-only children, the exact genes
touched), so the evaluator can score it incrementally; elites re-enter
scoring as free cache hits.
"""

from __future__ import annotations

from repro.fenrir.base import BudgetedEvaluator, SearchAlgorithm, SearchResult
from repro.fenrir.fastfit import EvaluatorOptions
from repro.fenrir.fitness import FitnessWeights, ScheduleEvaluation
from repro.fenrir.model import SchedulingProblem
from repro.fenrir.operators import crossover, mutate_gene, pack_repair, random_schedule
from repro.fenrir.schedule import Schedule
from repro.obs.events import FENRIR_GENERATION
from repro.simulation.rng import SeededRng


class GeneticAlgorithm(SearchAlgorithm):
    """Population-based search over schedules."""

    name = "genetic"

    def __init__(
        self,
        population_size: int = 36,
        elite: int = 2,
        crossover_rate: float = 0.9,
        repair_rate: float = 0.35,
        tournament_size: int = 2,
    ) -> None:
        self.population_size = population_size
        self.elite = elite
        self.crossover_rate = crossover_rate
        self.repair_rate = repair_rate
        self.tournament_size = tournament_size

    def optimize(
        self,
        problem: SchedulingProblem,
        budget: int = 2000,
        seed: int = 0,
        weights: FitnessWeights | None = None,
        initial: Schedule | None = None,
        locked: frozenset[int] = frozenset(),
        options: EvaluatorOptions | None = None,
    ) -> SearchResult:
        rng = SeededRng(seed)
        evaluator = BudgetedEvaluator(budget, weights, options=options)
        n_genes = len(problem.experiments)
        mutation_rate = min(0.5, 2.0 / max(1, n_genes))

        population: list[Schedule] = []
        for i in range(self.population_size):
            if initial is not None and i < max(1, self.population_size // 4):
                candidate = initial.copy()
                if i > 0:
                    candidate, _ = self._mutated(
                        problem, candidate, rng, 1.5 * mutation_rate, locked
                    )
            else:
                candidate = random_schedule(
                    problem, rng, packed=True, initial=initial, locked=locked
                )
            population.append(candidate)
        scores: list[ScheduleEvaluation] = evaluator.evaluate_population(
            population, enforce_budget=False
        )

        obs = evaluator.obs
        generation = 0
        while not evaluator.exhausted:
            ranked = sorted(
                range(len(population)),
                key=lambda i: scores[i].penalized,
                reverse=True,
            )
            next_population: list[Schedule] = [
                population[i] for i in ranked[: self.elite]
            ]
            # Per-child provenance for incremental scoring: the parent the
            # child descends from and, when exactly known, the changed genes.
            parents: list[Schedule | None] = [None] * len(next_population)
            changed_sets: list[frozenset[int] | None] = [None] * len(next_population)
            # Penalized score of each child's parent (None for elites), so
            # the observer can report how many offspring beat their parent.
            parent_scores: list[float | None] = [None] * len(next_population)
            crossovers = mutations = repairs = 0
            while len(next_population) < self.population_size:
                ia = self._tournament(population, scores, rng)
                ib = self._tournament(population, scores, rng)
                parent_a, parent_b = population[ia], population[ib]
                crossed = rng.random() < self.crossover_rate
                if crossed:
                    child_a, child_b = crossover(parent_a, parent_b, rng)
                    crossovers += 1
                else:
                    child_a, child_b = parent_a.copy(), parent_b.copy()
                for child, parent, pi in (
                    (child_a, parent_a, ia),
                    (child_b, parent_b, ib),
                ):
                    mutated, mutated_idx = self._mutated(
                        problem, child, rng, mutation_rate, locked
                    )
                    mutations += len(mutated_idx)
                    changed = None if crossed else mutated_idx
                    if rng.random() < self.repair_rate:
                        mutated = pack_repair(mutated, rng, locked)
                        changed = None  # repair may move any free gene
                        repairs += 1
                    next_population.append(mutated)
                    parents.append(parent)
                    changed_sets.append(changed)
                    parent_scores.append(scores[pi].penalized)
                    if len(next_population) >= self.population_size:
                        break
            population = next_population
            scores = evaluator.evaluate_population(
                population, parents=parents, changed_sets=changed_sets
            )
            generation += 1
            if obs.enabled:
                offspring = [
                    (score, parent_score)
                    for score, parent_score in zip(scores, parent_scores)
                    if parent_score is not None
                ]
                accepted = sum(
                    1
                    for score, parent_score in offspring
                    if score.penalized > parent_score
                )
                best = max(scores, key=lambda s: s.penalized)
                # Budget exhaustion mid-scoring leaves -inf sentinels on
                # unevaluated individuals; keep the mean finite.
                finite = [
                    s.penalized
                    for s in scores
                    if s.penalized != float("-inf")
                ]
                obs.emit(
                    FENRIR_GENERATION,
                    float(evaluator.used),
                    algorithm=self.name,
                    generation=generation,
                    evaluations_used=evaluator.used,
                    best_penalized=best.penalized,
                    best_fitness=best.fitness,
                    mean_penalized=(
                        sum(finite) / len(finite) if finite else best.penalized
                    ),
                    offspring=len(offspring),
                    accepted=accepted,
                    crossovers=crossovers,
                    mutations=mutations,
                    repairs=repairs,
                )
                obs.metrics.counter(
                    "fenrir_generations_total", algorithm=self.name
                ).increment()
                obs.metrics.gauge(
                    "fenrir_best_penalized", algorithm=self.name
                ).set(best.penalized)
        return evaluator.result(self.name)

    def _tournament(
        self,
        population: list[Schedule],
        scores: list[ScheduleEvaluation],
        rng: SeededRng,
    ) -> int:
        """Index of the tournament winner (callers index the population)."""
        best_index = rng.randint(0, len(population) - 1)
        for _ in range(self.tournament_size - 1):
            challenger = rng.randint(0, len(population) - 1)
            if scores[challenger].penalized > scores[best_index].penalized:
                best_index = challenger
        return best_index

    def _mutated(
        self,
        problem: SchedulingProblem,
        schedule: Schedule,
        rng: SeededRng,
        rate: float,
        locked: frozenset[int],
    ) -> tuple[Schedule, frozenset[int]]:
        """Mutate free genes at *rate*; returns the touched indices too."""
        genes = list(schedule.genes)
        touched: set[int] = set()
        for index, spec in enumerate(problem.experiments):
            if index in locked:
                continue
            if rng.random() < rate:
                genes[index] = mutate_gene(problem, spec, genes[index], rng)
                touched.add(index)
        return Schedule(problem, genes), frozenset(touched)
