"""The scheduling problem: experiments to place on a traffic profile.

Mirrors Table 3.1 ("input data for experiments"): every experiment brings
its required sample size, bounds on traffic share and duration, preferred
user groups, and an earliest start.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.traffic.profile import TrafficProfile


@dataclass(frozen=True)
class ExperimentSpec:
    """Scheduling-relevant description of one continuous experiment.

    Attributes:
        name: unique experiment identifier.
        required_samples: data points needed for statistically valid
            conclusions (cf. Kohavi et al.; computed from
            :mod:`repro.stats.power` in practice).
        min_duration_slots / max_duration_slots: bounds on how many
            consecutive slots the experiment may run (non-interrupted —
            an experiment constraint from Section 3.4.4).
        min_traffic_fraction / max_traffic_fraction: bounds on the share
            of eligible group traffic the experiment may consume per slot.
        preferred_groups: user groups the experiment would like to run on
            (empty = no preference, any group acceptable).
        earliest_start: first slot the experiment may start in (e.g. the
            change clears QA at slot 12).
        weight: relative importance in the aggregate fitness.
    """

    name: str
    required_samples: float
    min_duration_slots: int = 1
    max_duration_slots: int = 48
    min_traffic_fraction: float = 0.01
    max_traffic_fraction: float = 0.5
    preferred_groups: frozenset[str] = frozenset()
    earliest_start: int = 0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("experiment name must be non-empty")
        if self.required_samples <= 0:
            raise ConfigurationError("required_samples must be positive")
        if self.min_duration_slots < 1:
            raise ConfigurationError("min_duration_slots must be >= 1")
        if self.max_duration_slots < self.min_duration_slots:
            raise ConfigurationError(
                "max_duration_slots must be >= min_duration_slots"
            )
        if not 0.0 < self.min_traffic_fraction <= self.max_traffic_fraction <= 1.0:
            raise ConfigurationError(
                "need 0 < min_traffic_fraction <= max_traffic_fraction <= 1"
            )
        if self.earliest_start < 0:
            raise ConfigurationError("earliest_start must be >= 0")
        if self.weight <= 0:
            raise ConfigurationError("weight must be positive")


@dataclass
class SchedulingProblem:
    """One scheduling instance: experiments against a traffic profile."""

    profile: TrafficProfile
    experiments: list[ExperimentSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [e.name for e in self.experiments]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate experiment names in {names}")
        # Group order and index are fixed per problem: evaluation's hot
        # loops look them up instead of rebuilding dicts per call.
        self._group_names = tuple(self.profile.group_names)
        self._group_index = {name: i for i, name in enumerate(self._group_names)}
        self._total_weight = sum(spec.weight for spec in self.experiments) or 1.0
        known = set(self._group_names)
        # Prefix sums over total slot volumes: since a group's volume is
        # ``total * share``, any (window, groups) volume factorizes into
        # prefix-sum difference times summed shares — O(1) per query.
        prefix = [0.0]
        for slot in range(self.profile.num_slots):
            prefix.append(prefix[-1] + self.profile.volume(slot))
        self._prefix = prefix
        self._share = {g.name: g.share for g in self.profile.groups}
        for spec in self.experiments:
            unknown = spec.preferred_groups - known
            if unknown:
                raise ConfigurationError(
                    f"experiment {spec.name!r} prefers unknown groups {unknown}"
                )
            if spec.earliest_start >= self.profile.num_slots:
                raise ConfigurationError(
                    f"experiment {spec.name!r} cannot start at slot "
                    f"{spec.earliest_start} on a {self.profile.num_slots}-slot "
                    "horizon"
                )

    @property
    def horizon(self) -> int:
        """Number of slots available for scheduling."""
        return self.profile.num_slots

    @property
    def group_names(self) -> tuple[str, ...]:
        """Group names in declaration order, cached per problem."""
        return self._group_names

    @property
    def group_index(self) -> dict[str, int]:
        """Group name → position in :attr:`group_names`, cached per problem."""
        return self._group_index

    @property
    def total_weight(self) -> float:
        """Summed experiment weights (1.0 when there are no experiments)."""
        return self._total_weight

    def spec(self, name: str) -> ExperimentSpec:
        """Look up an experiment by name."""
        for spec in self.experiments:
            if spec.name == name:
                return spec
        raise ConfigurationError(f"unknown experiment {name!r}")

    def group_volume(self, slot: int, groups: frozenset[str]) -> float:
        """Traffic volume of *groups* combined in *slot*."""
        return self.profile.volume(slot) * self.group_share(groups)

    def group_share(self, groups: frozenset[str]) -> float:
        """Summed traffic share of *groups*."""
        return sum(self._share[g] for g in groups)

    def window_volume(self, start: int, end: int, groups: frozenset[str]) -> float:
        """Traffic volume of *groups* over slots [start, end) — O(1)."""
        horizon = self.profile.num_slots
        start = max(0, min(start, horizon))
        end = max(start, min(end, horizon))
        return (self._prefix[end] - self._prefix[start]) * self.group_share(groups)
