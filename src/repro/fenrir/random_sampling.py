"""Random sampling baseline (Section 3.5.2): best of N random schedules.

Independent draws share no parent, so random sampling gains nothing from
delta evaluation — it still flows through the fastfit layer for
memoization (duplicate draws are free by default) and the evaluation
counters.
"""

from __future__ import annotations

from repro.fenrir.base import BudgetedEvaluator, SearchAlgorithm, SearchResult
from repro.fenrir.fastfit import EvaluatorOptions
from repro.fenrir.fitness import FitnessWeights
from repro.fenrir.model import SchedulingProblem
from repro.fenrir.operators import random_schedule
from repro.fenrir.schedule import Schedule
from repro.simulation.rng import SeededRng


class RandomSampling(SearchAlgorithm):
    """Draws independent random schedules and keeps the best."""

    name = "random"

    def __init__(self, packed: bool = True) -> None:
        self.packed = packed

    def optimize(
        self,
        problem: SchedulingProblem,
        budget: int = 2000,
        seed: int = 0,
        weights: FitnessWeights | None = None,
        initial: Schedule | None = None,
        locked: frozenset[int] = frozenset(),
        options: EvaluatorOptions | None = None,
    ) -> SearchResult:
        rng = SeededRng(seed)
        evaluator = BudgetedEvaluator(budget, weights, options=options)
        if initial is not None:
            evaluator.evaluate(initial)
        while not evaluator.exhausted:
            evaluator.evaluate(
                random_schedule(
                    problem, rng, packed=self.packed, initial=initial, locked=locked
                )
            )
        return evaluator.result(self.name)
