"""Random sampling baseline (Section 3.5.2): best of N random schedules."""

from __future__ import annotations

from repro.fenrir.base import BudgetedEvaluator, SearchAlgorithm, SearchResult
from repro.fenrir.fitness import FitnessWeights
from repro.fenrir.model import SchedulingProblem
from repro.fenrir.operators import random_schedule
from repro.fenrir.schedule import Schedule
from repro.simulation.rng import SeededRng


class RandomSampling(SearchAlgorithm):
    """Draws independent random schedules and keeps the best."""

    name = "random"

    def __init__(self, packed: bool = True) -> None:
        self.packed = packed

    def optimize(
        self,
        problem: SchedulingProblem,
        budget: int = 2000,
        seed: int = 0,
        weights: FitnessWeights | None = None,
        initial: Schedule | None = None,
        locked: frozenset[int] = frozenset(),
    ) -> SearchResult:
        rng = SeededRng(seed)
        evaluator = BudgetedEvaluator(budget, weights)
        if initial is not None:
            evaluator.evaluate(initial)
        while not evaluator.exhausted:
            evaluator.evaluate(
                random_schedule(
                    problem, rng, packed=self.packed, initial=initial, locked=locked
                )
            )
        return evaluator.result(self.name)
