"""Schedule serialization for release-pipeline integration.

The paper envisions scheduling "to become an active part in a release
pipeline, e.g., scheduling is triggered as soon as source code changes
pass the quality assurance phases" — which requires schedules to move
between processes.  Plain-dict (JSON-compatible) round-tripping of
problems and schedules provides that interchange format.
"""

from __future__ import annotations

import json

from repro.errors import ValidationError
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule
from repro.traffic.profile import TrafficProfile, UserGroup


def problem_to_dict(problem: SchedulingProblem) -> dict:
    """Serialize a scheduling problem to JSON-compatible primitives."""
    return {
        "profile": {
            "slot_volumes": problem.profile.volumes(),
            "slot_duration_hours": problem.profile.slot_duration_hours,
            "groups": [
                {"name": g.name, "share": g.share}
                for g in problem.profile.groups
            ],
        },
        "experiments": [
            {
                "name": spec.name,
                "required_samples": spec.required_samples,
                "min_duration_slots": spec.min_duration_slots,
                "max_duration_slots": spec.max_duration_slots,
                "min_traffic_fraction": spec.min_traffic_fraction,
                "max_traffic_fraction": spec.max_traffic_fraction,
                "preferred_groups": sorted(spec.preferred_groups),
                "earliest_start": spec.earliest_start,
                "weight": spec.weight,
            }
            for spec in problem.experiments
        ],
    }


def problem_from_dict(data: dict) -> SchedulingProblem:
    """Rebuild a scheduling problem from :func:`problem_to_dict` output."""
    try:
        profile_data = data["profile"]
        profile = TrafficProfile(
            profile_data["slot_volumes"],
            [UserGroup(g["name"], g["share"]) for g in profile_data["groups"]],
            profile_data.get("slot_duration_hours", 1.0),
        )
        experiments = [
            ExperimentSpec(
                name=spec["name"],
                required_samples=spec["required_samples"],
                min_duration_slots=spec["min_duration_slots"],
                max_duration_slots=spec["max_duration_slots"],
                min_traffic_fraction=spec["min_traffic_fraction"],
                max_traffic_fraction=spec["max_traffic_fraction"],
                preferred_groups=frozenset(spec.get("preferred_groups", ())),
                earliest_start=spec.get("earliest_start", 0),
                weight=spec.get("weight", 1.0),
            )
            for spec in data["experiments"]
        ]
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed problem document: {exc}") from exc
    return SchedulingProblem(profile, experiments)


def schedule_to_dict(schedule: Schedule) -> dict:
    """Serialize a schedule (problem included) to primitives."""
    return {
        "problem": problem_to_dict(schedule.problem),
        "genes": [
            {
                "experiment": spec.name,
                "start": gene.start,
                "duration": gene.duration,
                "fraction": gene.fraction,
                "groups": sorted(gene.groups),
            }
            for spec, gene in schedule
        ],
    }


def schedule_from_dict(data: dict) -> Schedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output.

    Genes are matched to experiments by name, so documents stay valid
    even if consumers reorder the gene list.
    """
    problem = problem_from_dict(data.get("problem", {}))
    try:
        by_name = {gene["experiment"]: gene for gene in data["genes"]}
        genes = []
        for spec in problem.experiments:
            gene = by_name[spec.name]
            genes.append(
                Gene(
                    start=gene["start"],
                    duration=gene["duration"],
                    fraction=gene["fraction"],
                    groups=frozenset(gene["groups"]),
                )
            )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed schedule document: {exc}") from exc
    return Schedule(problem, genes)


def schedule_to_json(schedule: Schedule, indent: int = 2) -> str:
    """Serialize a schedule to a JSON string."""
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def schedule_from_json(text: str) -> Schedule:
    """Parse a schedule from :func:`schedule_to_json` output."""
    return schedule_from_dict(json.loads(text))
