"""Text rendering of experiment schedules.

Release engineers need to *see* a schedule before approving it; this
module renders schedules as a per-experiment Gantt strip over the slot
horizon plus a per-slot utilization sparkline — the textual equivalent of
Fig 3.3's consumption view.
"""

from __future__ import annotations

from repro.fenrir.schedule import Schedule

_BLOCKS = " ▁▂▃▄▅▆▇█"


def schedule_gantt(schedule: Schedule, width: int = 72) -> str:
    """Render *schedule* as an ASCII Gantt chart.

    Each experiment occupies one row; ``█`` marks occupied slots (the
    density of the glyph reflects the traffic fraction).  The horizon is
    rescaled to at most *width* columns.
    """
    horizon = schedule.problem.horizon
    scale = max(1, -(-horizon // width))  # slots per column, ceil
    columns = -(-horizon // scale)
    lines: list[str] = []
    name_width = max(
        (len(spec.name) for spec, _ in schedule), default=4
    )
    header = " " * (name_width + 2)
    header += "".join(
        str((c * scale) // 24 % 10) if (c * scale) % 24 == 0 else "·"
        for c in range(columns)
    )
    lines.append(header + "   (digits: day boundaries)")
    for spec, gene in schedule:
        row = []
        for column in range(columns):
            slot_start = column * scale
            slot_end = min(slot_start + scale, horizon)
            covered = max(
                0, min(gene.end, slot_end) - max(gene.start, slot_start)
            )
            if covered <= 0:
                row.append(" ")
            else:
                # Glyph intensity ~ traffic fraction.
                intensity = min(8, max(1, round(gene.fraction * 8)))
                row.append(_BLOCKS[intensity])
        lines.append(
            f"{spec.name:<{name_width}}  " + "".join(row)
            + f"   f={gene.fraction:.2f} {'+'.join(sorted(gene.groups))}"
        )
    return "\n".join(lines)


def utilization_sparkline(schedule: Schedule, width: int = 72) -> str:
    """Per-slot fraction of available traffic consumed, as a sparkline."""
    problem = schedule.problem
    horizon = problem.horizon
    consumption = schedule.consumption_per_slot()
    ratios = []
    for slot in range(horizon):
        available = problem.profile.volume(slot)
        used = consumption.get(slot, 0.0)
        ratios.append(used / available if available > 0 else 0.0)
    scale = max(1, -(-horizon // width))
    cells = []
    for start in range(0, horizon, scale):
        chunk = ratios[start:start + scale]
        mean_ratio = sum(chunk) / len(chunk)
        cells.append(_BLOCKS[min(8, round(mean_ratio * 8))])
    peak = max(ratios) if ratios else 0.0
    return "".join(cells) + f"   (peak {peak:.0%} of slot volume)"
