"""Local search baseline (Section 3.5.3): first-improvement hill climbing
with random restarts.

Neighbors differ from the incumbent in exactly one gene (unless repair
moved more), so they are scored incrementally through the fastfit layer
by naming the incumbent as delta parent.
"""

from __future__ import annotations

from repro.fenrir.base import BudgetedEvaluator, SearchAlgorithm, SearchResult
from repro.fenrir.fastfit import EvaluatorOptions
from repro.fenrir.fitness import FitnessWeights
from repro.fenrir.model import SchedulingProblem
from repro.fenrir.operators import mutate_gene, pack_repair, random_schedule
from repro.fenrir.schedule import Schedule
from repro.simulation.rng import SeededRng


def _warm_start(
    problem: SchedulingProblem,
    evaluator: BudgetedEvaluator,
    rng: SeededRng,
    initial: Schedule | None,
    locked: frozenset[int],
    draws: int,
) -> tuple[Schedule, float]:
    """Best of *draws* random packed schedules (plus *initial* if given)."""
    best: Schedule | None = None
    best_score = float("-inf")
    candidates: list[Schedule] = []
    if initial is not None:
        candidates.append(initial.copy())
    for _ in range(max(1, draws - len(candidates))):
        candidates.append(
            random_schedule(problem, rng, initial=initial, locked=locked)
        )
    for candidate in candidates:
        if evaluator.exhausted and best is not None:
            break
        score = evaluator.evaluate(candidate).penalized
        if score > best_score:
            best, best_score = candidate, score
    assert best is not None
    return best, best_score


class LocalSearch(SearchAlgorithm):
    """Hill climbing over single-gene mutations."""

    name = "local-search"

    def __init__(
        self,
        stall_limit: int = 250,
        repair_rate: float = 0.2,
        warm_start: int = 25,
    ) -> None:
        self.stall_limit = stall_limit
        self.repair_rate = repair_rate
        self.warm_start = warm_start

    def _neighbor(
        self,
        problem: SchedulingProblem,
        schedule: Schedule,
        rng: SeededRng,
        locked: frozenset[int],
    ) -> tuple[Schedule, frozenset[int] | None]:
        """A mutated neighbor and the changed genes (None when unknown)."""
        free = [i for i in range(len(schedule.genes)) if i not in locked]
        if not free:
            return schedule.copy(), frozenset()
        index = rng.choice(free)
        spec = problem.experiments[index]
        neighbor = schedule.replaced(
            index, mutate_gene(problem, spec, schedule.genes[index], rng)
        )
        changed: frozenset[int] | None = frozenset({index})
        if rng.random() < self.repair_rate:
            neighbor = pack_repair(neighbor, rng, locked)
            changed = None  # repair may move any free gene
        return neighbor, changed

    def optimize(
        self,
        problem: SchedulingProblem,
        budget: int = 2000,
        seed: int = 0,
        weights: FitnessWeights | None = None,
        initial: Schedule | None = None,
        locked: frozenset[int] = frozenset(),
        options: EvaluatorOptions | None = None,
    ) -> SearchResult:
        rng = SeededRng(seed)
        evaluator = BudgetedEvaluator(budget, weights, options=options)
        current, current_score = _warm_start(
            problem, evaluator, rng, initial, locked,
            draws=min(self.warm_start, max(1, budget // 10)),
        )
        stall = 0
        while not evaluator.exhausted:
            neighbor, changed = self._neighbor(problem, current, rng, locked)
            score = evaluator.evaluate(
                neighbor, parent=current, changed=changed
            ).penalized
            if score > current_score:
                current, current_score = neighbor, score
                stall = 0
            else:
                stall += 1
                if stall >= self.stall_limit:
                    current = random_schedule(
                        problem, rng, initial=initial, locked=locked
                    )
                    if evaluator.exhausted:
                        break
                    current_score = evaluator.evaluate(current).penalized
                    stall = 0
        return evaluator.result(self.name)
