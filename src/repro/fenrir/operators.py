"""Search operators: gene construction, repair, mutation, crossover.

These are shared by all four algorithms.  The genetic algorithm uses all
of them; local search and simulated annealing use random construction and
mutation as their neighborhood move; random sampling uses construction
only.
"""

from __future__ import annotations

from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule
from repro.simulation.rng import SeededRng


def required_fraction(
    problem: SchedulingProblem,
    spec: ExperimentSpec,
    start: int,
    duration: int,
    groups: frozenset[str],
) -> float:
    """Minimal traffic fraction collecting the required sample size.

    Returns ``inf`` when the window carries no traffic at all.
    """
    volume = problem.window_volume(start, start + duration, groups)
    if volume <= 0:
        return float("inf")
    return spec.required_samples / volume


def random_groups(
    problem: SchedulingProblem, spec: ExperimentSpec, rng: SeededRng
) -> frozenset[str]:
    """Pick user groups for a gene.

    Preferred groups are used when specified, but occasionally widened
    with extra groups: coverage is a *soft* objective, and trading a bit
    of coverage for feasibility is exactly the compromise dense instances
    require.
    """
    names = problem.profile.group_names
    if spec.preferred_groups:
        groups = set(spec.preferred_groups)
        if rng.random() < 0.35:
            extra = rng.randint(1, max(1, len(names) - len(groups)))
            groups.update(rng.sample(names, min(extra, len(names))))
        return frozenset(groups)
    k = rng.randint(1, len(names))
    return frozenset(rng.sample(names, k))


def random_gene(
    problem: SchedulingProblem, spec: ExperimentSpec, rng: SeededRng
) -> Gene:
    """Construct a random, sample-feasible gene when one exists.

    Tries random (start, duration) windows and picks the smallest
    sufficient fraction with a little headroom; falls back to the most
    generous plan (earliest start, maximal duration and fraction) when no
    sampled window is feasible — the evaluation's penalty then guides the
    search away from it.
    """
    horizon = problem.horizon
    groups = random_groups(problem, spec, rng)
    latest_start = max(spec.earliest_start, horizon - spec.min_duration_slots)
    for _ in range(30):
        start = rng.randint(spec.earliest_start, latest_start)
        max_duration = min(spec.max_duration_slots, horizon - start)
        if max_duration < spec.min_duration_slots:
            continue
        duration = rng.randint(spec.min_duration_slots, max_duration)
        needed = required_fraction(problem, spec, start, duration, groups)
        if needed <= spec.max_traffic_fraction:
            fraction = min(
                spec.max_traffic_fraction,
                max(spec.min_traffic_fraction, needed * rng.uniform(1.02, 1.3)),
            )
            if fraction >= needed:
                return Gene(start, duration, fraction, groups)
    # Fallback: the most generous plan within bounds, then repaired —
    # repair may widen the group set when even that cannot collect the
    # required samples.
    start = spec.earliest_start
    duration = min(spec.max_duration_slots, horizon - start)
    duration = max(duration, spec.min_duration_slots)
    draft = Gene(start, duration, spec.max_traffic_fraction, groups)
    return repair_gene(problem, spec, draft)


def repair_gene(
    problem: SchedulingProblem, spec: ExperimentSpec, gene: Gene
) -> Gene:
    """Clamp a gene into its bounds and restore sample feasibility.

    First clamps start/duration/fraction, then — if the sample-size
    constraint is missed — raises the fraction up to its maximum and
    finally stretches the duration while room remains.
    """
    horizon = problem.horizon
    start = min(max(gene.start, spec.earliest_start), horizon - 1)
    max_duration = min(spec.max_duration_slots, horizon - start)
    if max_duration < spec.min_duration_slots:
        start = max(spec.earliest_start, horizon - spec.min_duration_slots)
        max_duration = min(spec.max_duration_slots, horizon - start)
    duration = min(max(gene.duration, spec.min_duration_slots), max_duration)
    fraction = min(
        max(gene.fraction, spec.min_traffic_fraction), spec.max_traffic_fraction
    )
    groups = gene.groups
    needed = required_fraction(problem, spec, start, duration, groups)
    if fraction < needed:
        fraction = min(spec.max_traffic_fraction, max(fraction, needed))
    while (
        fraction < required_fraction(problem, spec, start, duration, groups)
        and duration < max_duration
    ):
        duration += 1
    # Last resort: widen the group set (coverage is a soft objective;
    # missing the sample size is a hard constraint).
    if fraction < required_fraction(problem, spec, start, duration, groups):
        remaining = sorted(
            (g for g in problem.profile.group_names if g not in groups),
            key=lambda g: problem.profile.group(g).share,
            reverse=True,
        )
        widened = set(groups)
        for group in remaining:
            widened.add(group)
            if fraction >= required_fraction(
                problem, spec, start, duration, frozenset(widened)
            ):
                break
        groups = frozenset(widened)
    return Gene(start, duration, fraction, groups)


def mutate_gene(
    problem: SchedulingProblem, spec: ExperimentSpec, gene: Gene, rng: SeededRng
) -> Gene:
    """Perturb one field of a gene and repair the result."""
    horizon = problem.horizon
    move = rng.randint(0, 3)
    start, duration, fraction, groups = (
        gene.start,
        gene.duration,
        gene.fraction,
        gene.groups,
    )
    if move == 0:
        start = max(0, start + rng.randint(-6, 6))
    elif move == 1:
        duration = max(1, duration + rng.randint(-4, 4))
    elif move == 2:
        fraction = min(1.0, max(1e-6, fraction * rng.uniform(0.75, 1.3)))
    else:
        names = problem.profile.group_names
        current = set(groups)
        candidate = rng.choice(names)
        removable = len(current) > 1 and (
            candidate not in spec.preferred_groups or rng.random() < 0.2
        )
        if candidate in current and removable:
            current.remove(candidate)
        else:
            current.add(candidate)
        groups = frozenset(current)
    start = min(start, horizon - 1)
    draft = Gene(max(0, start), max(1, duration), min(1.0, fraction), groups)
    return repair_gene(problem, spec, draft)


def crossover(
    a: Schedule, b: Schedule, rng: SeededRng
) -> tuple[Schedule, Schedule]:
    """One-point crossover at an experiment boundary (Fig 3.2)."""
    n = len(a.genes)
    if n < 2:
        return a.copy(), b.copy()
    point = rng.randint(1, n - 1)
    child1 = Schedule(a.problem, a.genes[:point] + b.genes[point:])
    child2 = Schedule(a.problem, b.genes[:point] + a.genes[point:])
    return child1, child2


def random_schedule(
    problem: SchedulingProblem,
    rng: SeededRng,
    packed: bool = True,
    initial: Schedule | None = None,
    locked: frozenset[int] = frozenset(),
) -> Schedule:
    """A random schedule; with *packed* a greedy overlap repair is applied.

    When *initial* and *locked* are given (reevaluation mode), locked
    genes are copied verbatim from *initial* and only free genes are
    randomized.
    """
    genes: list[Gene] = []
    for index, spec in enumerate(problem.experiments):
        if initial is not None and index in locked:
            genes.append(initial.genes[index])
        else:
            genes.append(random_gene(problem, spec, rng))
    schedule = Schedule(problem, genes)
    return pack_repair(schedule, rng, locked) if packed else schedule


def pack_repair(
    schedule: Schedule, rng: SeededRng, locked: frozenset[int] = frozenset()
) -> Schedule:
    """Greedy overlap repair: fit genes one by one into remaining capacity.

    Genes are visited in random order; a gene that would oversubscribe a
    (slot, group) is first thinned to the remaining capacity (if it still
    meets its sample size) and otherwise shifted to the earliest later
    window with room.  Genes that fit nowhere are kept as-is; the
    evaluation penalty handles them.
    """
    problem = schedule.problem
    horizon = problem.horizon
    group_names = problem.group_names
    n_groups = len(group_names)
    group_index = problem.group_index
    free = [i for i in range(len(schedule.genes)) if i not in locked]
    rng.shuffle(free)
    # Locked genes claim their capacity first and are never moved.
    order = [i for i in range(len(schedule.genes)) if i in locked] + free
    # Flat usage array indexed [slot * n_groups + group] — the hot loop.
    usage = [0.0] * (horizon * n_groups)
    new_genes: list[Gene | None] = [None] * len(schedule.genes)

    def scan(start: int, end: int, gidxs: list[int]) -> tuple[float, int | None]:
        """(min remaining capacity, first partially-used slot) in window."""
        left = 1.0
        first_partial: int | None = None
        for slot in range(start, min(end, horizon)):
            base = slot * n_groups
            for gi in gidxs:
                available = 1.0 - usage[base + gi]
                if available < left:
                    left = available
                if available < 1.0 - 1e-12 and first_partial is None:
                    first_partial = slot
        return left, first_partial

    def commit(index: int, gene: Gene) -> None:
        new_genes[index] = gene
        gidxs = [group_index[g] for g in gene.groups]
        for slot in range(gene.start, min(gene.end, horizon)):
            base = slot * n_groups
            for gi in gidxs:
                usage[base + gi] += gene.fraction

    def feasible_at(
        spec: ExperimentSpec, gene: Gene, start: int, duration: int, left: float
    ) -> Gene | None:
        """A sample-feasible, capacity-respecting gene, or None."""
        if left <= 0:
            return None
        needed = required_fraction(problem, spec, start, duration, gene.groups)
        fraction = min(
            max(gene.fraction, needed, spec.min_traffic_fraction),
            spec.max_traffic_fraction,
            left,
        )
        if fraction >= needed and fraction >= spec.min_traffic_fraction:
            return Gene(start, duration, fraction, gene.groups)
        return None

    for index in order:
        spec = problem.experiments[index]
        gene = schedule.genes[index]
        if index in locked:
            commit(index, gene)
            continue
        gidxs = [group_index[g] for g in gene.groups]
        placed = False
        start = gene.start
        while start + spec.min_duration_slots <= horizon:
            duration = min(gene.duration, horizon - start)
            left, partial = scan(start, start + duration, gidxs)
            candidate = feasible_at(spec, gene, start, duration, left)
            if candidate is None:
                # A longer window needs a smaller fraction; retry at the
                # maximal duration before giving up on this start.
                max_dur = min(spec.max_duration_slots, horizon - start)
                if max_dur > duration:
                    ext_left, _ = scan(start + duration, start + max_dur, gidxs)
                    candidate = feasible_at(
                        spec, gene, start, max_dur, min(left, ext_left)
                    )
            if candidate is not None:
                commit(index, candidate)
                placed = True
                break
            start = (partial if partial is not None else start) + 1
        if not placed:
            # Nowhere to fit: keep the (repaired) original plan; the
            # evaluation penalty steers the search away from it.
            commit(index, repair_gene(problem, spec, gene))
    assert all(g is not None for g in new_genes)
    return Schedule(problem, [g for g in new_genes if g is not None])
