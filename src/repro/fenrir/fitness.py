"""Fitness and constraint evaluation of schedules (Sections 3.4.3–3.4.4).

A schedule is *valid* iff it satisfies all experiment constraints
(non-interruption is structural; bounds on start/duration/fraction;
minimum sample size) and the overarching constraint (no user group is
oversubscribed in any slot — experiments must not overlap).

The fitness of a valid schedule is a weighted combination of three
objectives per experiment, each normalized to [0, 1]:

- **duration**: shorter is better ("experiments should not last longer
  than needed"),
- **start time**: earlier is better ("experiments should start as soon as
  possible"),
- **group coverage**: run on the preferred user groups when specified.

Search algorithms additionally use a *penalized* score — the raw fitness
minus a penalty proportional to constraint violations — so they can move
through infeasible regions toward feasible optima.

The per-gene helpers (:func:`_gene_constraints`, :func:`_gene_objectives`,
:func:`_finalize`) are shared with :mod:`repro.fenrir.fastfit`'s
incremental evaluator, so the full and delta paths cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule


@dataclass(frozen=True)
class FitnessWeights:
    """Relative weights of the three objectives; must sum to 1."""

    duration: float = 0.4
    start: float = 0.4
    coverage: float = 0.2

    def __post_init__(self) -> None:
        total = self.duration + self.start + self.coverage
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"fitness weights must sum to 1, got {total}")
        if min(self.duration, self.start, self.coverage) < 0:
            raise ConfigurationError("fitness weights must be >= 0")


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Full evaluation result of one schedule."""

    fitness: float
    valid: bool
    penalized: float
    violations: tuple[str, ...] = field(default=())
    per_experiment: tuple[float, ...] = field(default=())

    @classmethod
    def worst(cls) -> "ScheduleEvaluation":
        """A sentinel ranking below every real evaluation.

        Used to pad population scores once the evaluation budget is spent:
        the penalized score of ``-inf`` keeps ranking well-defined while
        guaranteeing padded entries never win a tournament or elitism slot.
        """
        return cls(fitness=0.0, valid=False, penalized=float("-inf"))


def _gene_objective_components(
    spec: ExperimentSpec, gene: Gene, horizon: int
) -> tuple[float, float, float]:
    """(duration, start, coverage) objective scores of one gene, each in [0, 1]."""
    dur_span = spec.max_duration_slots - spec.min_duration_slots
    if dur_span > 0:
        duration_score = 1.0 - (gene.duration - spec.min_duration_slots) / dur_span
    else:
        duration_score = 1.0
    duration_score = min(1.0, max(0.0, duration_score))

    start_span = max(1, horizon - 1 - spec.earliest_start)
    start_score = 1.0 - (gene.start - spec.earliest_start) / start_span
    start_score = min(1.0, max(0.0, start_score))

    if spec.preferred_groups:
        overlap = len(gene.groups & spec.preferred_groups)
        coverage_score = overlap / len(gene.groups | spec.preferred_groups)
    else:
        coverage_score = 1.0

    return duration_score, start_score, coverage_score


def _gene_objectives(
    spec: ExperimentSpec, gene: Gene, horizon: int, weights: FitnessWeights
) -> float:
    duration_score, start_score, coverage_score = _gene_objective_components(
        spec, gene, horizon
    )
    return (
        weights.duration * duration_score
        + weights.start * start_score
        + weights.coverage * coverage_score
    )


def _gene_constraints(
    problem: SchedulingProblem, spec: ExperimentSpec, gene: Gene
) -> tuple[list[str], float]:
    """Per-gene violation messages and sample-size shortfall (0.0 if met)."""
    horizon = problem.horizon
    violations: list[str] = []
    if gene.start < spec.earliest_start:
        violations.append(
            f"{spec.name}: starts at {gene.start} before earliest "
            f"{spec.earliest_start}"
        )
    if gene.end > horizon:
        violations.append(
            f"{spec.name}: ends at {gene.end} beyond horizon {horizon}"
        )
    if not spec.min_duration_slots <= gene.duration <= spec.max_duration_slots:
        violations.append(
            f"{spec.name}: duration {gene.duration} outside "
            f"[{spec.min_duration_slots}, {spec.max_duration_slots}]"
        )
    if not spec.min_traffic_fraction <= gene.fraction <= spec.max_traffic_fraction:
        violations.append(
            f"{spec.name}: fraction {gene.fraction:.4f} outside "
            f"[{spec.min_traffic_fraction}, {spec.max_traffic_fraction}]"
        )
    collected = (
        problem.window_volume(gene.start, gene.end, gene.groups) * gene.fraction
    )
    shortfall = 0.0
    if collected < spec.required_samples:
        violations.append(
            f"{spec.name}: collects {collected:.0f} of "
            f"{spec.required_samples:.0f} required samples"
        )
        shortfall = 1.0 - collected / spec.required_samples
    return violations, shortfall


def _oversubscription_message(slot: int, group: str, used: float) -> str:
    return (
        f"slot {slot}, group {group}: traffic "
        f"oversubscribed ({used:.2f} > 1.0)"
    )


def _finalize(
    scores: list[float],
    violations: list[str],
    shortfall_penalty: float,
    overlap_penalty: float,
    total_weight: float,
) -> ScheduleEvaluation:
    """Assemble the final evaluation from its accumulated components."""
    raw = sum(scores) / total_weight if scores else 0.0
    valid = not violations
    penalty = 0.15 * len(violations) + 0.3 * shortfall_penalty + 0.3 * overlap_penalty
    penalized = raw - penalty
    return ScheduleEvaluation(
        fitness=raw if valid else 0.0,
        valid=valid,
        penalized=penalized,
        violations=tuple(violations),
        per_experiment=tuple(scores),
    )


def evaluate(
    schedule: Schedule, weights: FitnessWeights | None = None
) -> ScheduleEvaluation:
    """Evaluate *schedule*: constraints, fitness, and penalized score.

    The strict ``fitness`` is 0.0 for invalid schedules; ``penalized`` is
    always defined and guides the search algorithms.
    """
    weights = weights or FitnessWeights()
    problem = schedule.problem
    horizon = problem.horizon
    violations: list[str] = []
    scores: list[float] = []
    shortfall_penalty = 0.0

    for spec, gene in schedule:
        gene_violations, shortfall = _gene_constraints(problem, spec, gene)
        violations.extend(gene_violations)
        shortfall_penalty += shortfall
        scores.append(spec.weight * _gene_objectives(spec, gene, horizon, weights))

    # Overarching constraint: user groups must never be oversubscribed.
    overlap_penalty = 0.0
    group_names = problem.group_names
    group_index = problem.group_index
    n_groups = len(group_names)
    usage = [0.0] * (horizon * n_groups)
    for gene in schedule.genes:
        gidxs = [group_index[g] for g in gene.groups]
        fraction = gene.fraction
        for slot in range(gene.start, min(gene.end, horizon)):
            base = slot * n_groups
            for gi in gidxs:
                usage[base + gi] += fraction
    for flat, used in enumerate(usage):
        if used > 1.0 + 1e-9:
            slot, gi = divmod(flat, n_groups)
            violations.append(
                _oversubscription_message(slot, group_names[gi], used)
            )
            overlap_penalty += used - 1.0

    return _finalize(
        scores, violations, shortfall_penalty, overlap_penalty, problem.total_weight
    )


def max_fitness() -> float:
    """The theoretical maximum fitness of any schedule (normalization)."""
    return 1.0


@dataclass(frozen=True)
class ObjectiveBreakdown:
    """Mean per-objective scores of a schedule (each in [0, 1])."""

    duration: float
    start: float
    coverage: float

    def describe(self) -> str:
        """One log line for plan reviews."""
        return (
            f"duration={self.duration:.3f} start={self.start:.3f} "
            f"coverage={self.coverage:.3f}"
        )


def objective_breakdown(schedule: Schedule) -> ObjectiveBreakdown:
    """Decompose a schedule's quality into the three objectives.

    Useful when tuning :class:`FitnessWeights`: a schedule may score well
    overall while sacrificing one objective entirely — the breakdown
    makes that visible per dimension.
    """
    problem = schedule.problem
    horizon = problem.horizon
    duration_scores: list[float] = []
    start_scores: list[float] = []
    coverage_scores: list[float] = []
    for spec, gene in schedule:
        duration, start, coverage = _gene_objective_components(spec, gene, horizon)
        duration_scores.append(duration)
        start_scores.append(start)
        coverage_scores.append(coverage)
    count = max(1, len(schedule.genes))
    return ObjectiveBreakdown(
        duration=sum(duration_scores) / count,
        start=sum(start_scores) / count,
        coverage=sum(coverage_scores) / count,
    )
