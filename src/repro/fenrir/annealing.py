"""Simulated annealing baseline (Section 3.5.4).

Same single-gene neighborhood as local search, but worse moves are
accepted with probability ``exp(delta / T)`` under an exponentially
cooling temperature, allowing escapes from local optima early on.

Each proposal differs from the current schedule in one gene (unless
repair moved more), so it is scored incrementally via the fastfit layer.
"""

from __future__ import annotations

import math

from repro.fenrir.base import BudgetedEvaluator, SearchAlgorithm, SearchResult
from repro.fenrir.fastfit import EvaluatorOptions
from repro.fenrir.fitness import FitnessWeights
from repro.fenrir.local_search import _warm_start
from repro.fenrir.model import SchedulingProblem
from repro.fenrir.operators import mutate_gene, pack_repair
from repro.fenrir.schedule import Schedule
from repro.simulation.rng import SeededRng


class SimulatedAnnealing(SearchAlgorithm):
    """Metropolis acceptance over single-gene mutations."""

    name = "annealing"

    def __init__(
        self,
        initial_temperature: float = 0.15,
        final_temperature: float = 0.001,
        repair_rate: float = 0.2,
        warm_start: int = 25,
    ) -> None:
        self.initial_temperature = initial_temperature
        self.final_temperature = final_temperature
        self.repair_rate = repair_rate
        self.warm_start = warm_start

    def optimize(
        self,
        problem: SchedulingProblem,
        budget: int = 2000,
        seed: int = 0,
        weights: FitnessWeights | None = None,
        initial: Schedule | None = None,
        locked: frozenset[int] = frozenset(),
        options: EvaluatorOptions | None = None,
    ) -> SearchResult:
        rng = SeededRng(seed)
        evaluator = BudgetedEvaluator(budget, weights, options=options)
        current, current_score = _warm_start(
            problem, evaluator, rng, initial, locked,
            draws=min(self.warm_start, max(1, budget // 10)),
        )
        cooling = (
            (self.final_temperature / self.initial_temperature)
            ** (1.0 / max(1, budget))
        )
        temperature = self.initial_temperature
        free = [i for i in range(len(current.genes)) if i not in locked]
        while not evaluator.exhausted and free:
            index = rng.choice(free)
            spec = problem.experiments[index]
            neighbor = current.replaced(
                index, mutate_gene(problem, spec, current.genes[index], rng)
            )
            changed: frozenset[int] | None = frozenset({index})
            if rng.random() < self.repair_rate:
                neighbor = pack_repair(neighbor, rng, locked)
                changed = None  # repair may move any free gene
            score = evaluator.evaluate(
                neighbor, parent=current, changed=changed
            ).penalized
            delta = score - current_score
            if delta >= 0 or rng.random() < math.exp(delta / max(temperature, 1e-9)):
                current, current_score = neighbor, score
            temperature *= cooling
        return evaluator.result(self.name)
