"""The Fenrir facade: the public entry point to experiment scheduling."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import InfeasibleScheduleError
from repro.fenrir.base import SearchAlgorithm, SearchResult
from repro.fenrir.fastfit import EvaluatorOptions
from repro.fenrir.fitness import FitnessWeights
from repro.fenrir.genetic import GeneticAlgorithm
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.schedule import Schedule
from repro.obs.events import FENRIR_SCHEDULE
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.traffic.profile import TrafficProfile


@dataclass
class SchedulingResult:
    """A convenience wrapper pairing the search result with its problem."""

    problem: SchedulingProblem
    search: SearchResult

    @property
    def schedule(self) -> Schedule:
        """The best schedule found."""
        return self.search.best_schedule

    @property
    def fitness(self) -> float:
        """Strict fitness of the best schedule."""
        return self.search.fitness

    @property
    def valid(self) -> bool:
        """Whether the best schedule satisfies every constraint."""
        return self.search.best_evaluation.valid

    def plan_table(self) -> list[dict[str, object]]:
        """Human-readable plan rows: one per experiment."""
        rows: list[dict[str, object]] = []
        for index, (spec, gene) in enumerate(self.schedule):
            rows.append(
                {
                    "experiment": spec.name,
                    "start_slot": gene.start,
                    "end_slot": gene.end,
                    "duration_slots": gene.duration,
                    "traffic_fraction": round(gene.fraction, 4),
                    "groups": sorted(gene.groups),
                    "required_samples": spec.required_samples,
                    "expected_samples": round(
                        self.schedule.samples_collected(index)
                    ),
                }
            )
        return rows


class Fenrir:
    """Plans experiment schedules with a pluggable search algorithm.

    Defaults to the genetic algorithm — the configuration the paper's
    evaluation found to dominate the alternatives on larger instances.
    """

    def __init__(
        self,
        algorithm: SearchAlgorithm | None = None,
        weights: FitnessWeights | None = None,
        options: EvaluatorOptions | None = None,
        observer: Observer | None = None,
    ) -> None:
        self.algorithm = algorithm or GeneticAlgorithm()
        self.weights = weights or FitnessWeights()
        self.options = options
        self.observer = observer or NULL_OBSERVER

    def schedule(
        self,
        profile: TrafficProfile,
        experiments: list[ExperimentSpec],
        budget: int = 3000,
        seed: int = 0,
        require_valid: bool = False,
    ) -> SchedulingResult:
        """Search for a schedule of *experiments* over *profile*.

        With ``require_valid`` an :class:`InfeasibleScheduleError` is
        raised when the search ends without a constraint-satisfying
        schedule; otherwise the least-bad schedule is returned and the
        caller can inspect ``result.valid``.
        """
        problem = SchedulingProblem(profile, list(experiments))
        options = self.options
        if self.observer.enabled:
            # Thread the facade's observer down into the evaluator unless
            # the caller already wired one through the options.
            if options is None:
                options = EvaluatorOptions(observer=self.observer)
            elif options.observer is None:
                options = replace(options, observer=self.observer)
        with self.observer.timed(
            "fenrir_schedule_seconds", algorithm=self.algorithm.name
        ):
            search = self.algorithm.optimize(
                problem,
                budget=budget,
                seed=seed,
                weights=self.weights,
                options=options,
            )
        if self.observer.enabled:
            self.observer.emit(
                FENRIR_SCHEDULE,
                float(search.evaluations_used),
                algorithm=self.algorithm.name,
                experiments=len(problem.experiments),
                budget=budget,
                seed=seed,
                fitness=search.fitness,
                valid=search.best_evaluation.valid,
            )
        if require_valid and not search.best_evaluation.valid:
            raise InfeasibleScheduleError(
                "no valid schedule found within budget; violations: "
                + "; ".join(search.best_evaluation.violations[:5])
            )
        return SchedulingResult(problem, search)
