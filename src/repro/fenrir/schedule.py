"""Schedules and their chromosome representation.

Fig 3.1: a schedule is value-encoded as one *gene* per experiment —
(start slot, duration, traffic fraction, user groups).  The whole
chromosome is simply the tuple of genes in experiment order, which makes
one-point crossover at experiment boundaries (Fig 3.2) trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.errors import ValidationError
from repro.fenrir.model import ExperimentSpec, SchedulingProblem


@dataclass(frozen=True)
class Gene:
    """Execution plan of one experiment.

    Attributes:
        start: first slot the experiment runs in.
        duration: number of consecutive slots (non-interrupted).
        fraction: share of the selected groups' traffic consumed per slot.
        groups: the user groups the experiment runs on.
    """

    start: int
    duration: int
    fraction: float
    groups: frozenset[str]

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValidationError(f"gene start must be >= 0, got {self.start}")
        if self.duration < 1:
            raise ValidationError(f"gene duration must be >= 1, got {self.duration}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValidationError(
                f"gene fraction must be in (0, 1], got {self.fraction}"
            )
        if not self.groups:
            raise ValidationError("gene needs at least one user group")

    @property
    def end(self) -> int:
        """Exclusive end slot."""
        return self.start + self.duration

    def fingerprint(self) -> tuple:
        """Canonical value tuple, with the group set in sorted order.

        Cached on the instance: genes are immutable and shared between a
        schedule and its mutated copies, so fingerprinting a child
        schedule reuses every untouched gene's tuple.
        """
        fp = getattr(self, "_fp", None)
        if fp is None:
            fp = (self.start, self.duration, self.fraction, tuple(sorted(self.groups)))
            object.__setattr__(self, "_fp", fp)
        return fp

    def slots(self) -> range:
        """The slots the experiment occupies."""
        return range(self.start, self.end)

    def with_(self, **changes: object) -> "Gene":
        """Return a modified copy (mutation helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]


class Schedule:
    """A full schedule: one gene per experiment, in problem order."""

    def __init__(self, problem: SchedulingProblem, genes: list[Gene]) -> None:
        if len(genes) != len(problem.experiments):
            raise ValidationError(
                f"schedule needs {len(problem.experiments)} genes, got {len(genes)}"
            )
        self.problem = problem
        self.genes = list(genes)
        self._key: tuple | None = None

    def __iter__(self) -> Iterator[tuple[ExperimentSpec, Gene]]:
        return iter(zip(self.problem.experiments, self.genes))

    def __len__(self) -> int:
        return len(self.genes)

    def gene_of(self, name: str) -> Gene:
        """The gene of experiment *name*."""
        for spec, gene in self:
            if spec.name == name:
                return gene
        raise ValidationError(f"schedule has no experiment {name!r}")

    def replaced(self, index: int, gene: Gene) -> "Schedule":
        """Copy of the schedule with gene *index* replaced."""
        genes = list(self.genes)
        genes[index] = gene
        return Schedule(self.problem, genes)

    def samples_collected(self, index: int) -> float:
        """Expected data points experiment *index* collects under its gene."""
        gene = self.genes[index]
        return (
            self.problem.window_volume(gene.start, gene.end, gene.groups)
            * gene.fraction
        )

    def consumption_per_slot(self) -> dict[int, float]:
        """Total request volume consumed per slot (Fig 3.3's second series)."""
        out: dict[int, float] = {}
        horizon = self.problem.horizon
        for index, gene in enumerate(self.genes):
            for slot in gene.slots():
                if slot >= horizon:
                    break
                volume = (
                    self.problem.group_volume(slot, gene.groups) * gene.fraction
                )
                out[slot] = out.get(slot, 0.0) + volume
        return out

    def group_usage(self) -> dict[tuple[int, str], float]:
        """Summed traffic fractions per (slot, group) — the overlap ledger."""
        usage: dict[tuple[int, str], float] = {}
        horizon = self.problem.horizon
        for gene in self.genes:
            for slot in gene.slots():
                if slot >= horizon:
                    break
                for group in gene.groups:
                    key = (slot, group)
                    usage[key] = usage.get(key, 0.0) + gene.fraction
        return usage

    def key(self) -> tuple:
        """Canonical chromosome fingerprint (memoization / delta-state key).

        Genes are value objects, so the fingerprint is simply the tuple of
        per-gene value tuples with the group set in sorted order.  The
        result is cached: search code never mutates ``genes`` in place
        (mutation and crossover always construct new schedules).
        """
        if self._key is None:
            self._key = tuple(g.fingerprint() for g in self.genes)
        return self._key

    def changed_indices(self, other: "Schedule") -> list[int]:
        """Gene indices where this schedule differs from *other*."""
        return [
            i
            for i, (a, b) in enumerate(zip(self.genes, other.genes))
            if a != b
        ]

    def copy(self) -> "Schedule":
        """Shallow copy (genes are immutable)."""
        return Schedule(self.problem, list(self.genes))
