"""Reevaluating existing schedules (Section 3.6.4).

Experimentation is dominated by *uncertainty*: experiments finish, get
canceled, or new ones arrive while a schedule is already executing.
Reevaluation rebuilds the scheduling problem at the current slot:

- experiments that already **finished** drop out,
- **canceled** experiments free their reserved traffic,
- **running** experiments are *locked* — they keep their start, duration,
  fraction, and groups (experiments must not be interrupted),
- not-yet-started and **new** experiments are (re)optimized, constrained
  to start no earlier than the current slot.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.fenrir.base import SearchAlgorithm, SearchResult
from repro.fenrir.fastfit import EvaluatorOptions
from repro.fenrir.fitness import FitnessWeights
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule


@dataclass
class ReevaluationPlan:
    """The rebuilt problem plus bookkeeping about what happened."""

    problem: SchedulingProblem
    initial: Schedule
    locked: frozenset[int]
    finished: tuple[str, ...]
    canceled: tuple[str, ...]
    added: tuple[str, ...]


def build_reevaluation(
    schedule: Schedule,
    now_slot: int,
    canceled: set[str] | None = None,
    new_experiments: list[ExperimentSpec] | None = None,
) -> ReevaluationPlan:
    """Construct the reevaluation problem from a running *schedule*."""
    canceled = canceled or set()
    new_experiments = new_experiments or []
    old_problem = schedule.problem

    specs: list[ExperimentSpec] = []
    genes: list[Gene] = []
    locked_indices: list[int] = []
    finished: list[str] = []
    dropped: list[str] = []

    for spec, gene in schedule:
        if spec.name in canceled:
            dropped.append(spec.name)
            continue
        if gene.end <= now_slot:
            finished.append(spec.name)
            continue
        if gene.start <= now_slot:
            # Running: keep verbatim and lock.
            locked_indices.append(len(specs))
            specs.append(spec)
            genes.append(gene)
        else:
            # Not yet started: free to re-plan, but not into the past.
            specs.append(replace(spec, earliest_start=max(spec.earliest_start, now_slot)))
            genes.append(gene if gene.start >= now_slot else gene.with_(start=now_slot))

    added: list[str] = []
    for spec in new_experiments:
        specs.append(replace(spec, earliest_start=max(spec.earliest_start, now_slot)))
        added.append(spec.name)

    problem = SchedulingProblem(old_problem.profile, specs)
    # Seed genes for brand-new experiments: a naive immediate plan the
    # search will refine.
    from repro.fenrir.operators import random_gene  # local import: avoids cycle
    from repro.simulation.rng import SeededRng

    rng = SeededRng(now_slot + 1)
    for spec in specs[len(genes):]:
        genes.append(random_gene(problem, spec, rng))
    initial = Schedule(problem, genes)
    return ReevaluationPlan(
        problem=problem,
        initial=initial,
        locked=frozenset(locked_indices),
        finished=tuple(finished),
        canceled=tuple(dropped),
        added=tuple(added),
    )


def reevaluate(
    schedule: Schedule,
    now_slot: int,
    algorithm: SearchAlgorithm,
    canceled: set[str] | None = None,
    new_experiments: list[ExperimentSpec] | None = None,
    budget: int = 2000,
    seed: int = 0,
    weights: FitnessWeights | None = None,
    options: EvaluatorOptions | None = None,
) -> tuple[ReevaluationPlan, SearchResult]:
    """Rebuild the problem at *now_slot* and re-optimize with *algorithm*.

    LS and SA start from the existing (typically GA-produced) schedule —
    the reason the paper observed the fitness gap between algorithms to
    narrow under reevaluation.  Reevaluation is the paper's recurring
    workload, so *options* lets continuous re-runs keep the fastfit
    evaluation layer (and its telemetry) configured consistently.
    """
    plan = build_reevaluation(schedule, now_slot, canceled, new_experiments)
    result = algorithm.optimize(
        plan.problem,
        budget=budget,
        seed=seed,
        weights=weights,
        initial=plan.initial,
        locked=plan.locked,
        options=options,
    )
    return plan, result
