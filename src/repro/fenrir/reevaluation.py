"""Reevaluating existing schedules (Section 3.6.4).

Experimentation is dominated by *uncertainty*: experiments finish, get
canceled, or new ones arrive while a schedule is already executing.
Reevaluation rebuilds the scheduling problem at the current slot:

- experiments that already **finished** drop out,
- **canceled** experiments free their reserved traffic,
- **running** experiments are *locked* — they keep their start, duration,
  fraction, and groups (experiments must not be interrupted),
- not-yet-started and **new** experiments are (re)optimized, constrained
  to start no earlier than the current slot.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.errors import ValidationError
from repro.fenrir.base import SearchAlgorithm, SearchResult
from repro.fenrir.fastfit import EvaluatorOptions
from repro.fenrir.fitness import FitnessWeights
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule


@dataclass
class ReevaluationPlan:
    """The rebuilt problem plus bookkeeping about what happened."""

    problem: SchedulingProblem
    initial: Schedule
    locked: frozenset[int]
    finished: tuple[str, ...]
    canceled: tuple[str, ...]
    added: tuple[str, ...]
    revived: tuple[str, ...] = ()


#: Fleet outcomes that settle an experiment for good: the question the
#: experiment asked has been answered (or deliberately abandoned), so
#: reevaluation drops it like any finished experiment.
DECIDED_OUTCOMES = frozenset({"promoted", "rolled_back", "aborted"})

#: Fleet outcomes that leave the question open: the experiment consumed
#: traffic but produced no verdict, so reevaluation re-plans it from the
#: current slot with a fresh traffic reservation.
REVIVABLE_OUTCOMES = frozenset({"inconclusive", "shed"})

FLEET_OUTCOMES = DECIDED_OUTCOMES | REVIVABLE_OUTCOMES

#: Terminal decision actions (see :class:`repro.obs.provenance.Decision`)
#: mapped to the fleet outcome they settle the experiment with.
ACTION_OUTCOMES = {
    "promote": "promoted",
    "rollback": "rolled_back",
    "abort": "aborted",
}


def build_reevaluation(
    schedule: Schedule,
    now_slot: int,
    canceled: set[str] | None = None,
    new_experiments: list[ExperimentSpec] | None = None,
) -> ReevaluationPlan:
    """Construct the reevaluation problem from a running *schedule*."""
    canceled = canceled or set()
    new_experiments = new_experiments or []
    old_problem = schedule.problem

    specs: list[ExperimentSpec] = []
    genes: list[Gene] = []
    locked_indices: list[int] = []
    finished: list[str] = []
    dropped: list[str] = []

    for spec, gene in schedule:
        if spec.name in canceled:
            dropped.append(spec.name)
            continue
        if gene.end <= now_slot:
            finished.append(spec.name)
            continue
        if gene.start <= now_slot:
            # Running: keep verbatim and lock.
            locked_indices.append(len(specs))
            specs.append(spec)
            genes.append(gene)
        else:
            # Not yet started: free to re-plan, but not into the past.
            specs.append(replace(spec, earliest_start=max(spec.earliest_start, now_slot)))
            genes.append(gene if gene.start >= now_slot else gene.with_(start=now_slot))

    added: list[str] = []
    for spec in new_experiments:
        specs.append(replace(spec, earliest_start=max(spec.earliest_start, now_slot)))
        added.append(spec.name)

    problem = SchedulingProblem(old_problem.profile, specs)
    # Seed genes for brand-new experiments: a naive immediate plan the
    # search will refine.
    from repro.fenrir.operators import random_gene  # local import: avoids cycle
    from repro.simulation.rng import SeededRng

    rng = SeededRng(now_slot + 1)
    for spec in specs[len(genes):]:
        genes.append(random_gene(problem, spec, rng))
    initial = Schedule(problem, genes)
    return ReevaluationPlan(
        problem=problem,
        initial=initial,
        locked=frozenset(locked_indices),
        finished=tuple(finished),
        canceled=tuple(dropped),
        added=tuple(added),
    )


def build_reevaluation_from_fleet(
    schedule: Schedule,
    now_slot: int,
    outcomes: Mapping[str, str],
    new_experiments: list[ExperimentSpec] | None = None,
) -> ReevaluationPlan:
    """Rebuild the problem from real fleet outcomes instead of hand deltas.

    *outcomes* maps experiment names to the terminal outcome the fleet
    orchestrator reported (see :data:`FLEET_OUTCOMES`):

    - ``promoted`` / ``rolled_back`` / ``aborted`` — decided; drops out
      like a finished experiment,
    - ``inconclusive`` / ``shed`` — undecided; *revived*: re-planned from
      the current slot exactly like a not-yet-started experiment, so the
      next schedule reserves traffic to re-run it,
    - experiments absent from *outcomes* are still running (locked) or
      not yet started (re-planned), as in :func:`build_reevaluation`.
    """
    new_experiments = new_experiments or []
    known = {spec.name for spec, _ in schedule}
    for name, outcome in outcomes.items():
        if name not in known:
            raise ValidationError(
                f"fleet outcome for unknown experiment {name!r}"
            )
        if outcome not in FLEET_OUTCOMES:
            raise ValidationError(
                f"unknown fleet outcome {outcome!r} for {name!r}; "
                f"known: {sorted(FLEET_OUTCOMES)}"
            )
    old_problem = schedule.problem

    specs: list[ExperimentSpec] = []
    genes: list[Gene] = []
    locked_indices: list[int] = []
    finished: list[str] = []
    revived: list[str] = []

    for spec, gene in schedule:
        outcome = outcomes.get(spec.name)
        if outcome in DECIDED_OUTCOMES:
            finished.append(spec.name)
            continue
        if outcome in REVIVABLE_OUTCOMES:
            revived.append(spec.name)
            specs.append(
                replace(spec, earliest_start=max(spec.earliest_start, now_slot))
            )
            genes.append(gene.with_(start=max(gene.start, now_slot)))
            continue
        if gene.start <= now_slot:
            # Still running under the fleet: keep verbatim and lock.
            locked_indices.append(len(specs))
            specs.append(spec)
            genes.append(gene)
        else:
            specs.append(
                replace(spec, earliest_start=max(spec.earliest_start, now_slot))
            )
            genes.append(gene if gene.start >= now_slot else gene.with_(start=now_slot))

    added: list[str] = []
    for spec in new_experiments:
        specs.append(replace(spec, earliest_start=max(spec.earliest_start, now_slot)))
        added.append(spec.name)

    problem = SchedulingProblem(old_problem.profile, specs)
    from repro.fenrir.operators import random_gene  # local import: avoids cycle
    from repro.simulation.rng import SeededRng

    rng = SeededRng(now_slot + 1)
    for spec in specs[len(genes):]:
        genes.append(random_gene(problem, spec, rng))
    initial = Schedule(problem, genes)
    return ReevaluationPlan(
        problem=problem,
        initial=initial,
        locked=frozenset(locked_indices),
        finished=tuple(finished),
        canceled=(),
        added=tuple(added),
        revived=tuple(revived),
    )


def build_reevaluation_from_decisions(
    schedule: Schedule,
    now_slot: int,
    graph,
    new_experiments: list[ExperimentSpec] | None = None,
) -> ReevaluationPlan:
    """Rebuild the problem directly from decision-provenance artifacts.

    *graph* is a :class:`repro.obs.provenance.ProvenanceGraph` (engine-
    side or rebuilt offline from an exported event stream — the two are
    digest-equal).  Each strategy with a terminal
    :class:`~repro.obs.provenance.Decision` settles the matching
    experiment via :data:`ACTION_OUTCOMES`; a terminal decision with an
    action outside that map (e.g. a cancellation) leaves the question
    open and revives the experiment as ``inconclusive``.  Strategies the
    schedule doesn't know — alert rules, sibling fleets — are ignored,
    so a whole fleet's merged event stream can feed one reevaluation.
    """
    outcomes: dict[str, str] = {}
    known = {spec.name for spec, _ in schedule}
    for name, strategy in graph.strategies.items():
        if name not in known:
            continue
        decision = strategy.terminal_decision()
        if decision is None:
            continue
        outcomes[name] = ACTION_OUTCOMES.get(decision.action, "inconclusive")
    return build_reevaluation_from_fleet(
        schedule, now_slot, outcomes, new_experiments
    )


def reevaluate(
    schedule: Schedule,
    now_slot: int,
    algorithm: SearchAlgorithm,
    canceled: set[str] | None = None,
    new_experiments: list[ExperimentSpec] | None = None,
    budget: int = 2000,
    seed: int = 0,
    weights: FitnessWeights | None = None,
    options: EvaluatorOptions | None = None,
) -> tuple[ReevaluationPlan, SearchResult]:
    """Rebuild the problem at *now_slot* and re-optimize with *algorithm*.

    LS and SA start from the existing (typically GA-produced) schedule —
    the reason the paper observed the fitness gap between algorithms to
    narrow under reevaluation.  Reevaluation is the paper's recurring
    workload, so *options* lets continuous re-runs keep the fastfit
    evaluation layer (and its telemetry) configured consistently.
    """
    plan = build_reevaluation(schedule, now_slot, canceled, new_experiments)
    result = algorithm.optimize(
        plan.problem,
        budget=budget,
        seed=seed,
        weights=weights,
        initial=plan.initial,
        locked=plan.locked,
        options=options,
    )
    return plan, result
