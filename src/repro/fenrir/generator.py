"""Random experiment generators for the Fenrir evaluation.

The paper's evaluation "only relied on self-generated experiments ...
created based on knowledge gathered from various literature sources"
(durations from Kevic et al. / Fabijan et al.) with low, medium, and high
required sample sizes.  This module reproduces that workload generator.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError
from repro.fenrir.model import ExperimentSpec
from repro.simulation.rng import SeededRng
from repro.traffic.profile import TrafficProfile


class SampleSizeBand(enum.Enum):
    """Required-sample-size regimes of the evaluation scenarios.

    The fractions are of the horizon's total traffic volume per
    experiment: *LOW* experiments need little data (short canaries),
    *HIGH* experiments need A/B-test-scale samples.
    """

    LOW = (0.0008, 0.003)
    MEDIUM = (0.003, 0.007)
    HIGH = (0.007, 0.014)

    @property
    def bounds(self) -> tuple[float, float]:
        """(min, max) fraction of total horizon traffic."""
        return self.value


def random_experiments(
    profile: TrafficProfile,
    count: int,
    band: SampleSizeBand = SampleSizeBand.MEDIUM,
    seed: int = 17,
    preferred_group_probability: float = 0.4,
) -> list[ExperimentSpec]:
    """Generate *count* experiments sized for *profile*.

    Durations span minutes-to-days in slot units (regression-driven
    experiments, Section 2.6.1): 2 slots up to half the horizon.  A share
    of experiments prefers a specific user group, and earliest starts are
    spread over the first half of the horizon (changes clear QA at
    different times).
    """
    if count <= 0:
        raise ConfigurationError("count must be positive")
    rng = SeededRng(seed)
    total = profile.total_volume()
    low, high = band.bounds
    horizon = profile.num_slots
    groups = profile.group_names
    experiments: list[ExperimentSpec] = []
    for i in range(count):
        required = total * rng.uniform(low, high)
        min_duration = rng.randint(2, 6)
        max_duration = rng.randint(
            min_duration + 8, max(min_duration + 10, int(horizon * 0.7))
        )
        preferred: frozenset[str] = frozenset()
        if rng.random() < preferred_group_probability:
            preferred = frozenset({rng.choice(groups)})
        experiments.append(
            ExperimentSpec(
                name=f"exp{i:03d}",
                required_samples=required,
                min_duration_slots=min_duration,
                max_duration_slots=min(max_duration, horizon),
                min_traffic_fraction=0.005,
                max_traffic_fraction=rng.uniform(0.3, 0.6),
                preferred_groups=preferred,
                earliest_start=rng.randint(0, horizon // 3),
            )
        )
    return experiments
