"""Fenrir evaluation performance layer: delta, memo, and parallel scoring.

Search algorithms spend their whole budget inside
:func:`repro.fenrir.fitness.evaluate`, yet the candidates they produce are
almost never *new*: GA offspring differ from a parent in a handful of
genes, elites are re-scored verbatim every generation, and hill
climbing/annealing mutate exactly one gene per step.  This module
exploits that structure three ways:

- :class:`DeltaEvaluator` — **incremental evaluation**.  Given a parent
  schedule's cached evaluation state and the set of changed gene indices,
  it recomputes only the affected per-experiment scores and constraint
  checks and patches only the touched cells of the slot×group usage grid.
  Results are bit-identical to the full evaluator: untouched components
  are reused verbatim and touched usage cells are re-accumulated in gene
  index order, the same association order the full pass uses.
- :class:`FitnessCache` — **memoization**.  An LRU cache keyed by the
  canonical chromosome fingerprint (:meth:`Schedule.key`).  By default a
  cache hit does *not* consume evaluation budget (the work was never
  done); ``count_cache_hits=True`` restores the paper-faithful accounting
  where every requested evaluation is charged.
- :class:`ParallelEvaluator` — **parallel population scoring** over
  ``concurrent.futures``.  Chunks of picklable (problem, genes) payloads
  go to a process pool (thread pool / serial fallback); results come back
  ordered by index and identical to serial evaluation, because fitness
  evaluation is a pure function.

:class:`EvaluatorOptions` bundles the knobs and is threaded through
:class:`repro.fenrir.base.BudgetedEvaluator` so all four algorithms
benefit transparently.  See ``docs/FENRIR_PERF.md`` for the design and
determinism guarantees.
"""

from __future__ import annotations

from bisect import insort
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.fenrir.fitness import (
    FitnessWeights,
    ScheduleEvaluation,
    _finalize,
    _gene_constraints,
    _gene_objectives,
    _oversubscription_message,
    evaluate,
)
from repro.fenrir.model import SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule
from repro.obs.observer import Observer
from repro.telemetry import MetricStore


# ---------------------------------------------------------------------------
# Observability


@dataclass
class EvalStats:
    """Evaluation counters of one search run.

    ``full_evals + delta_evals`` is the number of fitness computations
    actually performed; ``cache_hits`` were answered from memory.
    ``wall_time_s`` is the time spent inside the evaluator (computation
    plus cache handling), not the whole search loop.
    """

    full_evals: int = 0
    delta_evals: int = 0
    cache_hits: int = 0
    wall_time_s: float = 0.0

    @property
    def computed_evals(self) -> int:
        """Evaluations that ran fitness code (full + delta)."""
        return self.full_evals + self.delta_evals

    def as_dict(self) -> dict[str, float]:
        """Counter name → value, the exported telemetry vocabulary."""
        return {
            "full_evals": float(self.full_evals),
            "delta_evals": float(self.delta_evals),
            "cache_hits": float(self.cache_hits),
            "wall_time_s": self.wall_time_s,
        }

    def copy(self) -> "EvalStats":
        """Snapshot for embedding in an immutable result."""
        return replace(self)


def publish_eval_stats(
    store: MetricStore,
    algorithm: str,
    stats: EvalStats,
    timestamp: float = 0.0,
) -> None:
    """Export *stats* into a telemetry store under service ``fenrir``.

    Each counter becomes one sample of metric key
    ``("fenrir", algorithm, counter_name)`` so dashboards and tests can
    aggregate evaluation behaviour per algorithm.
    """
    for metric, value in stats.as_dict().items():
        store.record("fenrir", algorithm, metric, timestamp, value)


# ---------------------------------------------------------------------------
# Memoization


class FitnessCache:
    """LRU cache of schedule fingerprint → :class:`ScheduleEvaluation`."""

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise ConfigurationError("fitness cache maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, ScheduleEvaluation] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> ScheduleEvaluation | None:
        """The cached evaluation for *key*, refreshing its recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, evaluation: ScheduleEvaluation) -> None:
        """Insert or refresh one entry, evicting the least recently used."""
        self._entries[key] = evaluation
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)


# ---------------------------------------------------------------------------
# Incremental (delta) evaluation


class _EvalState:
    """Cached by-parts evaluation of one schedule, forkable for deltas.

    No usage matrix is kept: touched cells are re-accumulated from the
    per-slot cover lists, and :attr:`over` carries the oversubscribed
    cells forward, so untouched cell values never need to be stored.
    """

    __slots__ = (
        "genes",
        "gene_gidxs",
        "gene_violations",
        "gene_scores",
        "gene_shortfalls",
        "slot_cover",
        "over",
        "evaluation",
    )

    def __init__(
        self,
        genes: list[Gene],
        gene_gidxs: list[list[int]],
        gene_violations: list[tuple[str, ...]],
        gene_scores: list[float],
        gene_shortfalls: list[float],
        slot_cover: list[list[int]],
        over: dict[int, tuple[float, str]],
        evaluation: ScheduleEvaluation,
    ) -> None:
        self.genes = genes
        self.gene_gidxs = gene_gidxs
        self.gene_violations = gene_violations
        self.gene_scores = gene_scores
        self.gene_shortfalls = gene_shortfalls
        self.slot_cover = slot_cover
        self.over = over
        self.evaluation = evaluation


class DeltaEvaluator:
    """Incremental schedule evaluation against cached parent states.

    Exactness guarantee: for any parent state and changed-gene set, the
    produced :class:`ScheduleEvaluation` is **bit-identical** to a full
    :func:`repro.fenrir.fitness.evaluate` of the same schedule — same
    floats, same violation strings in the same order.  Per-gene components
    reuse the very helpers the full evaluator runs, and touched usage
    cells are re-accumulated over genes in index order, matching the full
    pass's floating-point association order.
    """

    def __init__(
        self,
        problem: SchedulingProblem,
        weights: FitnessWeights | None = None,
        state_size: int = 512,
        max_delta_fraction: float = 0.5,
    ) -> None:
        if state_size <= 0:
            raise ConfigurationError("delta state_size must be positive")
        self.problem = problem
        self.weights = weights or FitnessWeights()
        self.state_size = state_size
        n = len(problem.experiments)
        # Beyond this many changed genes a full pass is cheaper than the
        # patch-and-rescan bookkeeping.
        self.max_changed = max(1, int(n * max_delta_fraction)) if n else 0
        # Insertion-ordered with oldest-first eviction; a plain dict keeps
        # writes cheaper than an OrderedDict on this hot path.
        self._states: dict[tuple, _EvalState] = {}

    # -- public API --------------------------------------------------------

    def evaluate(
        self,
        schedule: Schedule,
        parent: Schedule | None = None,
        changed: Iterable[int] | None = None,
        key: tuple | None = None,
    ) -> tuple[ScheduleEvaluation, bool]:
        """Evaluate *schedule*, by delta from *parent* when possible.

        Returns ``(evaluation, used_delta)``.  The delta path runs when a
        cached state exists for *parent* and the changed-gene set is small
        enough; otherwise a full evaluation (re)builds the state.
        *changed* may name a superset of the differing indices (it is
        sanitized against the actual genes); when ``None`` the diff is
        computed.  Either way the state store is updated so the schedule
        can serve as a parent later.
        """
        key = key if key is not None else schedule.key()
        parent_state = self._states.get(parent.key()) if parent is not None else None
        if parent_state is not None:
            genes = schedule.genes
            if changed is None:
                # Schedules derived via ``replaced`` share untouched Gene
                # objects with their parent, so identity short-circuits
                # most comparisons.
                diff = [
                    i
                    for i, (g, pg) in enumerate(zip(genes, parent_state.genes))
                    if g is not pg and g != pg
                ]
            else:
                diff = sorted(
                    {
                        i
                        for i in changed
                        if genes[i] is not parent_state.genes[i]
                        and genes[i] != parent_state.genes[i]
                    }
                )
            if len(diff) <= self.max_changed:
                state = self._delta_state(parent_state, schedule, diff)
                self._store(key, state)
                return state.evaluation, True
        state = self._full_state(schedule)
        self._store(key, state)
        return state.evaluation, False

    def evaluate_full(self, schedule: Schedule) -> ScheduleEvaluation:
        """Full evaluation that also (re)builds the cached state."""
        return self.evaluate(schedule)[0]

    def has_state(self, schedule: Schedule) -> bool:
        """Whether *schedule* can currently serve as a delta parent."""
        return schedule.key() in self._states

    # -- internals ---------------------------------------------------------

    def _store(self, key: tuple, state: _EvalState) -> None:
        states = self._states
        states[key] = state
        if len(states) > self.state_size:
            del states[next(iter(states))]

    def _full_state(self, schedule: Schedule) -> _EvalState:
        problem = self.problem
        horizon = problem.horizon
        group_index = problem.group_index
        group_names = problem.group_names
        n_groups = len(group_names)
        gene_violations: list[tuple[str, ...]] = []
        gene_scores: list[float] = []
        gene_shortfalls: list[float] = []
        gene_gidxs: list[list[int]] = []
        for spec, gene in zip(problem.experiments, schedule.genes):
            violations, shortfall = _gene_constraints(problem, spec, gene)
            gene_violations.append(tuple(violations))
            gene_shortfalls.append(shortfall)
            gene_scores.append(
                spec.weight * _gene_objectives(spec, gene, horizon, self.weights)
            )
            gene_gidxs.append(sorted(group_index[g] for g in gene.groups))
        usage = [0.0] * (horizon * n_groups)
        slot_cover: list[list[int]] = [[] for _ in range(horizon)]
        for index, (gene, gidxs) in enumerate(zip(schedule.genes, gene_gidxs)):
            fraction = gene.fraction
            for slot in range(gene.start, min(gene.end, horizon)):
                slot_cover[slot].append(index)
                base = slot * n_groups
                for gi in gidxs:
                    usage[base + gi] += fraction
        over: dict[int, tuple[float, str]] = {}
        for flat, used in enumerate(usage):
            if used > 1.0 + 1e-9:
                slot, gi = divmod(flat, n_groups)
                over[flat] = (
                    used - 1.0,
                    _oversubscription_message(slot, group_names[gi], used),
                )
        state = _EvalState(
            genes=list(schedule.genes),
            gene_gidxs=gene_gidxs,
            gene_violations=gene_violations,
            gene_scores=gene_scores,
            gene_shortfalls=gene_shortfalls,
            slot_cover=slot_cover,
            over=over,
            evaluation=None,  # assembled below
        )
        state.evaluation = self._assemble(state)
        return state

    def _delta_state(
        self, parent: _EvalState, schedule: Schedule, changed: Sequence[int]
    ) -> _EvalState:
        problem = self.problem
        horizon = problem.horizon
        group_index = problem.group_index
        group_names = problem.group_names
        n_groups = len(group_names)
        genes = list(schedule.genes)
        # The outer slot_cover list is copied, the per-slot inner lists are
        # shared with the parent and copied-on-write where a changed gene
        # enters or leaves a slot.
        state = _EvalState(
            genes=genes,
            gene_gidxs=list(parent.gene_gidxs),
            gene_violations=list(parent.gene_violations),
            gene_scores=list(parent.gene_scores),
            gene_shortfalls=list(parent.gene_shortfalls),
            slot_cover=parent.slot_cover.copy(),
            over=dict(parent.over),
            evaluation=None,
        )
        # Only cells whose accumulated value can differ from the parent's
        # need recomputation: where exactly one of (old, new) gene covers
        # the cell, or both cover it with different fractions.  A cell
        # covered by both with the same fraction receives the identical
        # contribution at the identical gene position, so its float is
        # unchanged bit-for-bit.
        slot_cover = state.slot_cover
        single = len(changed) == 1
        # (lo, hi, touched group indices) slot ranges needing
        # recomputation.  For a single changed gene the segments are
        # disjoint slot ranges sharing their touched lists; only
        # multi-gene deltas pay for per-slot set merging.
        pending: list[tuple[int, int, Sequence[int]]] = []
        slot_groups: dict[int, set[int]] = {}
        for i in changed:
            spec = problem.experiments[i]
            old, new = parent.genes[i], genes[i]
            violations, shortfall = _gene_constraints(problem, spec, new)
            state.gene_violations[i] = tuple(violations)
            state.gene_shortfalls[i] = shortfall
            state.gene_scores[i] = spec.weight * _gene_objectives(
                spec, new, horizon, self.weights
            )
            old_gidxs = parent.gene_gidxs[i]
            if new.groups == old.groups:
                new_gidxs = old_gidxs
            else:
                new_gidxs = sorted(group_index[g] for g in new.groups)
            state.gene_gidxs[i] = new_gidxs
            o_lo = old.start
            o_hi = o_lo + old.duration
            if o_hi > horizon:
                o_hi = horizon
            n_lo = new.start
            n_hi = n_lo + new.duration
            if n_hi > horizon:
                n_hi = horizon
            # Groups touched where both genes cover a slot: with an equal
            # fraction only the symmetric group difference changes; with a
            # different fraction every covered group does.
            if new_gidxs is old_gidxs:
                both_gidxs = () if old.fraction == new.fraction else old_gidxs
            elif old.fraction == new.fraction:
                both_gidxs = sorted(set(old_gidxs) ^ set(new_gidxs))
            else:
                both_gidxs = sorted(set(old_gidxs) | set(new_gidxs))
            lo = o_lo if o_lo > n_lo else n_lo
            hi = o_hi if o_hi < n_hi else n_hi
            touch_segments = (
                (lo, hi, both_gidxs),  # covered by both genes
                (o_lo, n_lo if n_lo < o_hi else o_hi, old_gidxs),  # old-only left
                (o_lo if o_lo > n_hi else n_hi, o_hi, old_gidxs),  # old-only right
                (n_lo, o_lo if o_lo < n_hi else n_hi, new_gidxs),  # new-only left
                (n_lo if n_lo > o_hi else o_hi, n_hi, new_gidxs),  # new-only right
            )
            if single:
                pending.extend(
                    seg for seg in touch_segments if seg[0] < seg[1] and seg[2]
                )
            else:
                for lo, hi, touched in touch_segments:
                    if lo >= hi or not touched:
                        continue
                    for slot in range(lo, hi):
                        bucket = slot_groups.get(slot)
                        if bucket is None:
                            slot_groups[slot] = set(touched)
                        else:
                            bucket.update(touched)
            # Keep the per-slot cover lists in sync: gene *i* leaves the
            # old-only slots and enters the new-only slots.
            for lo, hi, entering in (
                (o_lo, n_lo if n_lo < o_hi else o_hi, False),
                (o_lo if o_lo > n_hi else n_hi, o_hi, False),
                (n_lo, o_lo if o_lo < n_hi else n_hi, True),
                (n_lo if n_lo > o_hi else o_hi, n_hi, True),
            ):
                for slot in range(lo, hi):
                    cover = list(slot_cover[slot])
                    if entering:
                        insort(cover, i)
                    else:
                        cover.remove(i)
                    slot_cover[slot] = cover
        if slot_groups:
            pending.extend(
                (slot, slot + 1, gis) for slot, gis in slot_groups.items()
            )
        if pending:
            gene_gidxs = state.gene_gidxs
            over = state.over
            fractions = [g.fraction for g in genes]
            for lo, hi, gis in pending:
                for slot in range(lo, hi):
                    base = slot * n_groups
                    cover = slot_cover[slot]
                    for gi in gis:
                        # Re-accumulate the touched cell over the slot's
                        # covering genes in index order — the same float
                        # association order as the full pass.
                        used = 0.0
                        for j in cover:
                            if gi in gene_gidxs[j]:
                                used += fractions[j]
                        flat = base + gi
                        if used > 1.0 + 1e-9:
                            over[flat] = (
                                used - 1.0,
                                _oversubscription_message(
                                    slot, group_names[gi], used
                                ),
                            )
                        elif flat in over:
                            del over[flat]
        state.evaluation = self._assemble(state)
        return state

    def _assemble(self, state: _EvalState) -> ScheduleEvaluation:
        problem = self.problem
        violations: list[str] = []
        for gene_violations in state.gene_violations:
            violations.extend(gene_violations)
        overlap_penalty = 0.0
        if state.over:
            over = state.over
            for flat in sorted(over):
                excess, message = over[flat]
                violations.append(message)
                overlap_penalty += excess
        return _finalize(
            state.gene_scores,
            violations,
            sum(state.gene_shortfalls),
            overlap_penalty,
            problem.total_weight,
        )


# ---------------------------------------------------------------------------
# Parallel population scoring


def _evaluate_genes_chunk(
    payload: tuple[SchedulingProblem, FitnessWeights, list[list[Gene]]],
) -> list[ScheduleEvaluation]:
    """Worker entry point: fully evaluate one chunk of chromosomes.

    Module-level so it is picklable into process pools; everything in the
    payload (problem, weights, genes) is a plain picklable value object.
    """
    problem, weights, genes_chunk = payload
    return [
        evaluate(Schedule(problem, list(genes)), weights) for genes in genes_chunk
    ]


class ParallelEvaluator:
    """Chunked population evaluation over ``concurrent.futures``.

    Fitness evaluation is a pure function of (problem, genes, weights), so
    results are identical to serial evaluation and returned in input
    order — the executor only changes wall-clock, never scores.

    Modes: ``"process"`` (process pool; payloads are pickled),
    ``"thread"`` (thread pool; useful as a deterministic test double and
    as the fallback where subprocesses are unavailable), ``"serial"``
    (in-process loop), and ``"auto"`` (process pool, degrading to threads
    on any pool failure).
    """

    _MODES = ("auto", "process", "thread", "serial")

    def __init__(
        self,
        mode: str = "auto",
        max_workers: int | None = None,
        chunk_size: int = 8,
    ) -> None:
        if mode not in self._MODES:
            raise ConfigurationError(
                f"parallel mode must be one of {self._MODES}, got {mode!r}"
            )
        if chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        self.mode = mode
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.effective_mode: str | None = "serial" if mode == "serial" else None
        self._executor: Executor | None = None

    def evaluate_schedules(
        self,
        problem: SchedulingProblem,
        genes_list: Sequence[Sequence[Gene]],
        weights: FitnessWeights | None = None,
    ) -> list[ScheduleEvaluation]:
        """Evaluate chromosomes of *problem*, ordered exactly as given."""
        weights = weights or FitnessWeights()
        if not genes_list:
            return []
        chunks = [
            [list(genes) for genes in genes_list[i : i + self.chunk_size]]
            for i in range(0, len(genes_list), self.chunk_size)
        ]
        payloads = [(problem, weights, chunk) for chunk in chunks]
        if self.mode == "serial" or len(genes_list) == 1:
            parts = [_evaluate_genes_chunk(p) for p in payloads]
        else:
            parts = self._run(payloads)
        return [evaluation for part in parts for evaluation in part]

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _ensure_executor(self) -> Executor:
        if self._executor is not None:
            return self._executor
        if self.mode in ("auto", "process"):
            try:
                self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
                self.effective_mode = "process"
                return self._executor
            except Exception:
                if self.mode == "process":
                    raise
        self._executor = ThreadPoolExecutor(max_workers=self.max_workers)
        self.effective_mode = "thread"
        return self._executor

    def _run(self, payloads: list) -> list[list[ScheduleEvaluation]]:
        executor = self._ensure_executor()
        try:
            return list(executor.map(_evaluate_genes_chunk, payloads))
        except Exception:
            # A broken process pool (killed worker, unpicklable payload,
            # sandboxed environment) degrades to threads in auto mode;
            # explicit modes surface the error.
            if self.mode == "auto" and self.effective_mode == "process":
                self.close()
                self._executor = ThreadPoolExecutor(max_workers=self.max_workers)
                self.effective_mode = "thread"
                return list(self._executor.map(_evaluate_genes_chunk, payloads))
            raise


# ---------------------------------------------------------------------------
# Configuration bundle


@dataclass(frozen=True)
class EvaluatorOptions:
    """Knobs of the evaluation performance layer.

    Attributes:
        use_cache: memoize evaluations by chromosome fingerprint.
        cache_size: LRU capacity of the fitness cache.
        count_cache_hits: charge budget for cache hits.  ``False`` (the
            default) treats the budget as a bound on *computed*
            evaluations — searches get more unique candidates per budget.
            ``True`` restores the paper-faithful accounting where every
            requested evaluation is charged, so benchmark figures match
            the seed evaluator's trajectories.
        use_delta: evaluate children incrementally from cached parent
            states where possible.
        state_size: LRU capacity of the delta-state store.
        max_delta_fraction: changed-gene fraction above which a full
            evaluation is used instead of a delta.
        parallel: a :class:`ParallelEvaluator` for population scoring
            (used by population-based algorithms); ``None`` keeps scoring
            serial.
        telemetry: a :class:`MetricStore` to publish evaluation counters
            into when a search run finalizes.
        observer: a glass-box :class:`~repro.obs.observer.Observer` the
            search emits per-generation progress and completion events
            into (logical timestamp = evaluations consumed), bridging
            :class:`EvalStats` into registry metrics.  ``None`` runs
            dark.
    """

    use_cache: bool = True
    cache_size: int = 4096
    count_cache_hits: bool = False
    use_delta: bool = True
    state_size: int = 512
    max_delta_fraction: float = 0.5
    parallel: ParallelEvaluator | None = None
    telemetry: MetricStore | None = None
    observer: Observer | None = None


#: Seed-faithful configuration: every evaluation is a full recomputation
#: and every request is charged — the pre-fastfit behaviour.
SEED_OPTIONS = EvaluatorOptions(use_cache=False, use_delta=False)
