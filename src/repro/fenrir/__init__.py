"""Fenrir: search-based scheduling of continuous experiments (Chapter 3).

Scheduling is formulated as an optimization problem over a discrete time
horizon and an expected traffic profile: each experiment needs a start
slot, a duration, a traffic fraction, and a set of user groups, such that
every experiment collects its required sample size, experiments never
oversubscribe a user group's traffic (no overlapping experiments), and
the schedule maximizes a fitness combining short durations, early starts,
and preferred-group coverage.

Four solvers are provided, mirroring the paper's comparison: a genetic
algorithm (Fenrir proper), random sampling, local search, and simulated
annealing — all driven by an equal fitness-evaluation budget.
"""

from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule
from repro.fenrir.fitness import (
    FitnessWeights,
    ObjectiveBreakdown,
    ScheduleEvaluation,
    evaluate,
    objective_breakdown,
)
from repro.fenrir.fastfit import (
    DeltaEvaluator,
    EvalStats,
    EvaluatorOptions,
    FitnessCache,
    ParallelEvaluator,
    SEED_OPTIONS,
    publish_eval_stats,
)
from repro.fenrir.genetic import GeneticAlgorithm
from repro.fenrir.random_sampling import RandomSampling
from repro.fenrir.local_search import LocalSearch
from repro.fenrir.annealing import SimulatedAnnealing
from repro.fenrir.scheduler import Fenrir, SchedulingResult
from repro.fenrir.reevaluation import ReevaluationPlan, reevaluate
from repro.fenrir.generator import SampleSizeBand, random_experiments
from repro.fenrir.visualize import schedule_gantt, utilization_sparkline
from repro.fenrir.serialize import (
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)

__all__ = [
    "ExperimentSpec",
    "SchedulingProblem",
    "Gene",
    "Schedule",
    "FitnessWeights",
    "ScheduleEvaluation",
    "evaluate",
    "ObjectiveBreakdown",
    "objective_breakdown",
    "DeltaEvaluator",
    "EvalStats",
    "EvaluatorOptions",
    "FitnessCache",
    "ParallelEvaluator",
    "SEED_OPTIONS",
    "publish_eval_stats",
    "GeneticAlgorithm",
    "RandomSampling",
    "LocalSearch",
    "SimulatedAnnealing",
    "Fenrir",
    "SchedulingResult",
    "ReevaluationPlan",
    "reevaluate",
    "SampleSizeBand",
    "random_experiments",
    "schedule_gantt",
    "utilization_sparkline",
    "schedule_from_dict",
    "schedule_from_json",
    "schedule_to_dict",
    "schedule_to_json",
]
