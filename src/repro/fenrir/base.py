"""Shared infrastructure of the four search algorithms.

All algorithms consume the same *fitness-evaluation budget* so their
comparison (Figs 3.4–3.6, Tables 3.2–3.3) is apples-to-apples, and report
both their final best schedule and the wall-clock moment they last
improved ("time to best") — the paper's execution-time comparison hinges
on how quickly an algorithm reaches its final quality.

The evaluator is layered over :mod:`repro.fenrir.fastfit`: evaluations
are memoized by chromosome fingerprint, children are scored incrementally
from cached parent states when the caller names a parent, and population
scoring can fan out over a pool — all behind :class:`EvaluatorOptions`,
with :data:`repro.fenrir.fastfit.SEED_OPTIONS` restoring the original
recompute-everything behaviour.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.fenrir.fastfit import (
    DeltaEvaluator,
    EvalStats,
    EvaluatorOptions,
    FitnessCache,
    publish_eval_stats,
)
from repro.fenrir.fitness import FitnessWeights, ScheduleEvaluation, evaluate
from repro.fenrir.model import SchedulingProblem
from repro.fenrir.schedule import Schedule
from repro.obs.events import FENRIR_SEARCH_COMPLETED
from repro.obs.observer import NULL_OBSERVER, Observer


@dataclass
class SearchResult:
    """Outcome of one optimization run."""

    algorithm: str
    best_schedule: Schedule
    best_evaluation: ScheduleEvaluation
    evaluations_used: int
    wall_time_s: float
    time_to_best_s: float
    history: list[tuple[int, float]] = field(default_factory=list)
    eval_stats: EvalStats | None = None

    @property
    def fitness(self) -> float:
        """Strict fitness of the best schedule (0.0 when invalid)."""
        return self.best_evaluation.fitness


class BudgetedEvaluator:
    """Counts fitness evaluations and tracks the incumbent best.

    The incumbent ordering prefers *valid* schedules by strict fitness and
    falls back to the penalized score among invalid ones, so a search that
    never finds a feasible schedule still returns its least-bad attempt.

    Budget semantics: by default only *computed* evaluations (full or
    delta) consume budget; memo-cache hits are free.  Because free hits
    let a converged search loop without spending budget, :attr:`exhausted`
    additionally trips after ``50 × budget`` total evaluation requests — a
    stall guard that never fires on healthy runs.
    """

    def __init__(
        self,
        budget: int,
        weights: FitnessWeights | None = None,
        options: EvaluatorOptions | None = None,
    ) -> None:
        self.budget = budget
        self.weights = weights or FitnessWeights()
        self.options = options or EvaluatorOptions()
        self.used = 0
        self.calls = 0
        self._call_cap = max(budget * 50, budget + 1000)
        self.stats = EvalStats()
        self.best_schedule: Schedule | None = None
        self.best_evaluation: ScheduleEvaluation | None = None
        self.history: list[tuple[int, float]] = []
        self._start = time.perf_counter()
        self.time_to_best_s = 0.0
        self._cache = (
            FitnessCache(self.options.cache_size) if self.options.use_cache else None
        )
        self._delta: DeltaEvaluator | None = None
        self._problem: SchedulingProblem | None = None
        self.obs: Observer = self.options.observer or NULL_OBSERVER

    @property
    def exhausted(self) -> bool:
        """Whether the evaluation budget (or the stall guard) is spent."""
        return self.used >= self.budget or self.calls >= self._call_cap

    def _better(self, e: ScheduleEvaluation) -> bool:
        incumbent = self.best_evaluation
        if incumbent is None:
            return True
        if e.valid != incumbent.valid:
            return e.valid
        if e.valid:
            return e.fitness > incumbent.fitness
        return e.penalized > incumbent.penalized

    def _consider(
        self, schedule: Schedule, evaluation: ScheduleEvaluation, used_at: int
    ) -> None:
        if self._better(evaluation):
            self.best_schedule = schedule.copy()
            self.best_evaluation = evaluation
            self.history.append((used_at, evaluation.fitness))
            self.time_to_best_s = time.perf_counter() - self._start

    def _fast_path(self, schedule: Schedule) -> bool:
        """Whether the cache/delta layer applies to *schedule*.

        The layer is bound to the first problem it sees; schedules of a
        different problem instance (a misuse, but a cheap one to survive)
        bypass it and are evaluated directly.
        """
        if self._problem is None:
            self._problem = schedule.problem
        return schedule.problem is self._problem

    def evaluate(
        self,
        schedule: Schedule,
        parent: Schedule | None = None,
        changed: Iterable[int] | None = None,
    ) -> ScheduleEvaluation:
        """Evaluate one schedule, updating budget and incumbent.

        *parent* may name an already-evaluated schedule the candidate was
        derived from; with the delta layer enabled the evaluation is then
        computed incrementally.  *changed* optionally narrows the delta to
        the given gene indices (a superset is fine; ``None`` diffs the
        chromosomes).
        """
        t0 = time.perf_counter()
        self.calls += 1
        if not self._fast_path(schedule):
            self.used += 1
            self.stats.full_evals += 1
            evaluation = evaluate(schedule, self.weights)
            self._consider(schedule, evaluation, self.used)
            self.stats.wall_time_s += time.perf_counter() - t0
            return evaluation
        key = schedule.key()
        if self._cache is not None:
            hit = self._cache.get(key)
            if hit is not None:
                self.stats.cache_hits += 1
                if self.options.count_cache_hits:
                    self.used += 1
                self.stats.wall_time_s += time.perf_counter() - t0
                return hit
        self.used += 1
        evaluation = self._compute(schedule, key, parent, changed)
        if self._cache is not None:
            self._cache.put(key, evaluation)
        self._consider(schedule, evaluation, self.used)
        self.stats.wall_time_s += time.perf_counter() - t0
        return evaluation

    def _compute(
        self,
        schedule: Schedule,
        key: tuple,
        parent: Schedule | None,
        changed: Iterable[int] | None,
    ) -> ScheduleEvaluation:
        if self.options.use_delta:
            if self._delta is None:
                self._delta = DeltaEvaluator(
                    schedule.problem,
                    self.weights,
                    state_size=self.options.state_size,
                    max_delta_fraction=self.options.max_delta_fraction,
                )
            evaluation, used_delta = self._delta.evaluate(
                schedule, parent=parent, changed=changed, key=key
            )
            if used_delta:
                self.stats.delta_evals += 1
            else:
                self.stats.full_evals += 1
            return evaluation
        self.stats.full_evals += 1
        return evaluate(schedule, self.weights)

    def evaluate_population(
        self,
        schedules: Sequence[Schedule],
        parents: Sequence[Schedule | None] | None = None,
        changed_sets: Sequence[Iterable[int] | None] | None = None,
        enforce_budget: bool = True,
    ) -> list[ScheduleEvaluation]:
        """Score a population, optionally in parallel.

        With ``enforce_budget`` every request past exhaustion is padded
        with :meth:`ScheduleEvaluation.worst` (keeping rankings
        well-defined), exactly like scoring the population serially.  When
        :attr:`EvaluatorOptions.parallel` is set, cache misses are fanned
        out to the pool; budget charging, incumbent updates, and history
        are identical to the serial order, so scores and results match
        serial evaluation bit-for-bit.
        """
        parents = parents if parents is not None else [None] * len(schedules)
        changed_sets = (
            changed_sets if changed_sets is not None else [None] * len(schedules)
        )
        pool = self.options.parallel
        if pool is None or not all(self._fast_path(s) for s in schedules):
            out: list[ScheduleEvaluation] = []
            for schedule, parent, changed in zip(schedules, parents, changed_sets):
                if enforce_budget and self.exhausted:
                    out.append(ScheduleEvaluation.worst())
                else:
                    out.append(self.evaluate(schedule, parent=parent, changed=changed))
            return out

        t0 = time.perf_counter()
        results: list[ScheduleEvaluation | None] = [None] * len(schedules)
        # First pass replays the serial charging order without computing
        # anything: decide hit / charged-miss / padded per index.  A repeat
        # of an earlier miss in the same batch is a cache hit serially
        # (evaluation and cache-put happen inline there), so it is counted
        # as one here too and filled from the first occurrence's result.
        misses: list[tuple[int, tuple, int]] = []  # (index, key, used_at)
        pending: dict[tuple, int] = {}  # key -> index of first miss
        dupes: list[tuple[int, int]] = []  # (index, index of first miss)
        for i, schedule in enumerate(schedules):
            if enforce_budget and self.exhausted:
                results[i] = ScheduleEvaluation.worst()
                continue
            self.calls += 1
            key = schedule.key()
            if self._cache is not None:
                hit = self._cache.get(key)
                if hit is not None:
                    self.stats.cache_hits += 1
                    if self.options.count_cache_hits:
                        self.used += 1
                    results[i] = hit
                    continue
                first = pending.get(key)
                if first is not None:
                    self.stats.cache_hits += 1
                    if self.options.count_cache_hits:
                        self.used += 1
                    dupes.append((i, first))
                    continue
                pending[key] = i
            self.used += 1
            misses.append((i, key, self.used))
        if misses:
            evaluations = pool.evaluate_schedules(
                self._problem,
                [schedules[i].genes for i, _, _ in misses],
                self.weights,
            )
            self.stats.full_evals += len(misses)
            for (i, key, used_at), evaluation in zip(misses, evaluations):
                if self._cache is not None:
                    self._cache.put(key, evaluation)
                results[i] = evaluation
                self._consider(schedules[i], evaluation, used_at)
        for i, first in dupes:
            results[i] = results[first]
        self.stats.wall_time_s += time.perf_counter() - t0
        return [r for r in results if r is not None]

    def result(self, algorithm: str) -> SearchResult:
        """Finalize into a :class:`SearchResult`, publishing telemetry.

        When a glass-box observer is wired through the options, the
        evaluation counters are bridged into registry metrics (labeled
        by algorithm) and a ``fenrir.search_completed`` event is emitted
        with the logical timestamp set to evaluations consumed.
        """
        assert self.best_schedule is not None and self.best_evaluation is not None
        stats = self.stats.copy()
        if self.options.telemetry is not None:
            publish_eval_stats(self.options.telemetry, algorithm, stats)
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter(
                "fenrir_full_evals_total", algorithm=algorithm
            ).increment(stats.full_evals)
            metrics.counter(
                "fenrir_delta_evals_total", algorithm=algorithm
            ).increment(stats.delta_evals)
            metrics.counter(
                "fenrir_cache_hits_total", algorithm=algorithm
            ).increment(stats.cache_hits)
            metrics.gauge(
                "fenrir_cache_hit_rate", algorithm=algorithm
            ).set(stats.cache_hits / max(1, self.calls))
            # Events must be seed-reproducible; wall_time_s is the one
            # wall-clock field in EvalStats, so it stays out of the
            # payload (SearchResult.eval_stats still carries it).
            counters = {
                k: v for k, v in stats.as_dict().items() if k != "wall_time_s"
            }
            self.obs.emit(
                FENRIR_SEARCH_COMPLETED,
                float(self.used),
                algorithm=algorithm,
                evaluations_used=self.used,
                calls=self.calls,
                fitness=self.best_evaluation.fitness,
                penalized=self.best_evaluation.penalized,
                valid=self.best_evaluation.valid,
                stats=counters,
            )
        return SearchResult(
            algorithm=algorithm,
            best_schedule=self.best_schedule,
            best_evaluation=self.best_evaluation,
            evaluations_used=self.used,
            wall_time_s=time.perf_counter() - self._start,
            time_to_best_s=self.time_to_best_s,
            history=list(self.history),
            eval_stats=stats,
        )


class SearchAlgorithm(abc.ABC):
    """Interface every scheduler implements."""

    name: str = "abstract"

    @abc.abstractmethod
    def optimize(
        self,
        problem: SchedulingProblem,
        budget: int = 2000,
        seed: int = 0,
        weights: FitnessWeights | None = None,
        initial: Schedule | None = None,
        locked: frozenset[int] = frozenset(),
        options: EvaluatorOptions | None = None,
    ) -> SearchResult:
        """Search for a high-fitness schedule.

        Args:
            problem: the scheduling instance.
            budget: number of fitness evaluations the algorithm may spend.
            seed: RNG seed.
            weights: fitness objective weights.
            initial: an existing schedule to improve (reevaluation mode).
            locked: indices of genes that must not change (already-running
                experiments during reevaluation).
            options: evaluation-layer configuration (memoization, delta
                evaluation, parallel scoring, telemetry export).
        """
