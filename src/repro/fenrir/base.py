"""Shared infrastructure of the four search algorithms.

All algorithms consume the same *fitness-evaluation budget* so their
comparison (Figs 3.4–3.6, Tables 3.2–3.3) is apples-to-apples, and report
both their final best schedule and the wall-clock moment they last
improved ("time to best") — the paper's execution-time comparison hinges
on how quickly an algorithm reaches its final quality.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

from repro.fenrir.fitness import FitnessWeights, ScheduleEvaluation, evaluate
from repro.fenrir.model import SchedulingProblem
from repro.fenrir.schedule import Schedule


@dataclass
class SearchResult:
    """Outcome of one optimization run."""

    algorithm: str
    best_schedule: Schedule
    best_evaluation: ScheduleEvaluation
    evaluations_used: int
    wall_time_s: float
    time_to_best_s: float
    history: list[tuple[int, float]] = field(default_factory=list)

    @property
    def fitness(self) -> float:
        """Strict fitness of the best schedule (0.0 when invalid)."""
        return self.best_evaluation.fitness


class BudgetedEvaluator:
    """Counts fitness evaluations and tracks the incumbent best.

    The incumbent ordering prefers *valid* schedules by strict fitness and
    falls back to the penalized score among invalid ones, so a search that
    never finds a feasible schedule still returns its least-bad attempt.
    """

    def __init__(self, budget: int, weights: FitnessWeights | None = None) -> None:
        self.budget = budget
        self.weights = weights or FitnessWeights()
        self.used = 0
        self.best_schedule: Schedule | None = None
        self.best_evaluation: ScheduleEvaluation | None = None
        self.history: list[tuple[int, float]] = []
        self._start = time.perf_counter()
        self.time_to_best_s = 0.0

    @property
    def exhausted(self) -> bool:
        """Whether the evaluation budget is spent."""
        return self.used >= self.budget

    def _better(self, e: ScheduleEvaluation) -> bool:
        incumbent = self.best_evaluation
        if incumbent is None:
            return True
        if e.valid != incumbent.valid:
            return e.valid
        if e.valid:
            return e.fitness > incumbent.fitness
        return e.penalized > incumbent.penalized

    def evaluate(self, schedule: Schedule) -> ScheduleEvaluation:
        """Evaluate one schedule, updating budget and incumbent."""
        self.used += 1
        evaluation = evaluate(schedule, self.weights)
        if self._better(evaluation):
            self.best_schedule = schedule.copy()
            self.best_evaluation = evaluation
            self.history.append((self.used, evaluation.fitness))
            self.time_to_best_s = time.perf_counter() - self._start
        return evaluation

    def result(self, algorithm: str) -> SearchResult:
        """Finalize into a :class:`SearchResult`."""
        assert self.best_schedule is not None and self.best_evaluation is not None
        return SearchResult(
            algorithm=algorithm,
            best_schedule=self.best_schedule,
            best_evaluation=self.best_evaluation,
            evaluations_used=self.used,
            wall_time_s=time.perf_counter() - self._start,
            time_to_best_s=self.time_to_best_s,
            history=list(self.history),
        )


class SearchAlgorithm(abc.ABC):
    """Interface every scheduler implements."""

    name: str = "abstract"

    @abc.abstractmethod
    def optimize(
        self,
        problem: SchedulingProblem,
        budget: int = 2000,
        seed: int = 0,
        weights: FitnessWeights | None = None,
        initial: Schedule | None = None,
        locked: frozenset[int] = frozenset(),
    ) -> SearchResult:
        """Search for a high-fitness schedule.

        Args:
            problem: the scheduling instance.
            budget: number of fitness evaluations the algorithm may spend.
            seed: RNG seed.
            weights: fitness objective weights.
            initial: an existing schedule to improve (reevaluation mode).
            locked: indices of genes that must not change (already-running
                experiments during reevaluation).
        """
