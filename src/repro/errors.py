"""Exception hierarchy shared across the repro library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate finer-grained error conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters."""


class ValidationError(ReproError):
    """A model-level invariant was violated (e.g. an invalid schedule)."""


class SchedulingError(ReproError):
    """Fenrir failed to produce or repair a schedule."""


class InfeasibleScheduleError(SchedulingError):
    """No valid schedule exists for the given experiments and traffic."""


class DSLError(ReproError):
    """The Bifrost experiment DSL could not be parsed or compiled."""


class ExecutionError(ReproError):
    """The Bifrost engine encountered an unrecoverable runtime condition."""


class RoutingError(ReproError):
    """A routing rule or proxy operation was invalid."""


class TopologyError(ReproError):
    """An interaction graph or topological diff operation failed."""


class SimulationError(ReproError):
    """The simulation kernel was driven into an invalid state."""


class StatisticsError(ReproError):
    """A statistical routine received invalid input (e.g. empty samples)."""


class ReplayError(ReproError):
    """A recorded experiment could not be re-driven faithfully."""
