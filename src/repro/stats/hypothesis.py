"""Hypothesis tests for business-driven experiment evaluation.

Chapter 2 characterizes business-driven experiments (A/B tests) as using
"rigorous hypothesis testing on selected metrics".  This module implements
the tests most relevant to release experimentation:

- Welch's t-test for metric means (response times, revenue per user),
- Mann-Whitney U for non-normal latency distributions,
- two-proportion z-test for conversion rates,
- chi-square test of independence for categorical outcomes.

Implementations use :mod:`scipy` distributions for p-values but keep the
statistic computation explicit and documented.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from scipy import stats as _scipy_stats

from repro.errors import StatisticsError


@dataclass(frozen=True)
class HypothesisTestResult:
    """Outcome of a two-sample hypothesis test.

    Attributes:
        test: short identifier of the test that produced the result.
        statistic: the test statistic value.
        p_value: two-sided p-value.
        effect: a test-specific effect estimate (difference of means,
            difference of proportions, rank-biserial correlation, ...).
    """

    test: str
    statistic: float
    p_value: float
    effect: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the null hypothesis is rejected at level *alpha*."""
        return self.p_value < alpha


def _clean(sample: Iterable[float], name: str, minimum: int = 2) -> list[float]:
    data = [float(v) for v in sample]
    if len(data) < minimum:
        raise StatisticsError(
            f"{name} requires at least {minimum} observations, got {len(data)}"
        )
    return data


def welch_t_test(a: Iterable[float], b: Iterable[float]) -> HypothesisTestResult:
    """Welch's unequal-variance t-test comparing the means of *a* and *b*.

    Returns the two-sided p-value; ``effect`` is ``mean(a) - mean(b)``.
    """
    xs = _clean(a, "welch_t_test sample a")
    ys = _clean(b, "welch_t_test sample b")
    mean_a = sum(xs) / len(xs)
    mean_b = sum(ys) / len(ys)
    var_a = sum((x - mean_a) ** 2 for x in xs) / (len(xs) - 1)
    var_b = sum((y - mean_b) ** 2 for y in ys) / (len(ys) - 1)
    se_sq = var_a / len(xs) + var_b / len(ys)
    if se_sq == 0.0:
        # Identical constant samples: no evidence against H0 unless the
        # means differ, in which case the difference is exact.
        p_value = 0.0 if mean_a != mean_b else 1.0
        return HypothesisTestResult("welch-t", 0.0, p_value, mean_a - mean_b)
    t_stat = (mean_a - mean_b) / math.sqrt(se_sq)
    # Welch-Satterthwaite degrees of freedom.
    df_num = se_sq**2
    df_den = (var_a / len(xs)) ** 2 / (len(xs) - 1) + (var_b / len(ys)) ** 2 / (
        len(ys) - 1
    )
    df = df_num / df_den if df_den > 0 else len(xs) + len(ys) - 2
    p_value = 2.0 * _scipy_stats.t.sf(abs(t_stat), df)
    return HypothesisTestResult("welch-t", t_stat, float(p_value), mean_a - mean_b)


def mann_whitney_u_test(a: Iterable[float], b: Iterable[float]) -> HypothesisTestResult:
    """Mann-Whitney U test (two-sided, normal approximation with tie correction).

    ``effect`` is the rank-biserial correlation ``2U/(n1*n2) - 1`` in
    ``[-1, 1]``; positive values mean *a* tends to be larger than *b*.
    """
    xs = _clean(a, "mann_whitney_u_test sample a")
    ys = _clean(b, "mann_whitney_u_test sample b")
    n1, n2 = len(xs), len(ys)
    combined = sorted((v, 0) for v in xs)
    combined += sorted((v, 1) for v in ys)
    combined.sort(key=lambda pair: pair[0])
    # Assign midranks for ties.
    ranks = [0.0] * len(combined)
    i = 0
    tie_correction = 0.0
    while i < len(combined):
        j = i
        while j + 1 < len(combined) and combined[j + 1][0] == combined[i][0]:
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[k] = midrank
        tie_len = j - i + 1
        tie_correction += tie_len**3 - tie_len
        i = j + 1
    rank_sum_a = sum(r for r, (_, grp) in zip(ranks, combined) if grp == 0)
    u_a = rank_sum_a - n1 * (n1 + 1) / 2.0
    mu = n1 * n2 / 2.0
    n = n1 + n2
    sigma_sq = (n1 * n2 / 12.0) * ((n + 1) - tie_correction / (n * (n - 1)))
    effect = 2.0 * u_a / (n1 * n2) - 1.0
    if sigma_sq <= 0.0:
        return HypothesisTestResult("mann-whitney-u", u_a, 1.0, effect)
    z = (u_a - mu) / math.sqrt(sigma_sq)
    p_value = 2.0 * _scipy_stats.norm.sf(abs(z))
    return HypothesisTestResult("mann-whitney-u", u_a, float(p_value), effect)


def proportions_z_test(
    successes_a: int, trials_a: int, successes_b: int, trials_b: int
) -> HypothesisTestResult:
    """Two-proportion z-test, the workhorse for conversion-rate A/B tests.

    ``effect`` is ``p_a - p_b``.
    """
    if trials_a <= 0 or trials_b <= 0:
        raise StatisticsError("proportions_z_test requires positive trial counts")
    if not 0 <= successes_a <= trials_a or not 0 <= successes_b <= trials_b:
        raise StatisticsError("successes must lie in [0, trials]")
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    se_sq = pooled * (1.0 - pooled) * (1.0 / trials_a + 1.0 / trials_b)
    if se_sq == 0.0:
        p_value = 0.0 if p_a != p_b else 1.0
        return HypothesisTestResult("proportions-z", 0.0, p_value, p_a - p_b)
    z = (p_a - p_b) / math.sqrt(se_sq)
    p_value = 2.0 * _scipy_stats.norm.sf(abs(z))
    return HypothesisTestResult("proportions-z", z, float(p_value), p_a - p_b)


def chi_square_test(table: Sequence[Sequence[float]]) -> HypothesisTestResult:
    """Chi-square test of independence on a contingency *table*.

    ``effect`` is Cramér's V.  Rows/columns whose totals are zero are
    rejected as invalid input.
    """
    rows = [list(map(float, row)) for row in table]
    if len(rows) < 2 or any(len(row) != len(rows[0]) for row in rows):
        raise StatisticsError("chi_square_test requires a rectangular table (>=2 rows)")
    if len(rows[0]) < 2:
        raise StatisticsError("chi_square_test requires at least 2 columns")
    row_totals = [sum(row) for row in rows]
    col_totals = [sum(col) for col in zip(*rows)]
    total = sum(row_totals)
    if total <= 0 or any(t <= 0 for t in row_totals) or any(t <= 0 for t in col_totals):
        raise StatisticsError("chi_square_test requires positive row/column totals")
    statistic = 0.0
    for i, row in enumerate(rows):
        for j, observed in enumerate(row):
            expected = row_totals[i] * col_totals[j] / total
            statistic += (observed - expected) ** 2 / expected
    df = (len(rows) - 1) * (len(rows[0]) - 1)
    p_value = float(_scipy_stats.chi2.sf(statistic, df))
    k = min(len(rows), len(rows[0]))
    cramers_v = math.sqrt(statistic / (total * (k - 1))) if k > 1 else 0.0
    return HypothesisTestResult("chi-square", statistic, p_value, cramers_v)
