"""Sequential analysis for in-flight experiment health decisions.

Bifrost evaluates health checks *while* an experiment runs; deciding to
abort early after a handful of bad observations inflates false-positive
rates if done naively.  Wald's sequential probability ratio test (SPRT)
gives a principled continue/accept/reject rule with bounded error rates,
and is the statistical backing for "conditional chaining" decisions that
should not wait for a fixed horizon.

We implement the Bernoulli SPRT (each observation is a success/failure,
e.g. "request within SLO" vs "request violated SLO").
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import StatisticsError


class SprtDecision(enum.Enum):
    """Tri-state outcome of a sequential test."""

    CONTINUE = "continue"
    ACCEPT_NULL = "accept_null"  # failure rate consistent with baseline
    REJECT_NULL = "reject_null"  # failure rate consistent with degraded


@dataclass
class SequentialProbabilityRatioTest:
    """Wald SPRT over Bernoulli observations.

    Args:
        p0: failure probability under the null ("healthy") hypothesis.
        p1: failure probability under the alternative ("degraded")
            hypothesis; must exceed *p0*.
        alpha: bound on the false-alarm probability.
        beta: bound on the missed-detection probability.

    Feed observations with :meth:`observe`; the test keeps a running
    log-likelihood ratio and reports a :class:`SprtDecision`.
    """

    p0: float
    p1: float
    alpha: float = 0.05
    beta: float = 0.1
    _llr: float = field(default=0.0, init=False, repr=False)
    _observations: int = field(default=0, init=False, repr=False)
    _decision: SprtDecision = field(default=SprtDecision.CONTINUE, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.p0 < 1.0 or not 0.0 < self.p1 < 1.0:
            raise StatisticsError("p0 and p1 must lie in (0, 1)")
        if self.p1 <= self.p0:
            raise StatisticsError("p1 (degraded) must exceed p0 (healthy)")
        if not 0.0 < self.alpha < 1.0 or not 0.0 < self.beta < 1.0:
            raise StatisticsError("alpha and beta must lie in (0, 1)")

    @property
    def upper_bound(self) -> float:
        """Log-likelihood threshold above which the null is rejected."""
        return math.log((1.0 - self.beta) / self.alpha)

    @property
    def lower_bound(self) -> float:
        """Log-likelihood threshold below which the null is accepted."""
        return math.log(self.beta / (1.0 - self.alpha))

    @property
    def observations(self) -> int:
        """Number of observations consumed so far."""
        return self._observations

    @property
    def log_likelihood_ratio(self) -> float:
        """Current running log-likelihood ratio."""
        return self._llr

    @property
    def decision(self) -> SprtDecision:
        """The decision reached so far (``CONTINUE`` while undecided)."""
        return self._decision

    def observe(self, failure: bool) -> SprtDecision:
        """Consume one Bernoulli observation and return the new decision.

        Once a terminal decision is reached, further observations are
        ignored and the terminal decision is returned unchanged.
        """
        if self._decision is not SprtDecision.CONTINUE:
            return self._decision
        self._observations += 1
        if failure:
            self._llr += math.log(self.p1 / self.p0)
        else:
            self._llr += math.log((1.0 - self.p1) / (1.0 - self.p0))
        if self._llr >= self.upper_bound:
            self._decision = SprtDecision.REJECT_NULL
        elif self._llr <= self.lower_bound:
            self._decision = SprtDecision.ACCEPT_NULL
        return self._decision

    def observe_batch(self, failures: int, total: int) -> SprtDecision:
        """Consume *total* observations of which *failures* failed."""
        if failures < 0 or total < failures:
            raise StatisticsError("failures must lie in [0, total]")
        for _ in range(failures):
            self.observe(True)
        for _ in range(total - failures):
            self.observe(False)
        return self._decision

    def reset(self) -> None:
        """Restart the test, discarding all accumulated evidence."""
        self._llr = 0.0
        self._observations = 0
        self._decision = SprtDecision.CONTINUE
