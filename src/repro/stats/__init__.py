"""Statistics toolkit underpinning experiment planning and analysis.

The dissertation leans on "sound statistical interpretation" of experiment
data (Kohavi-style controlled experiments): minimum sample sizes, hypothesis
tests on collected metrics, sequential health evaluation while an experiment
runs, and nDCG for ranking quality (Chapter 5).  This package provides those
building blocks without any external service dependency.
"""

from repro.stats.abtest import ABTestAnalysis, ABTestReport, Verdict
from repro.stats.descriptive import (
    SummaryStats,
    mean,
    median,
    moving_average,
    percentile,
    stddev,
    summarize,
)
from repro.stats.hypothesis import (
    HypothesisTestResult,
    chi_square_test,
    mann_whitney_u_test,
    proportions_z_test,
    welch_t_test,
)
from repro.stats.power import (
    PowerAnalysis,
    required_sample_size_mean,
    required_sample_size_proportion,
)
from repro.stats.ranking import dcg, idcg, ndcg
from repro.stats.sequential import SequentialProbabilityRatioTest, SprtDecision
from repro.stats.timeseries import TimeSeries

__all__ = [
    "ABTestAnalysis",
    "ABTestReport",
    "Verdict",
    "SummaryStats",
    "mean",
    "median",
    "moving_average",
    "percentile",
    "stddev",
    "summarize",
    "HypothesisTestResult",
    "chi_square_test",
    "mann_whitney_u_test",
    "proportions_z_test",
    "welch_t_test",
    "PowerAnalysis",
    "required_sample_size_mean",
    "required_sample_size_proportion",
    "dcg",
    "idcg",
    "ndcg",
    "SequentialProbabilityRatioTest",
    "SprtDecision",
    "TimeSeries",
]
