"""Power analysis: minimum sample sizes for valid experiments.

Chapter 1 frames experiment planning as "identifying optimal plans to
collect required sample sizes for sound statistical interpretation"
(cf. Kohavi et al.).  Fenrir consumes the *required sample size* of each
experiment as a scheduling constraint; this module computes those numbers
from the desired sensitivity of the underlying test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as _scipy_stats

from repro.errors import StatisticsError


def _z(quantile: float) -> float:
    return float(_scipy_stats.norm.ppf(quantile))


@dataclass(frozen=True)
class PowerAnalysis:
    """Parameters of a two-sample power calculation.

    Attributes:
        alpha: two-sided significance level (type I error rate).
        power: desired statistical power (1 - type II error rate).
    """

    alpha: float = 0.05
    power: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise StatisticsError(f"alpha must be in (0, 1), got {self.alpha}")
        if not 0.0 < self.power < 1.0:
            raise StatisticsError(f"power must be in (0, 1), got {self.power}")

    @property
    def z_alpha(self) -> float:
        """z-quantile for the two-sided significance level."""
        return _z(1.0 - self.alpha / 2.0)

    @property
    def z_beta(self) -> float:
        """z-quantile for the desired power."""
        return _z(self.power)


def required_sample_size_mean(
    effect_size: float,
    std: float,
    analysis: PowerAnalysis | None = None,
) -> int:
    """Per-group sample size to detect a difference in means of *effect_size*.

    Uses the standard normal approximation
    ``n = 2 * ((z_a + z_b) * std / effect)^2`` rounded up.
    """
    if effect_size <= 0:
        raise StatisticsError("effect_size must be positive")
    if std <= 0:
        raise StatisticsError("std must be positive")
    analysis = analysis or PowerAnalysis()
    n = 2.0 * ((analysis.z_alpha + analysis.z_beta) * std / effect_size) ** 2
    return max(2, math.ceil(n))


def required_sample_size_proportion(
    baseline_rate: float,
    minimum_detectable_effect: float,
    analysis: PowerAnalysis | None = None,
) -> int:
    """Per-group sample size to detect an absolute lift in a conversion rate.

    *baseline_rate* is the control conversion rate p, and
    *minimum_detectable_effect* the absolute difference to detect.  Uses
    the conservative pooled-variance normal approximation.
    """
    p1 = baseline_rate
    p2 = baseline_rate + minimum_detectable_effect
    if not 0.0 < p1 < 1.0:
        raise StatisticsError(f"baseline_rate must be in (0, 1), got {p1}")
    if not 0.0 < p2 < 1.0:
        raise StatisticsError(
            "baseline_rate + minimum_detectable_effect must stay in (0, 1), "
            f"got {p2}"
        )
    if minimum_detectable_effect == 0:
        raise StatisticsError("minimum_detectable_effect must be nonzero")
    analysis = analysis or PowerAnalysis()
    p_bar = (p1 + p2) / 2.0
    numerator = (
        analysis.z_alpha * math.sqrt(2.0 * p_bar * (1.0 - p_bar))
        + analysis.z_beta * math.sqrt(p1 * (1.0 - p1) + p2 * (1.0 - p2))
    ) ** 2
    n = numerator / (p2 - p1) ** 2
    return max(2, math.ceil(n))
