"""Ranking-quality metrics: DCG / nDCG.

Chapter 5 evaluates the change-ranking heuristics with nDCG@5
(normalized discounted cumulative gain; Järvelin & Kekäläinen 2002), a
standard information-retrieval metric.  Relevance grades are non-negative
numbers where larger means more relevant.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import StatisticsError


def dcg(relevances: Sequence[float], k: int | None = None) -> float:
    """Discounted cumulative gain of a ranked list of *relevances*.

    Uses the "standard" formulation ``sum(rel_i / log2(i + 1))`` with
    1-based positions, i.e. the first item is undiscounted.  If *k* is
    given, only the top-*k* positions contribute.
    """
    if k is not None and k <= 0:
        raise StatisticsError(f"k must be positive, got {k}")
    limit = len(relevances) if k is None else min(k, len(relevances))
    total = 0.0
    for i in range(limit):
        rel = float(relevances[i])
        if rel < 0:
            raise StatisticsError(f"relevance grades must be >= 0, got {rel}")
        total += rel / math.log2(i + 2)
    return total


def idcg(relevances: Sequence[float], k: int | None = None) -> float:
    """Ideal DCG: the DCG of *relevances* sorted in decreasing order."""
    return dcg(sorted((float(r) for r in relevances), reverse=True), k)


def ndcg(relevances: Sequence[float], k: int | None = None) -> float:
    """Normalized DCG in ``[0, 1]``.

    *relevances* are the grades of the items **in the order the ranking
    placed them**; the ideal ordering is derived internally.  A ranking of
    all-zero relevances scores 1.0 by convention (there is nothing to get
    wrong).
    """
    ideal = idcg(relevances, k)
    if ideal == 0.0:
        return 1.0
    return dcg(relevances, k) / ideal
