"""A small time-series container shared by telemetry and the benches.

Samples are ``(timestamp, value)`` pairs on the simulation clock.  The
container supports windowed queries ("all response times in the last 30
simulated seconds"), resampling into fixed-width buckets for plotting
series like Fig 4.6, and summary statistics.
"""

from __future__ import annotations

import bisect
from array import array
from operator import itemgetter
from typing import Iterable, Iterator

from repro.errors import StatisticsError
from repro.stats.descriptive import SummaryStats, summarize


class TimeSeries:
    """Append-mostly sequence of timestamped float samples.

    Timestamps may arrive slightly out of order (parallel simulated
    services); an insertion sort via :mod:`bisect` keeps the series
    ordered so window queries stay O(log n + k).

    Storage is a pair of ``array('d')`` columns — 8 bytes per sample
    rather than a boxed float object — which is what lets the million-user
    benchmark hold tens of millions of samples in memory.  Because the
    insertion sort is stable (``bisect_right`` places a sample after any
    equal timestamps), the series content is exactly the stable
    timestamp-sort of the append sequence; :meth:`extend` exploits that to
    bulk-load sorted chunks at C speed while staying equivalent to
    repeated :meth:`append`.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: array = array("d")
        self._values: array = array("d")

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    def append(self, timestamp: float, value: float) -> None:
        """Add a sample, keeping the series ordered by timestamp."""
        timestamp = float(timestamp)
        value = float(value)
        if not self._times or timestamp >= self._times[-1]:
            self._times.append(timestamp)
            self._values.append(value)
            return
        idx = bisect.bisect_right(self._times, timestamp)
        self._times.insert(idx, timestamp)
        self._values.insert(idx, value)

    def extend(self, samples: Iterable[tuple[float, float]]) -> None:
        """Append many ``(timestamp, value)`` samples.

        Equivalent to appending each sample in order — the final series
        is the same stable timestamp-sort either way — but sorts the
        chunk first so everything past the (usually tiny) out-of-order
        prefix lands via two C-level array extends.
        """
        chunk = sorted(samples, key=itemgetter(0))
        if not chunk:
            return
        i = 0
        times = self._times
        if times:
            last = times[-1]
            n = len(chunk)
            while i < n and chunk[i][0] < last:
                self.append(*chunk[i])
                i += 1
        if i:
            chunk = chunk[i:]
        self._times.extend(float(ts) for ts, _ in chunk)
        self._values.extend(float(value) for _, value in chunk)

    def extend_columns(self, times, values) -> None:
        """Append many samples given as parallel columns.

        Equivalent to ``extend(zip(times, values))`` — same stable sort,
        same out-of-order-prefix handling — but sorts with a stable numpy
        argsort and lands the tail via ``frombytes``, avoiding per-sample
        tuple construction entirely.  This is the batch execution
        kernel's flush path for million-sample runs.
        """
        import numpy as np

        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if len(times) != len(values):
            raise StatisticsError(
                f"column lengths differ: {len(times)} times, {len(values)} values"
            )
        if len(times) == 0:
            return
        order = np.argsort(times, kind="stable")
        times = times[order]
        values = values[order]
        if self._times:
            last = self._times[-1]
            if times[0] < last:
                prefix = int(np.searchsorted(times, last, side="left"))
                for i in range(prefix):
                    self.append(float(times[i]), float(values[i]))
                times = times[prefix:]
                values = values[prefix:]
                if len(times) == 0:
                    return
        self._times.frombytes(np.ascontiguousarray(times).tobytes())
        self._values.frombytes(np.ascontiguousarray(values).tobytes())

    @property
    def timestamps(self) -> list[float]:
        """All timestamps in ascending order (copy)."""
        return self._times.tolist()

    @property
    def values(self) -> list[float]:
        """All values, ordered by timestamp (copy)."""
        return self._values.tolist()

    def window(self, start: float, end: float) -> list[float]:
        """Values in the **half-open** window ``start <= timestamp < end``.

        The start boundary is included, the end boundary excluded — so
        adjacent windows ``[a, b)`` and ``[b, c)`` partition the series
        without double-counting a sample that lands exactly on ``b``.
        Every windowed consumer (``last``, :class:`MetricStore`
        aggregation, Bifrost check evaluation) inherits this convention.
        """
        if end < start:
            raise StatisticsError(f"window end {end} precedes start {start}")
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return self._values[lo:hi].tolist()

    def last(self, duration: float, now: float) -> list[float]:
        """Values in the trailing half-open window ``[now - duration, now)``.

        A sample stamped exactly *now* is **excluded** (it belongs to the
        next window); one stamped exactly ``now - duration`` is included.
        """
        return self.window(now - duration, now)

    def resample(self, bucket_width: float) -> list[tuple[float, float]]:
        """Average values into fixed-width buckets.

        Returns ``(bucket_start, mean_value)`` pairs for every non-empty
        bucket — the representation used to plot moving-average response
        times (Fig 4.6).
        """
        if bucket_width <= 0:
            raise StatisticsError("bucket_width must be positive")
        if not self._times:
            return []
        out: list[tuple[float, float]] = []
        origin = self._times[0]
        bucket_idx = 0
        acc = 0.0
        count = 0
        for ts, value in zip(self._times, self._values):
            idx = int((ts - origin) // bucket_width)
            if idx != bucket_idx and count:
                out.append((origin + bucket_idx * bucket_width, acc / count))
                acc, count = 0.0, 0
            bucket_idx = idx
            acc += value
            count += 1
        if count:
            out.append((origin + bucket_idx * bucket_width, acc / count))
        return out

    def summary(self) -> SummaryStats:
        """Summary statistics over all values."""
        return summarize(self._values)
