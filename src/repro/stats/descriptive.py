"""Descriptive statistics used throughout experiment health evaluation.

Bifrost checks (Chapter 4) compare windowed aggregates of runtime metrics
(mean/median/percentile response times) against thresholds, and the
evaluation chapters report summary tables such as Table 4.1.  The helpers
here are thin, well-tested wrappers that accept any iterable of numbers and
fail loudly on empty input instead of silently producing NaNs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import StatisticsError


def _as_list(values: Iterable[float], context: str) -> list[float]:
    data = [float(v) for v in values]
    if not data:
        raise StatisticsError(f"{context} requires at least one value")
    return data


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of *values*.

    Raises :class:`StatisticsError` on empty input.
    """
    data = _as_list(values, "mean")
    return sum(data) / len(data)


def median(values: Iterable[float]) -> float:
    """Median of *values* (average of the two middle items for even n)."""
    data = sorted(_as_list(values, "median"))
    n = len(data)
    mid = n // 2
    if n % 2 == 1:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2.0


def stddev(values: Iterable[float], ddof: int = 1) -> float:
    """Standard deviation of *values*.

    Uses the sample standard deviation (``ddof=1``) by default; a single
    observation therefore yields 0.0 rather than a division by zero.
    """
    data = _as_list(values, "stddev")
    n = len(data)
    if n - ddof <= 0:
        return 0.0
    mu = sum(data) / n
    var = sum((x - mu) ** 2 for x in data) / (n - ddof)
    return math.sqrt(var)


def percentile(values: Iterable[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` (0..100) of *values*."""
    if not 0.0 <= q <= 100.0:
        raise StatisticsError(f"percentile q must be in [0, 100], got {q}")
    data = sorted(_as_list(values, "percentile"))
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return data[low]
    frac = rank - low
    return data[low] * (1.0 - frac) + data[high] * frac


def moving_average(values: Sequence[float], window: int) -> list[float]:
    """Trailing moving average with the given *window* length.

    Mirrors the 3-second moving average used to plot monitored response
    times in Fig 4.6.  The first ``window - 1`` outputs average over the
    (shorter) available prefix so the result has the same length as the
    input.
    """
    if window <= 0:
        raise StatisticsError(f"window must be positive, got {window}")
    data = [float(v) for v in values]
    out: list[float] = []
    acc = 0.0
    for i, v in enumerate(data):
        acc += v
        if i >= window:
            acc -= data[i - window]
        out.append(acc / min(i + 1, window))
    return out


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary of a metric sample (cf. Table 4.1)."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    p99: float
    maximum: float

    def as_row(self) -> dict[str, float]:
        """Return the summary as a flat dict suitable for table printing."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(values: Iterable[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` for *values*."""
    data = _as_list(values, "summarize")
    return SummaryStats(
        count=len(data),
        mean=mean(data),
        std=stddev(data),
        minimum=min(data),
        p25=percentile(data, 25),
        median=median(data),
        p75=percentile(data, 75),
        p95=percentile(data, 95),
        p99=percentile(data, 99),
        maximum=max(data),
    )
