"""Business-driven experiment analysis (Table 2.5's right column).

Business-driven experiments are "characterized through rigorous
hypothesis testing on selected metrics": clearly defined hypotheses,
a-priori sample sizes, and statistical verdicts instead of gut feeling.
:class:`ABTestAnalysis` bundles that workflow: feed it the two variants'
observations (conversions and/or a continuous metric), and it reports
power-checked, tested verdicts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import StatisticsError
from repro.stats.descriptive import mean
from repro.stats.hypothesis import (
    HypothesisTestResult,
    proportions_z_test,
    welch_t_test,
)
from repro.stats.power import PowerAnalysis, required_sample_size_proportion


class Verdict(enum.Enum):
    """Outcome of an A/B analysis."""

    A_WINS = "a_wins"
    B_WINS = "b_wins"
    NO_DIFFERENCE = "no_difference"
    UNDERPOWERED = "underpowered"


@dataclass(frozen=True)
class ABTestReport:
    """Result of one metric's A/B comparison."""

    metric: str
    verdict: Verdict
    test: HypothesisTestResult | None
    samples_a: int
    samples_b: int
    required_per_group: int | None = None

    def describe(self) -> str:
        """One log line."""
        p = f", p={self.test.p_value:.4f}" if self.test else ""
        return (
            f"{self.metric}: {self.verdict.value} "
            f"(n_a={self.samples_a}, n_b={self.samples_b}{p})"
        )


@dataclass
class ABTestAnalysis:
    """Collects per-variant observations and issues verdicts.

    Args:
        alpha: significance level for all tests.
        lower_is_better: for continuous metrics (e.g. response times),
            whether smaller means win.
    """

    alpha: float = 0.05
    lower_is_better: bool = True
    _conversions: dict[str, list[bool]] = field(default_factory=dict)
    _values: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def record_conversion(self, variant: str, converted: bool) -> None:
        """Record one visit's conversion outcome for *variant*."""
        self._conversions.setdefault(variant, []).append(converted)

    def record_value(self, variant: str, metric: str, value: float) -> None:
        """Record one continuous observation for *variant*."""
        self._values.setdefault(variant, {}).setdefault(metric, []).append(
            float(value)
        )

    def _variant_pair(self, pool: dict) -> tuple[str, str]:
        variants = sorted(pool)
        if len(variants) != 2:
            raise StatisticsError(
                f"A/B analysis needs exactly two variants, got {variants}"
            )
        return variants[0], variants[1]

    def conversion_report(
        self,
        minimum_detectable_effect: float = 0.01,
        power: PowerAnalysis | None = None,
    ) -> ABTestReport:
        """Compare conversion rates with the two-proportion z-test.

        The verdict is ``UNDERPOWERED`` when either group is smaller than
        the sample size needed to detect *minimum_detectable_effect* at
        the configured power — the Kohavi-style guard against declaring
        winners from insufficient data.
        """
        a, b = self._variant_pair(self._conversions)
        conv_a, conv_b = self._conversions[a], self._conversions[b]
        successes_a, successes_b = sum(conv_a), sum(conv_b)
        baseline = successes_a / len(conv_a) if conv_a else 0.0
        required: int | None = None
        if 0.0 < baseline < 1.0 - minimum_detectable_effect:
            required = required_sample_size_proportion(
                baseline, minimum_detectable_effect, power
            )
            if min(len(conv_a), len(conv_b)) < required:
                return ABTestReport(
                    "conversion",
                    Verdict.UNDERPOWERED,
                    None,
                    len(conv_a),
                    len(conv_b),
                    required,
                )
        test = proportions_z_test(
            successes_a, len(conv_a), successes_b, len(conv_b)
        )
        if not test.significant(self.alpha):
            verdict = Verdict.NO_DIFFERENCE
        elif test.effect > 0:
            verdict = Verdict.A_WINS
        else:
            verdict = Verdict.B_WINS
        return ABTestReport(
            "conversion", verdict, test, len(conv_a), len(conv_b), required
        )

    def metric_report(self, metric: str) -> ABTestReport:
        """Compare a continuous metric with Welch's t-test."""
        pools = {
            variant: values[metric]
            for variant, values in self._values.items()
            if metric in values
        }
        a, b = self._variant_pair(pools)
        xs, ys = pools[a], pools[b]
        if len(xs) < 2 or len(ys) < 2:
            return ABTestReport(metric, Verdict.UNDERPOWERED, None, len(xs), len(ys))
        test = welch_t_test(xs, ys)
        if not test.significant(self.alpha):
            verdict = Verdict.NO_DIFFERENCE
        else:
            a_better = mean(xs) < mean(ys) if self.lower_is_better else (
                mean(xs) > mean(ys)
            )
            verdict = Verdict.A_WINS if a_better else Verdict.B_WINS
        return ABTestReport(metric, verdict, test, len(xs), len(ys))
